//! Cross-crate integration: set cover validity, approximation quality, and
//! the work-efficiency separation against the PBBS-style baseline.

use julienne_repro::algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_repro::algorithms::setcover_baselines::{set_cover_greedy_seq, set_cover_pbbs_style};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::set_cover_instance;

#[test]
fn all_implementations_cover_all_families() {
    for (sets, elems, mult) in [(10, 200, 2), (64, 4_000, 3), (256, 16_000, 5)] {
        for seed in 0..2 {
            let inst = set_cover_instance(sets, elems, mult, seed);
            let jul = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
            let pbbs = set_cover_pbbs_style(&inst, 0.01);
            let greedy = set_cover_greedy_seq(&inst);
            assert!(
                verify_cover(&inst, &jul.cover),
                "julienne {sets}/{elems}/{seed}"
            );
            assert!(
                verify_cover(&inst, &pbbs.cover),
                "pbbs {sets}/{elems}/{seed}"
            );
            assert!(
                verify_cover(&inst, &greedy.cover),
                "greedy {sets}/{elems}/{seed}"
            );
        }
    }
}

#[test]
fn approximation_quality_within_bound() {
    // Greedy is Hn-approximate; the parallel algorithms are (1+ε)Hn. On a
    // shared instance the parallel covers stay within a small constant of
    // greedy's.
    let inst = set_cover_instance(500, 40_000, 5, 77);
    let greedy = set_cover_greedy_seq(&inst).cover.len() as f64;
    let jul = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default())
        .unwrap()
        .cover
        .len() as f64;
    let pbbs = set_cover_pbbs_style(&inst, 0.01).cover.len() as f64;
    assert!(jul / greedy < 2.0, "julienne {jul} vs greedy {greedy}");
    assert!(pbbs / greedy < 2.0, "pbbs {pbbs} vs greedy {greedy}");
}

#[test]
fn rebucketing_beats_carry_over_on_work() {
    // The PBBS-style implementation rescans all undecided sets every
    // round; Julienne only touches extracted buckets. On instances with
    // many rounds the edge-examination gap is the paper's Figure 5 story.
    let inst = set_cover_instance(1_000, 50_000, 4, 21);
    let jul = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    let pbbs = set_cover_pbbs_style(&inst, 0.01);
    assert!(
        pbbs.edges_examined as f64 >= 1.2 * jul.edges_examined as f64,
        "expected a work gap: pbbs {} vs julienne {}",
        pbbs.edges_examined,
        jul.edges_examined
    );
}

#[test]
fn deterministic_given_seeded_instance() {
    let inst = set_cover_instance(100, 5_000, 3, 5);
    let a = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    let b = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    // writeMin tie-breaking by id makes the MaNIS outcome deterministic.
    assert_eq!(a.cover, b.cover);
    assert_eq!(a.assignment, b.assignment);
}

#[test]
fn tiny_degenerate_instances() {
    // 1 set, 1 element.
    let inst = set_cover_instance(1, 1, 1, 0);
    let r = cover(&inst, &SetCoverParams { eps: 0.5 }, &QueryCtx::default()).unwrap();
    assert_eq!(r.cover, vec![0]);
    // More sets than elements.
    let inst = set_cover_instance(50, 10, 1, 1);
    let r = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    assert!(verify_cover(&inst, &r.cover));
    assert!(r.cover.len() <= 10);
}
