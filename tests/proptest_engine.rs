//! Property tests over the Ligra engine: for arbitrary random graphs and
//! frontiers, sparse push and dense pull traversals must produce identical
//! results, and the aggregation primitives must match brute-force oracles.

mod common;

use common::{arb_frontier, arb_graph};
use julienne_repro::graph::Csr;
use julienne_repro::ligra::edge_map::{EdgeMap, Mode};
use julienne_repro::ligra::edge_map_reduce::{edge_map_sum, edge_map_sum_with_scratch, SumScratch};
use julienne_repro::ligra::subset::VertexSubset;
use proptest::prelude::*;
use std::collections::HashMap;

/// Brute-force: the set of vertices with cond true reachable by one hop
/// from the frontier (update ≡ first-touch).
fn one_hop_oracle(g: &Csr<()>, frontier: &[u32], cond: impl Fn(u32) -> bool) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for &u in frontier {
        for &v in g.neighbors(u) {
            if cond(v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sparse_and_dense_one_hop_agree((g, seedbits) in arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), arb_frontier(n))
    })) {
        let n = g.num_vertices();
        let frontier_ids = seedbits;
        let frontier = VertexSubset::from_vertices(n, frontier_ids.clone());
        let cond = |v: u32| v % 3 != 1;
        let run = |mode: Mode| {
            let out = EdgeMap::new(&g)
                .mode(mode)
                .remove_duplicates(true)
                .run(&frontier, |_, _, _| true, cond);
            let mut ids = out.to_vertices();
            ids.sort_unstable();
            ids
        };
        let want = one_hop_oracle(&g, &frontier_ids, cond);
        prop_assert_eq!(run(Mode::Sparse), want.clone());
        prop_assert_eq!(run(Mode::Dense), want.clone());
        prop_assert_eq!(run(Mode::Auto), want);
    }

    #[test]
    fn edge_map_sum_matches_hash_map_oracle((g, frontier) in arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), arb_frontier(n))
    })) {
        let mut oracle: HashMap<u32, u32> = HashMap::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if v % 2 == 0 {
                    *oracle.entry(v).or_default() += 1;
                }
            }
        }
        let got = edge_map_sum(&g, &frontier, |_, c| Some(c), |v| v % 2 == 0);
        let mut got: Vec<(u32, u32)> = got.into_entries();
        got.sort_unstable();
        let mut want: Vec<(u32, u32)> = oracle.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(&got, &want);

        // The scratch variant must agree and leave the scratch clean.
        let scratch = SumScratch::new(g.num_vertices());
        let scratch_out =
            edge_map_sum_with_scratch(&g, &frontier, |_, c| Some(c), |v| v % 2 == 0, &scratch);
        let mut got2: Vec<(u32, u32)> = scratch_out.into_entries();
        got2.sort_unstable();
        prop_assert_eq!(got2, want);
    }

    #[test]
    fn remove_duplicates_yields_set_semantics((g, frontier) in arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), arb_frontier(n))
    })) {
        let fs = VertexSubset::from_vertices(g.num_vertices(), frontier);
        let out = EdgeMap::new(&g)
            .mode(Mode::Sparse)
            .remove_duplicates(true)
            .run(&fs, |_, _, _| true, |_| true);
        let mut ids = out.to_vertices();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicates leaked");
    }
}
