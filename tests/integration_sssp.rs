//! Cross-crate integration: every SSSP implementation agrees with Dijkstra
//! on every graph family, weight range, Δ, and source.

use julienne_repro::algorithms::bellman_ford::bellman_ford;
use julienne_repro::algorithms::delta_stepping::{
    delta_stepping_light_heavy, sssp, wbfs, SsspParams,
};
use julienne_repro::algorithms::dijkstra::{bellman_ford_seq, dijkstra};
use julienne_repro::algorithms::gap_delta::gap_delta_stepping;
use julienne_repro::graph::generators::{erdos_renyi, grid2d, rmat, RmatParams};
use julienne_repro::graph::transform::assign_weights;

mod common;

use common::weighted_families;
use julienne_repro::core::query::QueryCtx;

#[test]
fn every_parallel_sssp_matches_dijkstra() {
    for heavy in [false, true] {
        for (name, g) in weighted_families(heavy) {
            let oracle = dijkstra(&g, 0);
            assert_eq!(bellman_ford_seq(&g, 0), oracle, "spfa {name}");
            assert_eq!(bellman_ford(&g, 0).dist, oracle, "bf {name}");
            assert_eq!(wbfs(&g, 0).dist, oracle, "wbfs {name}");
            for delta in [1u64, 64, 32768] {
                assert_eq!(
                    sssp(&g, &SsspParams { src: 0, delta }, &QueryCtx::default())
                        .unwrap()
                        .dist,
                    oracle,
                    "delta {delta} {name}"
                );
                assert_eq!(
                    gap_delta_stepping(&g, 0, delta).dist,
                    oracle,
                    "gap {delta} {name}"
                );
            }
            assert_eq!(
                delta_stepping_light_heavy(&g, 0, 64).dist,
                oracle,
                "light/heavy {name}"
            );
        }
    }
}

#[test]
fn multiple_sources_agree() {
    let g = assign_weights(&rmat(11, 8, RmatParams::default(), 7, true), 1, 500, 9);
    for src in [0u32, 13, 999, (g.num_vertices() - 1) as u32] {
        let oracle = dijkstra(&g, src);
        assert_eq!(
            sssp(&g, &SsspParams { src, delta: 128 }, &QueryCtx::default())
                .unwrap()
                .dist,
            oracle,
            "src {src}"
        );
        assert_eq!(wbfs(&g, src).dist, oracle, "src {src}");
    }
}

#[test]
fn triangle_inequality_holds_on_output() {
    let g = assign_weights(&erdos_renyi(1_500, 12_000, 3, true), 1, 1000, 5);
    let dist = sssp(&g, &SsspParams { src: 0, delta: 256 }, &QueryCtx::default())
        .unwrap()
        .dist;
    for u in 0..g.num_vertices() as u32 {
        if dist[u as usize] == u64::MAX {
            continue;
        }
        for (v, w) in g.edges_of(u) {
            assert!(
                dist[v as usize] <= dist[u as usize] + w as u64,
                "edge ({u},{v},{w}) violates settled distances"
            );
        }
    }
}

#[test]
fn delta_trade_off_visible_in_rounds() {
    // Smaller Δ → more, finer annuli (rounds up); larger Δ → fewer rounds.
    let g = assign_weights(&grid2d(60, 60), 1, 100, 8);
    let fine = sssp(&g, &SsspParams { src: 0, delta: 4 }, &QueryCtx::default()).unwrap();
    let coarse = sssp(
        &g,
        &SsspParams {
            src: 0,
            delta: 4096,
        },
        &QueryCtx::default(),
    )
    .unwrap();
    assert_eq!(fine.dist, coarse.dist);
    assert!(
        fine.rounds > coarse.rounds,
        "fine {} vs coarse {}",
        fine.rounds,
        coarse.rounds
    );
}

#[test]
fn zero_degree_source() {
    use julienne_repro::graph::builder::EdgeList;
    let mut el: EdgeList<u32> = EdgeList::new(3);
    el.push(1, 2, 5);
    let g = el.build(false);
    let r = sssp(&g, &SsspParams { src: 0, delta: 16 }, &QueryCtx::default()).unwrap();
    assert_eq!(r.dist, vec![0, u64::MAX, u64::MAX]);
}
