//! Differential testing against `julienne-oracle`: every algorithm module
//! is checked against an independent naive sequential reference — not
//! against another parallel configuration of itself — on checked-in
//! regression graphs, the paper's generator families, and proptest-drawn
//! random graphs, on both the CSR and byte-compressed backends.
//!
//! The cross-thread and cross-backend suites prove the parallel code is
//! *self-consistent*; this suite is the one that proves it is *right*.

mod common;

use common::{arb_any_graph, arb_weighted_graph, tiny_graphs};
use julienne_oracle as oracle;
use julienne_repro::algorithms::bellman_ford::bellman_ford;
use julienne_repro::algorithms::betweenness::betweenness;
use julienne_repro::algorithms::bfs::{bfs, bfs_seq};
use julienne_repro::algorithms::clustering::{closeness, harmonic, local_clustering, transitivity};
use julienne_repro::algorithms::components::{connected_components, connected_components_seq};
use julienne_repro::algorithms::degeneracy::degeneracy_order;
use julienne_repro::algorithms::delta_stepping::{sssp, wbfs, SsspParams};
use julienne_repro::algorithms::dial::dial;
use julienne_repro::algorithms::dijkstra::dijkstra;
use julienne_repro::algorithms::gap_delta::gap_delta_stepping;
use julienne_repro::algorithms::kcore::{coreness, coreness_ligra, KcoreParams};
use julienne_repro::algorithms::ktruss::ktruss_julienne;
use julienne_repro::algorithms::mis::maximal_independent_set;
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::algorithms::setcover::{cover, SetCoverParams};
use julienne_repro::algorithms::stats::{estimate_diameter, graph_stats};
use julienne_repro::algorithms::triangles::{triangle_count, EdgeIndex};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_repro::graph::generators::set_cover_instance;
use julienne_repro::graph::io::{Format, GraphIo, IoOptions};
use julienne_repro::graph::{Graph, WGraph};
use julienne_repro::ligra::traits::GraphRef;
use proptest::prelude::*;
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn approx(name: &str, got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (v, (&a, &b)) in got.iter().zip(want).enumerate() {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{name}: vertex {v}: got {a}, oracle {b}"
        );
    }
}

/// Runs every unweighted algorithm on `g` (any backend) and compares the
/// results against the oracles evaluated on the plain CSR `plain`.
fn check_unweighted_on<G: GraphRef<W = ()>>(name: &str, plain: &Graph, g: &G) {
    let n = plain.num_vertices();
    // All-source centralities are the dominant cost; cap the source set
    // (identical for implementation and oracle, so still differential).
    let all: Vec<u32> = (0..(n.min(64)) as u32).collect();

    // Traversals.
    let levels = oracle::traversal::bfs_levels(plain, 0);
    assert_eq!(bfs(g, 0).level, levels, "{name}: bfs");
    assert_eq!(bfs_seq(g, 0), levels, "{name}: bfs_seq");
    let comp = oracle::traversal::components_min_label(plain);
    assert_eq!(
        oracle::traversal::canonical_labels(&connected_components(g).label),
        comp,
        "{name}: components"
    );
    assert_eq!(
        oracle::traversal::canonical_labels(&connected_components_seq(g)),
        comp,
        "{name}: components_seq"
    );

    // Peeling.
    let core = oracle::kcore::coreness_peel(plain);
    assert_eq!(
        coreness(g, &KcoreParams::default(), &QueryCtx::default())
            .unwrap()
            .coreness,
        core,
        "{name}: kcore_julienne"
    );
    assert_eq!(coreness_ligra(g).coreness, core, "{name}: kcore_ligra");
    let degen = oracle::kcore::degeneracy(plain);
    let order = degeneracy_order(g);
    assert_eq!(order.degeneracy, degen, "{name}: degeneracy value");
    assert!(
        oracle::kcore::is_degeneracy_order(plain, &order.order, degen),
        "{name}: degeneracy order invalid"
    );

    // Edge peeling: the parallel edge ids (CSR order) must line up with the
    // oracle's sorted-(u < v) enumeration, then trussness must match.
    let (endpoints, truss) = oracle::kcore::trussness_peel(plain);
    let idx = EdgeIndex::new(g);
    assert_eq!(idx.endpoints, endpoints, "{name}: edge enumeration");
    let kt = ktruss_julienne(g);
    assert_eq!(kt.trussness, truss, "{name}: ktruss");
    assert_eq!(
        kt.max_truss,
        truss.iter().copied().max().unwrap_or(0),
        "{name}: max_truss"
    );

    // Triangles and clustering.
    assert_eq!(
        triangle_count(g),
        oracle::triangles::triangle_count_naive(plain),
        "{name}: triangle_count"
    );
    approx(
        &format!("{name}: local_clustering"),
        &local_clustering(g),
        &oracle::triangles::local_clustering_naive(plain),
        1e-9,
    );
    let t = transitivity(g);
    let t_oracle = oracle::triangles::transitivity_naive(plain);
    assert!(
        (t - t_oracle).abs() <= 1e-9,
        "{name}: transitivity {t} vs {t_oracle}"
    );

    // MIS: any valid maximal independent set passes; validity is judged by
    // the oracle, not by the implementation's own bookkeeping.
    let mis = maximal_independent_set(g, 3).members;
    assert!(
        oracle::triangles::is_maximal_independent_set(plain, &mis),
        "{name}: MIS not maximal-independent"
    );

    // Centrality (float: oracle accumulates in a different order).
    approx(
        &format!("{name}: betweenness"),
        &betweenness(g, &all),
        &oracle::centrality::betweenness_naive(plain, &all),
        1e-6,
    );
    approx(
        &format!("{name}: closeness"),
        &closeness(g, &all),
        &oracle::centrality::closeness_naive(plain, &all),
        1e-9,
    );
    approx(
        &format!("{name}: harmonic"),
        &harmonic(g, &all),
        &oracle::centrality::harmonic_naive(plain, &all),
        1e-9,
    );
    approx(
        &format!("{name}: pagerank"),
        &pagerank(g, 0.85, 1e-10, 100).rank,
        &oracle::pagerank::pagerank_power(plain, 0.85, 1e-10, 100),
        1e-6,
    );

    // Stats: k_max against the peeled coreness, eccentricity against BFS.
    let s = graph_stats(g);
    assert_eq!(
        s.k_max,
        Some(core.iter().copied().max().unwrap_or(0)),
        "{name}: stats k_max"
    );
    assert_eq!(
        s.eccentricity_from_zero,
        oracle::traversal::eccentricity(plain, 0),
        "{name}: stats eccentricity"
    );
    let true_diameter = (0..n as u32)
        .map(|v| oracle::traversal::eccentricity(plain, v))
        .max()
        .unwrap_or(0);
    assert!(
        estimate_diameter(g, 4, 9) <= true_diameter,
        "{name}: diameter estimate exceeds true diameter"
    );
}

/// Writes `g` to a scratch `.jgr`, runs `f` on the memory-mapped view, and
/// removes the file — the third backend for the differential checks.
fn with_mapped<W: julienne_repro::graph::csr::Weight>(
    g: &julienne_repro::graph::Csr<W>,
    f: impl FnOnce(&julienne_repro::graph::container::MappedGraph<W>),
) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "julienne-oracle-{}-{}.jgr",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    GraphIo::write(g, &path, &IoOptions::default()).unwrap();
    let mg = julienne_repro::graph::container::MappedGraph::open(&path).unwrap();
    f(&mg);
    drop(mg);
    std::fs::remove_file(&path).ok();
}

fn check_unweighted(name: &str, g: &Graph) {
    check_unweighted_on(&format!("{name}/csr"), g, g);
    let cg = CompressedGraph::from_csr(g);
    check_unweighted_on(&format!("{name}/compressed"), g, &cg);
    with_mapped(g, |mg| {
        check_unweighted_on(&format!("{name}/mapped"), g, mg)
    });
}

/// Runs every SSSP implementation on `g` (any backend) and compares against
/// binary-heap Dijkstra on the plain CSR.
fn check_weighted_on<G: GraphRef<W = u32>>(name: &str, plain: &WGraph, g: &G) {
    let want = oracle::sssp::dijkstra_binheap(plain, 0);
    assert_eq!(dijkstra(g, 0), want, "{name}: dijkstra");
    assert_eq!(bellman_ford(g, 0).dist, want, "{name}: bellman_ford");
    assert_eq!(dial(g, 0), want, "{name}: dial");
    assert_eq!(wbfs(g, 0).dist, want, "{name}: wbfs");
    for delta in [1u64, 64, 1 << 20] {
        assert_eq!(
            sssp(g, &SsspParams { src: 0, delta }, &QueryCtx::default())
                .unwrap()
                .dist,
            want,
            "{name}: delta_stepping Δ={delta}"
        );
        assert_eq!(
            gap_delta_stepping(g, 0, delta).dist,
            want,
            "{name}: gap_delta Δ={delta}"
        );
    }
}

fn check_weighted(name: &str, g: &WGraph) {
    check_weighted_on(&format!("{name}/csr"), g, g);
    let cg = CompressedWGraph::from_csr(g);
    check_weighted_on(&format!("{name}/compressed"), g, &cg);
    with_mapped(g, |mg| check_weighted_on(&format!("{name}/mapped"), g, mg));
}

#[test]
fn regression_corpus_matches_oracles() {
    let corpus: [(&str, Option<usize>); 4] = [
        ("empty.el", Some(5)),
        ("single_vertex.el", Some(1)),
        ("star.el", Some(9)),
        ("two_components.el", Some(7)),
    ];
    for (file, n) in corpus {
        let opts = IoOptions {
            format: Some(Format::EdgeList),
            vertices: n,
            symmetric: true,
            ..Default::default()
        };
        let g: Graph =
            GraphIo::read(&data(file), &opts).unwrap_or_else(|e| panic!("loading {file}: {e}"));
        check_unweighted(file, &g);
    }
}

#[test]
fn u32_boundary_weights_match_dijkstra_oracle() {
    // Weights at u32::MAX: any two-edge path overflows u32, so this fails
    // against any implementation that accumulates distances in 32 bits or
    // clamps annulus indices carelessly.
    let opts = IoOptions {
        format: Some(Format::EdgeList),
        vertices: Some(6),
        symmetric: true,
        ..Default::default()
    };
    let g: WGraph = GraphIo::read(&data("u32_boundary.el"), &opts).unwrap();
    let want = oracle::sssp::dijkstra_binheap(&g, 0);
    assert_eq!(want[3], 2 * (u32::MAX as u64) - 1, "shortcut 0-4-3");
    assert_eq!(want[5], 2 * (u32::MAX as u64), "chain end");
    check_weighted("u32_boundary.el", &g);
}

#[test]
fn generator_families_match_oracles() {
    // Tiny instances on purpose: each graph runs ~20 oracle comparisons on
    // three backends (CSR, compressed, mapped), several of them all-source,
    // and this suite must stay fast in debug builds.
    for (name, g) in tiny_graphs() {
        check_unweighted(name, &g);
    }
}

#[test]
fn setcover_matches_greedy_oracle() {
    for seed in [5u64, 17, 42] {
        let inst = set_cover_instance(64, 2_000, 3, seed);
        let greedy = oracle::setcover::greedy_cover(&inst);
        assert!(oracle::setcover::is_cover(&inst, &greedy), "oracle bug");
        let r = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
        assert!(
            oracle::setcover::is_cover(&inst, &r.cover),
            "seed {seed}: parallel set cover is not a cover"
        );
        // Bucketed (1+ε)-greedy tracks exact greedy closely; a 2x blowup
        // would mean the bucketing is broken, not a rounding difference.
        assert!(
            r.cover.len() <= greedy.len() * 2 + 2,
            "seed {seed}: cover size {} vs greedy {}",
            r.cover.len(),
            greedy.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_graphs_match_oracles(g in arb_any_graph()) {
        check_unweighted("random", &g);
    }

    #[test]
    fn random_weighted_graphs_match_dijkstra(g in arb_weighted_graph()) {
        check_weighted("random", &g);
    }
}
