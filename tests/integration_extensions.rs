//! Cross-crate integration for the extension algorithms: k-truss,
//! PageRank, connected components, weighted set cover, and the
//! hub-sort/relabel transform — each checked against an independent oracle
//! or invariant.

use julienne_repro::algorithms::components::{
    connected_components, connected_components_seq, num_components,
};
use julienne_repro::algorithms::degeneracy::{
    degeneracy_order, densest_subgraph, densest_subgraph_approx, induced_density,
};
use julienne_repro::algorithms::kcore::{coreness, KcoreParams};
use julienne_repro::algorithms::ktruss::{ktruss_julienne, ktruss_seq};
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::algorithms::setcover::verify_cover;
use julienne_repro::algorithms::setcover_weighted::{
    set_cover_weighted_greedy_seq, set_cover_weighted_julienne,
};
use julienne_repro::algorithms::triangles::triangle_count;
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::{
    chung_lu, erdos_renyi, rmat, set_cover_instance, RmatParams,
};
use julienne_repro::graph::transform::hub_sort;
use julienne_repro::primitives::rng::SplitMix64;

#[test]
fn truss_oracle_across_families() {
    for (name, g) in [
        ("er", erdos_renyi(200, 2_400, 1, true)),
        ("rmat", rmat(9, 10, RmatParams::default(), 2, true)),
        ("chunglu", chung_lu(300, 3_000, 2.3, 3, true)),
    ] {
        let par = ktruss_julienne(&g);
        let seq = ktruss_seq(&g);
        assert_eq!(par.trussness, seq.trussness, "{name}");
    }
}

#[test]
fn truss_relates_to_core_and_triangles() {
    let g = rmat(10, 12, RmatParams::default(), 7, true);
    let truss = ktruss_julienne(&g);
    let core = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    let k_max = core.coreness.iter().copied().max().unwrap();
    // Classic relation: max trussness ≤ degeneracy + 1 (each edge of the
    // t-truss lies in a (t−1)-core).
    assert!(
        truss.max_truss <= k_max + 1,
        "t_max {} vs k_max {}",
        truss.max_truss,
        k_max
    );
    // Triangle-free ⇒ all trussness 2 (contrapositive check).
    if triangle_count(&g) > 0 {
        assert!(truss.max_truss >= 3);
    }
}

#[test]
fn relabeling_preserves_all_peeling_invariants() {
    let g = rmat(10, 8, RmatParams::default(), 11, true);
    let (sorted, perm) = hub_sort(&g);
    // Coreness is permutation-equivariant.
    let orig = coreness(&g, &KcoreParams::default(), &QueryCtx::default())
        .unwrap()
        .coreness;
    let relab = coreness(&sorted, &KcoreParams::default(), &QueryCtx::default())
        .unwrap()
        .coreness;
    for v in 0..g.num_vertices() {
        assert_eq!(orig[v], relab[perm[v] as usize], "vertex {v}");
    }
    // Triangle count is invariant.
    assert_eq!(triangle_count(&g), triangle_count(&sorted));
    // Degeneracy is invariant.
    assert_eq!(
        degeneracy_order(&g).degeneracy,
        degeneracy_order(&sorted).degeneracy
    );
}

#[test]
fn components_oracle_and_pagerank_mass() {
    let g = erdos_renyi(2_000, 3_000, 5, true); // sparse: several components
    let par = connected_components(&g);
    assert_eq!(par.label, connected_components_seq(&g));
    assert!(num_components(&par.label) > 1);

    let pr = pagerank(&g, 0.85, 1e-10, 200);
    let total: f64 = pr.rank.iter().sum();
    assert!((total - 1.0).abs() < 1e-6);
}

#[test]
fn weighted_cover_tracks_cost_structure() {
    let inst = set_cover_instance(120, 6_000, 4, 17);
    let mut rng = SplitMix64::new(99);
    let costs: Vec<f64> = (0..120).map(|_| 1.0 + rng.next_range(100) as f64).collect();
    let par = set_cover_weighted_julienne(&inst, &costs, 0.05);
    let greedy = set_cover_weighted_greedy_seq(&inst, &costs);
    assert!(verify_cover(&inst, &par.cover));
    assert!(verify_cover(&inst, &greedy.cover));
    assert!(
        par.cost <= 3.0 * greedy.cost,
        "cost {} vs greedy {}",
        par.cost,
        greedy.cost
    );
    // Neither cover can cost more than taking every set (it may equal it
    // when every set uniquely covers some element, which this skewed
    // family often forces).
    let all: f64 = costs.iter().sum();
    assert!(greedy.cost <= all + 1e-9);
    assert!(par.cost <= 3.0 * all);
}

#[test]
fn densest_subgraph_variants_agree_up_to_guarantee() {
    let g = chung_lu(3_000, 30_000, 2.2, 23, true);
    let exact = densest_subgraph(&g);
    let approx = densest_subgraph_approx(&g, 0.2);
    assert!(approx.density * 2.0 * 1.2 + 1e-9 >= exact.density);
    assert!((induced_density(&g, &exact.vertices) - exact.density).abs() < 1e-6);
    assert!((induced_density(&g, &approx.vertices) - approx.density).abs() < 1e-6);
}
