//! Property tests over the substrate: sorting/scan/filter against std
//! oracles, semisort grouping, histogram-vs-count equivalence, graph
//! builder invariants, and compression round-trips.

use julienne_repro::graph::builder::EdgeList;
use julienne_repro::graph::compress::CompressedGraph;
use julienne_repro::primitives::filter::{filter, pack_index};
use julienne_repro::primitives::histogram::histogram_dense;
use julienne_repro::primitives::scan::{prefix_sums, scan_exclusive};
use julienne_repro::primitives::semisort::{count_by_key, semisort_by_key};
use julienne_repro::primitives::sort::radix_sort_u32;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix_sort_matches_std(mut xs in prop::collection::vec(any::<u32>(), 0..3_000)) {
        let mut want = xs.clone();
        want.sort_unstable();
        radix_sort_u32(&mut xs);
        prop_assert_eq!(xs, want);
    }

    #[test]
    fn scan_is_running_sum(xs in prop::collection::vec(0u64..1_000_000, 0..3_000)) {
        let (scanned, total) = scan_exclusive(&xs, 0u64, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn prefix_sums_total_is_sum(mut xs in prop::collection::vec(0usize..1_000, 0..2_000)) {
        let want: usize = xs.iter().sum();
        prop_assert_eq!(prefix_sums(&mut xs), want);
    }

    #[test]
    fn filter_equals_std_filter(xs in prop::collection::vec(any::<u32>(), 0..3_000)) {
        let got = filter(&xs, |&x| x % 3 == 1);
        let want: Vec<u32> = xs.iter().copied().filter(|&x| x % 3 == 1).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pack_index_sorted_and_complete(n in 0usize..5_000, m in 1usize..17) {
        let got = pack_index(n, |i| i % m == 0);
        let want: Vec<u32> = (0..n).filter(|i| i % m == 0).map(|i| i as u32).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn histogram_equals_count_by_key(keys in prop::collection::vec(0u32..97, 0..3_000)) {
        let dense = histogram_dense(&keys, 97);
        let sparse = count_by_key(keys.clone(), 96);
        for (k, c) in sparse {
            prop_assert_eq!(dense[k as usize], c);
        }
        prop_assert_eq!(dense.iter().sum::<usize>(), keys.len());
    }

    #[test]
    fn semisort_is_a_permutation(xs in prop::collection::vec((0u32..50, any::<u32>()), 0..2_000)) {
        let mut sorted = xs.clone();
        let groups = semisort_by_key(&mut sorted, 49, |p| p.0);
        // Same multiset.
        let mut a = xs.clone();
        let mut b = sorted.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Groups tile the array with uniform keys.
        let mut pos = 0;
        for g in groups {
            prop_assert_eq!(g.start, pos);
            for t in &sorted[g.start..g.start + g.len] {
                prop_assert_eq!(t.0, g.key);
            }
            pos += g.len;
        }
        prop_assert_eq!(pos, sorted.len());
    }

    #[test]
    fn builder_output_is_sorted_dedup_no_self_loops(
        n in 2usize..200,
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..2_000),
    ) {
        let mut el: EdgeList<()> = EdgeList::new(n);
        for (a, b) in raw {
            el.push(a % n as u32, b % n as u32, ());
        }
        let g = el.build(false);
        prop_assert!(g.validate().is_ok());
        for v in 0..n as u32 {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1], "not sorted/dedup at {v}");
            }
            prop_assert!(!nbrs.contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn compression_roundtrip(
        n in 2usize..300,
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..3_000),
    ) {
        let mut el: EdgeList<()> = EdgeList::new(n);
        for (a, b) in raw {
            el.push(a % n as u32, b % n as u32, ());
        }
        let g = el.build(false);
        let c = CompressedGraph::from_csr(&g);
        for v in 0..n as u32 {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            prop_assert_eq!(c.neighbors_vec(v), want);
        }
        let back = c.to_csr();
        prop_assert_eq!(back.num_edges(), g.num_edges());
    }

    #[test]
    fn symmetrize_makes_symmetric(
        n in 2usize..100,
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..600),
    ) {
        let mut el: EdgeList<()> = EdgeList::new(n);
        for (a, b) in raw {
            el.push(a % n as u32, b % n as u32, ());
        }
        let g = el.build_symmetric();
        prop_assert!(g.validate().is_ok());
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).contains(&v), "({v},{u}) one-sided");
            }
        }
    }
}
