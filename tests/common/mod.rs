//! Shared fixtures for the workspace-root integration and property suites:
//! thread-pool scoping, the paper's generator-backed graph families, and
//! the proptest strategies for random graphs. Each suite pulls this in with
//! `mod common;` — keep everything here deterministic (fixed seeds) so the
//! suites stay reproducible.
#![allow(dead_code)]

use julienne_repro::graph::builder::EdgeList;
use julienne_repro::graph::generators::{chung_lu, erdos_renyi, grid2d, rmat, RmatParams};
use julienne_repro::graph::transform::{assign_weights, wbfs_weight_range};
use julienne_repro::graph::{Csr, Graph, WGraph};
use proptest::prelude::*;

/// Runs `f` with the worker-thread count capped at `threads`.
pub fn at<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// RMAT (skewed) and Chung-Lu (power-law) symmetric test graphs.
pub fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", rmat(11, 8, RmatParams::default(), 7, true)),
        ("powerlaw", chung_lu(2_000, 16_000, 2.2, 8, true)),
    ]
}

/// Smaller instances of the same families for the super-linear algorithms.
pub fn small_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", rmat(9, 8, RmatParams::default(), 7, true)),
        ("powerlaw", chung_lu(500, 4_000, 2.2, 8, true)),
    ]
}

/// Tiny instances of the same families, for suites whose per-graph cost is
/// quadratic-and-worse in debug builds (the differential-oracle checks run
/// all-source centralities and edge peeling on two backends per graph).
pub fn tiny_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", rmat(7, 8, RmatParams::default(), 7, true)),
        ("powerlaw", chung_lu(160, 1_200, 2.2, 8, true)),
    ]
}

/// [`graphs`] with weights: `heavy` gives a wide range (many Δ-stepping
/// annuli), otherwise the wBFS `[1, log n)` range.
pub fn weighted(heavy: bool) -> Vec<(&'static str, WGraph)> {
    let (lo, hi) = if heavy {
        (1, 100_000)
    } else {
        wbfs_weight_range(2_048)
    };
    graphs()
        .into_iter()
        .map(|(name, g)| (name, assign_weights(&g, lo, hi, 21)))
        .collect()
}

/// Directed/symmetric/grid weighted families for the SSSP suites: distinct
/// from [`weighted`] so Δ-stepping also sees a directed graph and a
/// high-diameter lattice.
pub fn weighted_families(heavy: bool) -> Vec<(&'static str, WGraph)> {
    let (lo, hi) = if heavy {
        (1, 100_000)
    } else {
        wbfs_weight_range(2_048)
    };
    vec![
        (
            "er-sym",
            assign_weights(&erdos_renyi(2_000, 16_000, 1, true), lo, hi, 11),
        ),
        (
            "rmat-dir",
            assign_weights(&rmat(11, 8, RmatParams::default(), 2, false), lo, hi, 12),
        ),
        ("grid", assign_weights(&grid2d(45, 45), lo, hi, 13)),
    ]
}

/// Arbitrary symmetric unweighted graph (2..150 vertices). The raw pairs
/// include self-loops and duplicates by construction; `EdgeList::build`
/// must strip them, so every downstream consumer sees a simple graph.
pub fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..150,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..900),
    )
        .prop_map(|(n, raw)| {
            let mut el: EdgeList<()> = EdgeList::new(n);
            for (a, b) in raw {
                el.push(a % n as u32, b % n as u32, ());
            }
            el.build_symmetric()
        })
}

/// Arbitrary frontier: a strictly increasing vertex-id list in `0..n`.
pub fn arb_frontier(n: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..n as u32, 0..n.min(60)).prop_map(|s| s.into_iter().collect())
}

/// Arbitrary symmetric weighted graph (2..100 vertices, weights 1..1000).
pub fn arb_weighted_graph() -> impl Strategy<Value = Csr<u32>> {
    (
        2usize..100,
        prop::collection::vec((any::<u32>(), any::<u32>(), 1u32..1000), 0..600),
    )
        .prop_map(|(n, raw)| {
            let mut el: EdgeList<u32> = EdgeList::new(n);
            for (a, b, w) in raw {
                el.push_undirected(a % n as u32, b % n as u32, w);
            }
            el.build_symmetric()
        })
}

/// Arbitrary graph biased toward disconnection: vertices are split into
/// 2–5 blocks and every edge is drawn *within* its endpoint's block, so
/// the result has at least `blocks` components (isolates included).
pub fn arb_disconnected_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..6,
        8usize..30,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..400),
    )
        .prop_map(|(blocks, per_block, raw)| {
            let n = blocks * per_block;
            let mut el: EdgeList<()> = EdgeList::new(n);
            for (a, b) in raw {
                let block = (a as usize) % blocks;
                let base = (block * per_block) as u32;
                el.push(base + a % per_block as u32, base + b % per_block as u32, ());
            }
            el.build_symmetric()
        })
}

/// Arbitrary grid lattice (2..12 on each side) — the high-diameter
/// counterpoint to the skewed families (many peeling rounds, long tails).
pub fn arb_grid_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, 2usize..12).prop_map(|(w, h)| grid2d(w, h))
}

/// One strategy drawing from every unweighted family above — the input
/// distribution for the differential-oracle suite.
pub fn arb_any_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![arb_graph(), arb_disconnected_graph(), arb_grid_graph(),]
}
