//! Property tests: the parallel bucket structure must produce exactly the
//! same extraction sequence as the sequential reference (Section 3.2)
//! under arbitrary initial bucketings and random monotone update streams,
//! in both orders and at any number of open buckets.

use julienne::bucket::{BucketDest, BucketsBuilder, Order, SeqBuckets, NULL_BKT};
use julienne_primitives::rng::SplitMix64;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// Drives both implementations through the same workload and asserts
/// identical (bucket, sorted members) extraction sequences.
fn drive(initial: Vec<u32>, order: Order, num_open: usize, update_seed: u64) {
    let n = initial.len();
    let d_par: Vec<AtomicU32> = initial.iter().map(|&x| AtomicU32::new(x)).collect();
    let d_seq: Vec<AtomicU32> = initial.iter().map(|&x| AtomicU32::new(x)).collect();

    let mut par = BucketsBuilder::new(
        n,
        |i: u32| d_par[i as usize].load(AtomicOrdering::SeqCst),
        order,
    )
    .open_buckets(num_open)
    .build();
    let mut seq = SeqBuckets::new(
        n,
        |i: u32| d_seq[i as usize].load(AtomicOrdering::SeqCst),
        order,
    );

    let mut rng = SplitMix64::new(update_seed);
    let mut extracted = vec![false; n];
    let mut safety = 0;
    loop {
        safety += 1;
        assert!(safety < 10_000, "extraction did not terminate");
        let p = par.next_bucket();
        let s = seq.next_bucket();
        match (p, s) {
            (None, None) => break,
            (Some((pb, mut pids)), Some((sb, mut sids))) => {
                pids.sort_unstable();
                sids.sort_unstable();
                assert_eq!(pb, sb, "bucket ids diverge");
                assert_eq!(pids, sids, "members diverge in bucket {pb}");
                for &i in &pids {
                    extracted[i as usize] = true;
                }

                // Random monotone updates: move some unextracted ids to a
                // bucket at-or-after the current one (toward cur for
                // Increasing, like k-core's clamping; away from the initial
                // max is forbidden for Decreasing).
                let cur = pb;
                let mut moves_par: Vec<(u32, BucketDest)> = Vec::new();
                let mut moves_seq: Vec<(u32, BucketDest)> = Vec::new();
                for i in 0..n as u32 {
                    if extracted[i as usize] || rng.next_range(4) != 0 {
                        continue;
                    }
                    let old = d_par[i as usize].load(AtomicOrdering::SeqCst);
                    if old == NULL_BKT {
                        continue;
                    }
                    let new = match order {
                        Order::Increasing => {
                            // Anywhere in [cur, old] (only meaningful if it
                            // moves toward cur), occasionally past old.
                            if old > cur {
                                cur + rng.next_range((old - cur + 1) as u64) as u32
                            } else {
                                continue;
                            }
                        }
                        Order::Decreasing => {
                            // Decreasing: buckets shrink; move into
                            // (cur is upper now) [?, cur] i.e. id ≤ cur.
                            if old == 0 || old > cur {
                                continue;
                            }
                            rng.next_range((old.min(cur) + 1) as u64) as u32
                        }
                    };
                    if new == old {
                        continue;
                    }
                    d_par[i as usize].store(new, AtomicOrdering::SeqCst);
                    d_seq[i as usize].store(new, AtomicOrdering::SeqCst);
                    moves_par.push((i, par.get_bucket(old, new)));
                    moves_seq.push((i, seq.get_bucket(old, new)));
                }
                par.update_buckets(&moves_par);
                seq.update_buckets(&moves_seq);
            }
            other => panic!("one structure drained early: {other:?}"),
        }
    }
    // Everything initially bucketed must have been extracted.
    for i in 0..n {
        if initial[i] != NULL_BKT {
            assert!(
                extracted[i],
                "id {i} (bucket {}) never extracted",
                initial[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn increasing_matches_sequential(
        initial in prop::collection::vec(
            prop_oneof![4 => 0u32..300, 1 => Just(NULL_BKT)], 1..120),
        num_open in 1usize..20,
        seed in any::<u64>(),
    ) {
        drive(initial, Order::Increasing, num_open, seed);
    }

    #[test]
    fn decreasing_matches_sequential(
        initial in prop::collection::vec(
            prop_oneof![4 => 0u32..300, 1 => Just(NULL_BKT)], 1..120),
        num_open in 1usize..20,
        seed in any::<u64>(),
    ) {
        drive(initial, Order::Decreasing, num_open, seed);
    }

    #[test]
    fn static_drain_increasing(
        initial in prop::collection::vec(0u32..50_000, 1..200),
        num_open in 1usize..200,
    ) {
        // No updates at all: extraction must equal a stable sort by bucket.
        let n = initial.len();
        let d: Vec<AtomicU32> = initial.iter().map(|&x| AtomicU32::new(x)).collect();
        let mut b = BucketsBuilder::new(
            n, |i: u32| d[i as usize].load(AtomicOrdering::SeqCst),
            Order::Increasing)
            .open_buckets(num_open)
            .build();
        let mut got: Vec<(u32, u32)> = Vec::new();
        while let Some((k, ids)) = b.next_bucket() {
            for i in ids {
                got.push((k, i));
            }
        }
        let mut want: Vec<(u32, u32)> =
            initial.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
