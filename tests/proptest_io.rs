//! Property tests for the unified `GraphIo` surface: every format
//! round-trips arbitrary graphs losslessly (up to each format's documented
//! scope), and converting text through the `.jgr` container and back is the
//! byte-level identity.

use julienne_repro::graph::container::MappedGraph;
use julienne_repro::graph::csr::Weight;
use julienne_repro::graph::io::{Format, GraphIo, IoOptions};
use julienne_repro::graph::{Csr, Graph};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

mod common;
use common::{arb_any_graph, arb_weighted_graph};

/// A unique scratch path per call, removed when dropped.
struct Scratch(PathBuf);

impl Scratch {
    fn new(ext: &str) -> Scratch {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        Scratch(std::env::temp_dir().join(format!(
            "julienne-prop-io-{}-{}.{ext}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn assert_same<W: Weight + PartialEq + std::fmt::Debug>(what: &str, a: &Csr<W>, b: &Csr<W>) {
    assert_eq!(a.offsets(), b.offsets(), "{what}: offsets");
    assert_eq!(a.targets(), b.targets(), "{what}: targets");
    assert_eq!(a.weights(), b.weights(), "{what}: weights");
}

/// Writes and re-reads `g` in `fmt`, pinning the vertex count for edge
/// lists (isolated vertices are not representable in the format itself).
fn roundtrip<W: Weight>(g: &Csr<W>, fmt: Format) -> Csr<W> {
    let file = Scratch::new(fmt.name());
    let write_opts = IoOptions {
        format: Some(fmt),
        ..Default::default()
    };
    GraphIo::write(g, &file.0, &write_opts).unwrap();
    let read_opts = IoOptions {
        format: Some(fmt),
        vertices: Some(g.num_vertices()),
        ..Default::default()
    };
    GraphIo::read(&file.0, &read_opts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unweighted_formats_roundtrip(g in arb_any_graph()) {
        // Every format that can hold an unweighted graph. DIMACS is
        // weighted-only by definition and covered below.
        for fmt in [Format::Adjacency, Format::EdgeList, Format::Binary, Format::Container] {
            let back: Graph = roundtrip(&g, fmt);
            assert_same(fmt.name(), &g, &back);
        }
        // METIS is undirected-only; arb graphs are symmetric, so it applies.
        let back: Graph = roundtrip(&g, Format::Metis);
        assert_same("metis", &g, &back);
    }

    #[test]
    fn weighted_formats_roundtrip(g in arb_weighted_graph()) {
        for fmt in [
            Format::Adjacency,
            Format::EdgeList,
            Format::Dimacs,
            Format::Binary,
            Format::Container,
        ] {
            let back: Csr<u32> = roundtrip(&g, fmt);
            assert_same(fmt.name(), &g, &back);
        }
    }

    #[test]
    fn text_to_container_to_text_is_identity(g in arb_any_graph()) {
        // text -> .jgr -> text must reproduce the first file byte for byte.
        let first = Scratch::new("el");
        let jgr = Scratch::new("jgr");
        let second = Scratch::new("el");
        let opts = IoOptions::default();
        GraphIo::write(&g, &first.0, &opts).unwrap();
        let read_el = IoOptions { vertices: Some(g.num_vertices()), ..Default::default() };
        let loaded: Graph = GraphIo::read(&first.0, &read_el).unwrap();
        GraphIo::write(&loaded, &jgr.0, &opts).unwrap();
        let from_jgr: Graph = GraphIo::read(&jgr.0, &opts).unwrap();
        prop_assert_eq!(from_jgr.num_vertices(), g.num_vertices());
        GraphIo::write(&from_jgr, &second.0, &opts).unwrap();
        prop_assert_eq!(
            std::fs::read(&first.0).unwrap(),
            std::fs::read(&second.0).unwrap(),
            "text -> .jgr -> text changed the bytes"
        );
    }

    #[test]
    fn container_payload_and_verify_hold_for_random_graphs(g in arb_any_graph()) {
        let jgr = Scratch::new("jgr");
        let opts = IoOptions { compressed_payload: true, ..Default::default() };
        GraphIo::write(&g, &jgr.0, &opts).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&jgr.0).unwrap();
        mg.verify(&jgr.0).unwrap();
        assert_same("mapped->csr", &g, &mg.to_csr().unwrap());
        let cg = julienne_repro::graph::container::read_compressed(&jgr.0).unwrap();
        prop_assert_eq!(cg.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            prop_assert_eq!(cg.neighbors_vec(v), want, "compressed payload vertex {}", v);
        }
    }
}
