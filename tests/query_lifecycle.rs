//! Lifecycle properties for the session/query API (DESIGN §11): a cancelled
//! query is all-or-nothing — it returns either `Error::Cancelled` or the
//! complete, bit-identical answer, never partial output; a [`Session`]
//! keeps answering after cancelled and deadline-expired queries exactly as
//! a fresh engine would; and both properties survive schedule chaos
//! (`JULIENNE_CHAOS_SEED`) and many OS threads submitting queries against
//! one session at once, which is how `julienne serve` drives the pool.

mod common;

use julienne_repro::algorithms::registry::{GraphStore, ParamMap, Registry};
use julienne_repro::core::prelude::{Backend, CancelToken, Engine, QueryCtx, Session};
use julienne_repro::core::Error;
use julienne_repro::graph::generators::{rmat, RmatParams};
use julienne_repro::graph::transform::assign_weights;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Chaos mode is process-global; every window that flips it takes this lock
/// so parallel harness threads never observe a half-configured pool.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// One weighted + symmetric graph serves every algorithm in the mix.
fn store(backend: Backend) -> GraphStore {
    let g = assign_weights(&rmat(7, 8, RmatParams::default(), 5, true), 1, 64, 9);
    GraphStore::from_weighted(g, backend)
}

/// The served mix: bucketing peel, Δ-stepping, wBFS, and set cover.
const MIX: &[(&str, &[(&str, &str)])] = &[
    ("kcore", &[("top", "3")]),
    ("sssp", &[("algo", "delta"), ("src", "1"), ("delta", "16")]),
    ("sssp", &[("algo", "wbfs"), ("src", "2")]),
    (
        "setcover",
        &[
            ("sets", "48"),
            ("elements", "1024"),
            ("mult", "2"),
            ("seed", "3"),
        ],
    ),
];

fn params_of(idx: usize) -> ParamMap {
    ParamMap::from_pairs(
        MIX[idx]
            .1
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string())),
    )
}

/// Reference answers from a fresh engine with an unconstrained context,
/// computed once per backend.
fn baseline(backend: Backend) -> &'static Vec<String> {
    static CSR: OnceLock<Vec<String>> = OnceLock::new();
    static COMPRESSED: OnceLock<Vec<String>> = OnceLock::new();
    let cell = match backend {
        // In-memory graphs fall back to CSR under Backend::Mapped (there is
        // no file to map), so the two share one baseline.
        Backend::Csr | Backend::Mapped => &CSR,
        Backend::Compressed => &COMPRESSED,
    };
    cell.get_or_init(|| {
        let s = store(backend);
        (0..MIX.len())
            .map(|i| {
                Registry::standard()
                    .run(MIX[i].0, &s, &params_of(i), &QueryCtx::default())
                    .unwrap()
            })
            .collect()
    })
}

fn shared_session(backend: Backend) -> &'static Session<GraphStore> {
    static CSR: OnceLock<Session<GraphStore>> = OnceLock::new();
    static COMPRESSED: OnceLock<Session<GraphStore>> = OnceLock::new();
    let cell = match backend {
        Backend::Csr | Backend::Mapped => &CSR,
        Backend::Compressed => &COMPRESSED,
    };
    cell.get_or_init(|| Engine::default().session(Arc::new(store(backend))))
}

/// Runs query `idx` on `session` with a poll budget of `polls` and asserts
/// the all-or-nothing contract: `Err(Cancelled)` or the full baseline
/// answer, nothing in between.
fn assert_all_or_nothing(session: &Session<GraphStore>, backend: Backend, idx: usize, polls: u64) {
    let ctx = session
        .query()
        .with_cancel_token(CancelToken::cancel_after_polls(polls));
    match Registry::standard().run(MIX[idx].0, session.graph(), &params_of(idx), &ctx) {
        Err(Error::Cancelled) => {}
        Err(other) => panic!("{} (polls={polls}): unexpected error {other}", MIX[idx].0),
        Ok(out) => assert_eq!(
            out,
            baseline(backend)[idx],
            "{} (polls={polls}, {backend:?}): a query that outlives its cancel \
             budget must return the complete answer",
            MIX[idx].0
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancelled queries never return partial output: for every poll budget
    /// the result is `Err(Cancelled)` or the bit-identical full answer.
    #[test]
    fn cancellation_is_all_or_nothing(
        idx in 0usize..MIX.len(),
        polls in 0u64..96,
        csr in any::<bool>(),
    ) {
        let backend = if csr { Backend::Csr } else { Backend::Compressed };
        assert_all_or_nothing(shared_session(backend), backend, idx, polls);
    }

    /// After a cancelled query and an expired deadline, the same session
    /// answers bit-identically to a fresh engine.
    #[test]
    fn session_answers_match_fresh_engine_after_failed_queries(
        idx in 0usize..MIX.len(),
        polls in 0u64..8,
    ) {
        let backend = Backend::Csr;
        let session = Engine::default().session(Arc::new(store(backend)));
        let reg = Registry::standard();

        // A query dies on its cancel budget...
        let ctx = session
            .query()
            .with_cancel_token(CancelToken::cancel_after_polls(polls));
        let cancelled = reg.run(MIX[idx].0, session.graph(), &params_of(idx), &ctx);
        prop_assert!(matches!(cancelled, Err(Error::Cancelled)),
            "polls={polls} should cancel before any of these algorithms finish");

        // ...another dies on an already-expired deadline...
        let ctx = session.query().with_deadline(Duration::ZERO);
        let expired = reg.run(MIX[idx].0, session.graph(), &params_of(idx), &ctx);
        prop_assert!(matches!(expired, Err(Error::DeadlineExceeded)));

        // ...and the session still answers every query in the mix exactly
        // as a fresh engine does.
        for (i, (algo, _)) in MIX.iter().enumerate() {
            let out = reg
                .run(algo, session.graph(), &params_of(i), &session.query())
                .unwrap();
            prop_assert_eq!(&out, &baseline(backend)[i], "algo {}", algo);
        }
    }
}

/// The all-or-nothing and session-reuse contracts hold under schedule
/// chaos: permuted piece claims, injected yields, stalled workers.
#[test]
fn lifecycle_contract_holds_under_chaos() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let backend = Backend::Csr;
    let session = Engine::default().session(Arc::new(store(backend)));
    for seed in [1u64, 0x5EED, u64::MAX] {
        rayon::set_chaos_seed(Some(seed));
        for idx in 0..MIX.len() {
            for polls in [0, 1, 3, 9, 27, 1 << 40] {
                assert_all_or_nothing(&session, backend, idx, polls);
            }
        }
        // The session survives chaos-scheduled cancellations and still
        // matches the chaos-free baseline bit for bit.
        for (idx, (algo, _)) in MIX.iter().enumerate() {
            let out = Registry::standard()
                .run(algo, session.graph(), &params_of(idx), &session.query())
                .unwrap();
            assert_eq!(
                out,
                baseline(backend)[idx],
                "{algo} diverged; reproduce: JULIENNE_CHAOS_SEED={seed}"
            );
        }
        rayon::set_chaos_seed(None);
    }
}

/// Many OS threads submitting against one session at once — the shape
/// `julienne serve` puts the worker pool in. Interleaves doomed (budget-0)
/// and unconstrained queries; every success must be bit-identical.
#[test]
fn concurrent_submitters_share_one_session() {
    for backend in [Backend::Csr, Backend::Compressed] {
        let session = Arc::new(Engine::default().session(Arc::new(store(backend))));
        let expect = baseline(backend);
        let mut submitters = Vec::new();
        for t in 0..16usize {
            let session = Arc::clone(&session);
            submitters.push(thread::spawn(move || {
                for q in 0..6usize {
                    let idx = (t + q) % MIX.len();
                    let doomed = (t + q) % 3 == 0;
                    let ctx = if doomed {
                        session
                            .query()
                            .with_cancel_token(CancelToken::cancel_after_polls(0))
                    } else {
                        session.query()
                    };
                    let got = Registry::standard().run(
                        MIX[idx].0,
                        session.graph(),
                        &params_of(idx),
                        &ctx,
                    );
                    if doomed {
                        assert!(matches!(got, Err(Error::Cancelled)), "t{t} q{q}");
                    } else {
                        assert_eq!(got.unwrap(), expect[idx], "t{t} q{q} ({backend:?})");
                    }
                }
            }));
        }
        for s in submitters {
            s.join().unwrap();
        }
    }
}
