//! Cross-backend equivalence: every algorithm produces identical output on
//! the raw CSR backend and the Ligra+-style byte-compressed backend
//! (`CompressedGraph` / `CompressedWGraph`), at 1 and 4 worker threads.
//!
//! The traversal stack is generic over the graph-trait hierarchy
//! (`OutEdges` / `InEdges` / `GraphRef`), so the same algorithm code runs
//! against both representations; these tests pin that the representation
//! is invisible to results, on the paper's graph families (skewed R-MAT
//! and power-law Chung-Lu).

use julienne_repro::algorithms::bellman_ford::bellman_ford;
use julienne_repro::algorithms::betweenness::betweenness;
use julienne_repro::algorithms::bfs::{bfs, bfs_seq};
use julienne_repro::algorithms::clustering::{closeness, harmonic, local_clustering, transitivity};
use julienne_repro::algorithms::components::{connected_components, connected_components_seq};
use julienne_repro::algorithms::degeneracy::{
    degeneracy_order, densest_subgraph, densest_subgraph_approx, greedy_coloring,
};
use julienne_repro::algorithms::delta_stepping::{sssp, wbfs, SsspParams};
use julienne_repro::algorithms::dial::dial;
use julienne_repro::algorithms::dijkstra::dijkstra;
use julienne_repro::algorithms::gap_delta::gap_delta_stepping;
use julienne_repro::algorithms::kcore::{coreness, coreness_ligra, KcoreParams};
use julienne_repro::algorithms::ktruss::ktruss_julienne;
use julienne_repro::algorithms::mis::maximal_independent_set;
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::algorithms::setcover::{cover, SetCoverParams};
use julienne_repro::algorithms::stats::{estimate_diameter, graph_stats};
use julienne_repro::algorithms::triangles::triangle_count;
use julienne_repro::graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_repro::graph::generators::set_cover_instance;

mod common;

use common::{at, graphs, small_graphs, weighted};
use julienne_repro::core::query::QueryCtx;

const THREADS: [usize; 2] = [1, 4];

/// Asserts `csr()` and `compressed()` agree at 1 and 4 threads.
fn eq_backends<T: PartialEq + std::fmt::Debug + Send>(
    what: &str,
    csr: impl Fn() -> T + Send + Sync,
    compressed: impl Fn() -> T + Send + Sync,
) {
    for t in THREADS {
        let a = at(t, &csr);
        let b = at(t, &compressed);
        assert_eq!(a, b, "{what}: backends diverged at {t} threads");
    }
}

#[test]
fn frontier_algorithms_match_on_compressed_backend() {
    for (name, g) in graphs() {
        let cg = CompressedGraph::from_csr(&g);
        eq_backends(
            &format!("bfs/{name}"),
            || bfs(&g, 0).level,
            || bfs(&cg, 0).level,
        );
        eq_backends(
            &format!("bfs_seq/{name}"),
            || bfs_seq(&g, 0),
            || bfs_seq(&cg, 0),
        );
        eq_backends(
            &format!("components/{name}"),
            || connected_components(&g).label,
            || connected_components(&cg).label,
        );
        eq_backends(
            &format!("components_seq/{name}"),
            || connected_components_seq(&g),
            || connected_components_seq(&cg),
        );
        eq_backends(
            &format!("pagerank/{name}"),
            || pagerank(&g, 0.85, 1e-9, 50).rank,
            || pagerank(&cg, 0.85, 1e-9, 50).rank,
        );
        eq_backends(
            &format!("mis/{name}"),
            || maximal_independent_set(&g, 3).members,
            || maximal_independent_set(&cg, 3).members,
        );
    }
}

#[test]
fn peeling_algorithms_match_on_compressed_backend() {
    for (name, g) in graphs() {
        let cg = CompressedGraph::from_csr(&g);
        eq_backends(
            &format!("kcore_julienne/{name}"),
            || {
                let r = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
            || {
                let r = coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
        );
        eq_backends(
            &format!("kcore_ligra/{name}"),
            || coreness_ligra(&g).coreness,
            || coreness_ligra(&cg).coreness,
        );
        eq_backends(
            &format!("degeneracy_order/{name}"),
            || degeneracy_order(&g).order,
            || degeneracy_order(&cg).order,
        );
        eq_backends(
            &format!("densest/{name}"),
            || densest_subgraph(&g).vertices,
            || densest_subgraph(&cg).vertices,
        );
        eq_backends(
            &format!("densest_approx/{name}"),
            || densest_subgraph_approx(&g, 0.1).vertices,
            || densest_subgraph_approx(&cg, 0.1).vertices,
        );
        eq_backends(
            &format!("coloring/{name}"),
            || greedy_coloring(&g),
            || greedy_coloring(&cg),
        );
    }
}

#[test]
fn triangle_family_matches_on_compressed_backend() {
    for (name, g) in small_graphs() {
        let cg = CompressedGraph::from_csr(&g);
        eq_backends(
            &format!("triangles/{name}"),
            || triangle_count(&g),
            || triangle_count(&cg),
        );
        eq_backends(
            &format!("ktruss/{name}"),
            || {
                let r = ktruss_julienne(&g);
                (r.trussness, r.max_truss)
            },
            || {
                let r = ktruss_julienne(&cg);
                (r.trussness, r.max_truss)
            },
        );
        eq_backends(
            &format!("clustering/{name}"),
            || (local_clustering(&g), transitivity(&g).to_bits()),
            || (local_clustering(&cg), transitivity(&cg).to_bits()),
        );
    }
}

#[test]
fn centrality_and_stats_match_on_compressed_backend() {
    let sources: Vec<u32> = (0..16).collect();
    for (name, g) in small_graphs() {
        let cg = CompressedGraph::from_csr(&g);
        eq_backends(
            &format!("betweenness/{name}"),
            || betweenness(&g, &sources),
            || betweenness(&cg, &sources),
        );
        eq_backends(
            &format!("closeness/{name}"),
            || closeness(&g, &sources),
            || closeness(&cg, &sources),
        );
        eq_backends(
            &format!("harmonic/{name}"),
            || harmonic(&g, &sources),
            || harmonic(&cg, &sources),
        );
        eq_backends(
            &format!("graph_stats/{name}"),
            || {
                let s = graph_stats(&g);
                (s.rho, s.k_max, s.max_degree, s.eccentricity_from_zero)
            },
            || {
                let s = graph_stats(&cg);
                (s.rho, s.k_max, s.max_degree, s.eccentricity_from_zero)
            },
        );
        eq_backends(
            &format!("diameter/{name}"),
            || estimate_diameter(&g, 4, 9),
            || estimate_diameter(&cg, 4, 9),
        );
    }
}

#[test]
fn sssp_family_matches_on_compressed_backend() {
    for heavy in [false, true] {
        let delta = if heavy { 32_768 } else { 1 };
        for (name, g) in weighted(heavy) {
            let cg = CompressedWGraph::from_csr(&g);
            eq_backends(
                &format!("delta_stepping/{name}/heavy={heavy}"),
                || {
                    let r = sssp(&g, &SsspParams { src: 0, delta }, &QueryCtx::default()).unwrap();
                    (r.dist, r.rounds)
                },
                || {
                    let r = sssp(&cg, &SsspParams { src: 0, delta }, &QueryCtx::default()).unwrap();
                    (r.dist, r.rounds)
                },
            );
            eq_backends(
                &format!("dijkstra/{name}/heavy={heavy}"),
                || dijkstra(&g, 0),
                || dijkstra(&cg, 0),
            );
            eq_backends(
                &format!("bellman_ford/{name}/heavy={heavy}"),
                || bellman_ford(&g, 0).dist,
                || bellman_ford(&cg, 0).dist,
            );
            eq_backends(
                &format!("gap_delta/{name}/heavy={heavy}"),
                || gap_delta_stepping(&g, 0, delta.max(1024)).dist,
                || gap_delta_stepping(&cg, 0, delta.max(1024)).dist,
            );
            eq_backends(
                &format!("dial/{name}/heavy={heavy}"),
                || dial(&g, 0),
                || dial(&cg, 0),
            );
        }
        // wBFS is the light-weight special case.
        if !heavy {
            for (name, g) in weighted(false) {
                let cg = CompressedWGraph::from_csr(&g);
                eq_backends(
                    &format!("wbfs/{name}"),
                    || wbfs(&g, 0).dist,
                    || wbfs(&cg, 0).dist,
                );
            }
        }
    }
}

#[test]
fn tiny_chunk_compressed_backend_matches_csr() {
    // Chunk size 4 forces nearly every vertex into multi-chunk blocks, so
    // the degree-aware split paths in edge_map (sparse task splitting and
    // the dense heavy-vertex chunk scan) run on every frontier instead of
    // only on hubs. Results must still be identical to CSR at 1 and 4
    // threads.
    for (name, g) in graphs() {
        let cg = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        eq_backends(
            &format!("tiny-chunk bfs/{name}"),
            || bfs(&g, 0).level,
            || bfs(&cg, 0).level,
        );
        eq_backends(
            &format!("tiny-chunk components/{name}"),
            || connected_components(&g).label,
            || connected_components(&cg).label,
        );
        eq_backends(
            &format!("tiny-chunk pagerank/{name}"),
            || pagerank(&g, 0.85, 1e-9, 50).rank,
            || pagerank(&cg, 0.85, 1e-9, 50).rank,
        );
        eq_backends(
            &format!("tiny-chunk kcore/{name}"),
            || {
                let r = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
            || {
                let r = coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
        );
    }
    for (name, g) in weighted(false) {
        let cg = CompressedWGraph::from_csr_with_chunk_size(&g, 4);
        eq_backends(
            &format!("tiny-chunk wbfs/{name}"),
            || wbfs(&g, 0).dist,
            || wbfs(&cg, 0).dist,
        );
        eq_backends(
            &format!("tiny-chunk sssp/{name}"),
            || {
                let r = sssp(&g, &SsspParams { src: 0, delta: 1 }, &QueryCtx::default()).unwrap();
                (r.dist, r.rounds)
            },
            || {
                let r = sssp(&cg, &SsspParams { src: 0, delta: 1 }, &QueryCtx::default()).unwrap();
                (r.dist, r.rounds)
            },
        );
    }
}

#[test]
fn setcover_matches_after_compression_round_trip() {
    let inst = set_cover_instance(256, 16_000, 4, 5);
    let mut roundtrip = set_cover_instance(256, 16_000, 4, 5);
    roundtrip.graph = CompressedGraph::from_csr(&inst.graph).to_csr();
    eq_backends(
        "setcover",
        || {
            let r = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
            (r.cover, r.rounds)
        },
        || {
            let r = cover(
                &roundtrip,
                &SetCoverParams { eps: 0.01 },
                &QueryCtx::default(),
            )
            .unwrap();
            (r.cover, r.rounds)
        },
    );
}
