//! Property tests for the table-driven decode path: the branch-reduced
//! decoder ([`BlockDecoder`]) must be observation-identical to the
//! pre-table reference decoder on every input the encoder can produce, the
//! chunked block layout must decode to the same adjacency as the legacy
//! (unchunked) layout, and corrupt (truncated) streams must fail closed.

use julienne_repro::graph::compress::{CompressedGraph, CompressedWGraph, DEFAULT_CHUNK_SIZE};
use julienne_repro::graph::decode::{put_varint, reference, BlockDecoder, ERR_TRUNCATED};
use proptest::prelude::*;

mod common;
use common::{arb_graph, arb_weighted_graph};

/// Varint values spanning all codeword lengths: uniform `u64` alone almost
/// never draws short codewords, so shift by a random amount to spread the
/// draws across 1..=10-byte encodings.
fn arb_varints() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u32..64).prop_map(|(x, s)| x >> s), 1..120)
}

/// Decodes `vals.len()` codewords from `buf` three ways — scalar table
/// path, bulk window path, validating path — and checks each against the
/// expected values and final cursor position.
fn assert_decodes_back(buf: &[u8], vals: &[u64]) {
    let mut scalar = BlockDecoder::new(buf);
    for (i, &v) in vals.iter().enumerate() {
        assert_eq!(scalar.varint(), v, "scalar decode diverged at {i}");
    }
    assert_eq!(scalar.pos(), buf.len(), "scalar cursor off the end");

    let mut bulk = BlockDecoder::new(buf);
    let mut got = Vec::with_capacity(vals.len());
    bulk.for_each_varint(vals.len(), |x| got.push(x));
    assert_eq!(got, vals, "bulk window decode diverged");
    assert_eq!(bulk.pos(), buf.len(), "bulk cursor off the end");

    let mut checked = BlockDecoder::new(buf);
    for (i, &v) in vals.iter().enumerate() {
        assert_eq!(checked.try_varint(), Ok(v), "try_varint diverged at {i}");
    }

    // The fused gap-accumulating path must produce the running (wrapping)
    // sums of the same codewords, through whichever mix of prefix-tree
    // blocks, masked partial windows, and scalar fallbacks it takes.
    let base = 7u32;
    let mut want_sums = Vec::with_capacity(vals.len());
    let mut acc = base;
    for &v in vals {
        acc = acc.wrapping_add(v as u32);
        want_sums.push(acc);
    }
    let mut fused = BlockDecoder::new(buf);
    let mut sums = Vec::with_capacity(vals.len());
    fused.for_each_delta_sum(base, vals.len(), |u| sums.push(u));
    assert_eq!(sums, want_sums, "fused delta-sum decode diverged");
    assert_eq!(fused.pos(), buf.len(), "fused cursor off the end");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_stream_roundtrips_on_all_paths(vals in arb_varints()) {
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        assert_decodes_back(&buf, &vals);
        // The retired decoder agrees byte for byte on valid input.
        let mut pos = 0usize;
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(reference::get_varint(&buf, &mut pos), v, "reference diverged at {}", i);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_stream_fails_closed(vals in arb_varints(), frac in 0u32..1000) {
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let cut = (buf.len() as u64 * frac as u64 / 1000) as usize;
        let mut dec = BlockDecoder::new(&buf[..cut]);
        // Every value decoded before the cut must be a prefix of the full
        // stream; the decoder must stop with a typed error, never read
        // past the slice or fabricate a value.
        let mut i = 0usize;
        loop {
            match dec.try_varint() {
                Ok(x) => {
                    prop_assert!(i < vals.len(), "decoded more values than encoded");
                    prop_assert_eq!(x, vals[i], "prefix diverged at {}", i);
                    i += 1;
                    if dec.pos() == cut {
                        break; // cut landed on a codeword boundary
                    }
                }
                Err(e) => {
                    prop_assert_eq!(e, ERR_TRUNCATED);
                    break;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn table_decode_matches_reference_on_graphs(g in arb_graph()) {
        let cg = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        let (offsets, degrees, data) = cg.raw_parts();
        for v in 0..g.num_vertices() as u32 {
            let mut table = Vec::new();
            cg.for_each_neighbor(v, |u| table.push(u));
            let mut want = Vec::new();
            reference::for_each_neighbor_legacy(
                v,
                degrees[v as usize] as usize,
                data,
                offsets[v as usize] as usize,
                |u| want.push(u),
            );
            prop_assert_eq!(&table, &want, "vertex {} table vs reference", v);
        }
    }

    #[test]
    fn chunked_layouts_decode_identically(g in arb_graph(), cs in 1u32..9) {
        // Tiny chunk sizes force multi-chunk blocks even on small random
        // graphs; DEFAULT_CHUNK_SIZE covers the shipped configuration.
        let legacy = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        for chunk_size in [cs, DEFAULT_CHUNK_SIZE] {
            let chunked = CompressedGraph::from_csr_with_chunk_size(&g, chunk_size);
            for v in 0..g.num_vertices() as u32 {
                prop_assert_eq!(
                    chunked.neighbors_vec(v),
                    legacy.neighbors_vec(v),
                    "vertex {} cs={}", v, chunk_size
                );
                // Chunk-wise traversal concatenates to the whole list.
                let mut cat = Vec::new();
                for c in 0..chunked.num_chunks_of(v) {
                    chunked.for_each_neighbor_chunk(v, c, |u| cat.push(u));
                }
                prop_assert_eq!(cat, legacy.neighbors_vec(v), "chunk concat vertex {} cs={}", v, chunk_size);
            }
        }
    }

    #[test]
    fn early_exit_sees_a_prefix(g in arb_graph(), k in 0usize..12) {
        let cg = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        for v in 0..g.num_vertices() as u32 {
            let full = cg.neighbors_vec(v);
            let mut seen = Vec::new();
            cg.for_each_neighbor_until(v, |u| {
                seen.push(u);
                seen.len() < k
            });
            let want = &full[..full.len().min(k.max(usize::from(!full.is_empty())))];
            prop_assert_eq!(&seen[..], want, "vertex {} k={}", v, k);
        }
    }

    #[test]
    fn weighted_decode_matches_csr(g in arb_weighted_graph(), cs in 0u32..6) {
        let cg = CompressedWGraph::from_csr_with_chunk_size(&g, cs);
        for v in 0..g.num_vertices() as u32 {
            let mut got = Vec::new();
            cg.for_each_edge(v, |u, w| got.push((u, w)));
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = g
                .neighbors(v)
                .iter()
                .copied()
                .zip(g.weights_of(v).iter().copied())
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {} cs={}", v, cs);
        }
    }
}
