//! Cross-crate integration: all coreness implementations agree across every
//! graph family and backend, and the work counters witness the paper's
//! efficiency separation.

use julienne_repro::algorithms::kcore::{coreness, coreness_bz_seq, coreness_ligra, KcoreParams};
use julienne_repro::core::engine::Engine;
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::compress::CompressedGraph;
use julienne_repro::graph::generators::{chung_lu, erdos_renyi, grid2d, rmat, RmatParams};
use julienne_repro::graph::Graph;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("er", erdos_renyi(2_000, 16_000, 1, true)),
        ("rmat", rmat(11, 8, RmatParams::default(), 2, true)),
        ("chunglu", chung_lu(2_000, 16_000, 2.2, 3, true)),
        ("grid", grid2d(40, 50)),
    ]
}

#[test]
fn all_implementations_agree_on_all_families() {
    for (name, g) in families() {
        let oracle = coreness_bz_seq(&g);
        let jul = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
        assert_eq!(jul.coreness, oracle.coreness, "julienne vs BZ on {name}");
        let lig = coreness_ligra(&g);
        assert_eq!(lig.coreness, oracle.coreness, "ligra vs BZ on {name}");
        let cg = CompressedGraph::from_csr(&g);
        let comp = coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
        assert_eq!(comp.coreness, oracle.coreness, "compressed vs BZ on {name}");
    }
}

#[test]
fn open_bucket_count_is_semantically_invisible() {
    let g = rmat(11, 8, RmatParams::default(), 9, true);
    let reference = coreness(&g, &KcoreParams::default(), &QueryCtx::default())
        .unwrap()
        .coreness;
    for nb in [1usize, 2, 7, 64, 4096] {
        assert_eq!(
            coreness(
                &g,
                &KcoreParams::default(),
                &QueryCtx::from_engine(&Engine::builder().open_buckets(nb).build())
            )
            .unwrap()
            .coreness,
            reference,
            "nB = {nb}"
        );
    }
}

#[test]
fn work_efficiency_separation_grows_with_kmax() {
    // The Ligra implementation's scans grow with k_max · n; Julienne's stay
    // at n. A denser graph (higher k_max) must widen the ratio.
    let sparse = rmat(11, 4, RmatParams::default(), 5, true);
    let dense = rmat(11, 32, RmatParams::default(), 5, true);
    let ratio = |g: &Graph| {
        let j = coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
        let l = coreness_ligra(g);
        assert_eq!(j.coreness, l.coreness);
        l.vertices_scanned as f64 / j.vertices_scanned as f64
    };
    let r_sparse = ratio(&sparse);
    let r_dense = ratio(&dense);
    assert!(
        r_dense > r_sparse,
        "dense ratio {r_dense:.1} should exceed sparse ratio {r_sparse:.1}"
    );
}

#[test]
fn coreness_is_a_fixed_point() {
    // λ(v) ≥ k iff v has ≥ k neighbors with λ ≥ k: verify the defining
    // property on a midsize graph.
    let g = rmat(10, 8, RmatParams::default(), 11, true);
    let cores = coreness(&g, &KcoreParams::default(), &QueryCtx::default())
        .unwrap()
        .coreness;
    for v in 0..g.num_vertices() as u32 {
        let k = cores[v as usize];
        if k == 0 {
            continue;
        }
        let strong = g
            .neighbors(v)
            .iter()
            .filter(|&&u| cores[u as usize] >= k)
            .count();
        assert!(
            strong >= k as usize,
            "vertex {v} claims coreness {k} but has only {strong} strong neighbors"
        );
    }
}

#[test]
fn star_graph_coreness() {
    use julienne_repro::graph::builder::from_pairs_symmetric;
    let pairs: Vec<(u32, u32)> = (1..100).map(|i| (0, i)).collect();
    let g = from_pairs_symmetric(100, &pairs);
    let r = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    assert!(r.coreness.iter().all(|&c| c == 1));
}
