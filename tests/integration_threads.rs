//! Cross-thread-count determinism: every bucketed algorithm produces
//! bit-identical output at 1, 2, 4, and 8 worker threads.
//!
//! This is the end-to-end witness for the runtime's determinism contract:
//! chunk/piece counts are pure functions of input length (never of the
//! thread count), and partial results are always combined in piece order,
//! so parallelism affects speed only — never results. These tests pin that
//! property at the whole-algorithm level on the paper's graph families.

mod common;

use common::{at, graphs, weighted};
use julienne_repro::algorithms::delta_stepping::{sssp, wbfs, SsspParams};
use julienne_repro::algorithms::kcore::{coreness, KcoreParams};
use julienne_repro::algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::set_cover_instance;

const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn kcore_identical_across_thread_counts() {
    for (name, g) in graphs() {
        let reference = at(1, || {
            coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap()
        });
        for t in THREADS {
            let r = at(t, || {
                coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap()
            });
            assert_eq!(r.coreness, reference.coreness, "{name} at {t} threads");
        }
    }
}

#[test]
fn delta_stepping_identical_across_thread_counts() {
    for (name, g) in weighted(true) {
        let reference = at(1, || {
            sssp(
                &g,
                &SsspParams {
                    src: 0,
                    delta: 32_768,
                },
                &QueryCtx::default(),
            )
            .unwrap()
        });
        for t in THREADS {
            let r = at(t, || {
                sssp(
                    &g,
                    &SsspParams {
                        src: 0,
                        delta: 32_768,
                    },
                    &QueryCtx::default(),
                )
                .unwrap()
            });
            assert_eq!(r.dist, reference.dist, "{name} at {t} threads");
            assert_eq!(r.rounds, reference.rounds, "{name} rounds at {t} threads");
        }
    }
}

#[test]
fn wbfs_identical_across_thread_counts() {
    for (name, g) in weighted(false) {
        let reference = at(1, || wbfs(&g, 0));
        for t in THREADS {
            let r = at(t, || wbfs(&g, 0));
            assert_eq!(r.dist, reference.dist, "{name} at {t} threads");
        }
    }
}

#[test]
fn setcover_identical_across_thread_counts() {
    let inst = set_cover_instance(256, 16_000, 4, 5);
    let reference = at(1, || {
        cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap()
    });
    assert!(verify_cover(&inst, &reference.cover));
    for t in THREADS {
        let r = at(t, || {
            cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap()
        });
        assert_eq!(r.cover, reference.cover, "setcover at {t} threads");
        assert_eq!(r.rounds, reference.rounds, "setcover rounds at {t} threads");
    }
}
