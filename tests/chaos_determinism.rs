//! Schedule-chaos determinism: under `JULIENNE_CHAOS_SEED` the worker pool
//! permutes piece claim order, injects yields/sleeps, and stalls workers —
//! and every algorithm must still produce **bit-identical** output, because
//! the determinism contract derives piece boundaries from input length and
//! combines partial results in piece order, never in completion order.
//!
//! Each failure message prints the chaos seed and thread count; reproduce
//! any failure with
//! `JULIENNE_CHAOS_SEED=<seed> JULIENNE_NUM_THREADS=<t> cargo test <name>`.

mod common;

use common::{at, small_graphs};
use julienne_repro::algorithms::bellman_ford::bellman_ford;
use julienne_repro::algorithms::betweenness::betweenness;
use julienne_repro::algorithms::bfs::bfs;
use julienne_repro::algorithms::clustering::{closeness, harmonic, local_clustering, transitivity};
use julienne_repro::algorithms::components::connected_components;
use julienne_repro::algorithms::degeneracy::degeneracy_order;
use julienne_repro::algorithms::delta_stepping::{sssp, wbfs, SsspParams};
use julienne_repro::algorithms::dial::dial;
use julienne_repro::algorithms::dijkstra::dijkstra;
use julienne_repro::algorithms::gap_delta::gap_delta_stepping;
use julienne_repro::algorithms::kcore::{coreness, coreness_ligra, KcoreParams};
use julienne_repro::algorithms::ktruss::ktruss_julienne;
use julienne_repro::algorithms::mis::maximal_independent_set;
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::algorithms::setcover::{cover, SetCoverParams};
use julienne_repro::algorithms::stats::graph_stats;
use julienne_repro::algorithms::triangles::triangle_count;
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::set_cover_instance;
use julienne_repro::graph::transform::{assign_weights, wbfs_weight_range};
use julienne_repro::graph::WGraph;
use std::fmt::Debug;
use std::sync::Mutex;

/// Chaos mode is process-global; tests in this binary run on parallel
/// harness threads, so every chaos window takes this lock.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// ≥ 8 seeds, spanning small values, bit patterns, and the extremes.
const SEEDS: [u64; 8] = [
    0,
    1,
    42,
    0x5EED,
    0x9E37_79B9_7F4A_7C15,
    0xDEAD_BEEF,
    0x0123_4567_89AB_CDEF,
    u64::MAX,
];

const THREADS: [usize; 3] = [2, 4, 8];

/// Asserts `f` produces the same output under every chaos seed × thread
/// count as it does with chaos off.
fn chaos_check<T: PartialEq + Debug + Send>(what: &str, f: impl Fn() -> T + Send + Sync) {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    rayon::set_chaos_seed(None);
    let reference = at(4, &f);
    for &seed in &SEEDS {
        for threads in THREADS {
            rayon::set_chaos_seed(Some(seed));
            let got = at(threads, &f);
            rayon::set_chaos_seed(None);
            assert!(
                got == reference,
                "{what}: output diverged under schedule chaos.\n  \
                 reproduce: JULIENNE_CHAOS_SEED={seed} JULIENNE_NUM_THREADS={threads} \
                 cargo test --test chaos_determinism"
            );
        }
    }
}

fn small_weighted(heavy: bool) -> Vec<(&'static str, WGraph)> {
    let (lo, hi) = if heavy {
        (1, 100_000)
    } else {
        wbfs_weight_range(512)
    };
    small_graphs()
        .into_iter()
        .map(|(name, g)| (name, assign_weights(&g, lo, hi, 21)))
        .collect()
}

#[test]
fn frontier_algorithms_deterministic_under_chaos() {
    for (name, g) in small_graphs() {
        chaos_check(&format!("bfs/{name}"), || bfs(&g, 0).level);
        chaos_check(&format!("components/{name}"), || {
            connected_components(&g).label
        });
        chaos_check(&format!("pagerank/{name}"), || {
            pagerank(&g, 0.85, 1e-9, 30)
                .rank
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<u64>>()
        });
        chaos_check(&format!("mis/{name}"), || {
            maximal_independent_set(&g, 3).members
        });
    }
}

#[test]
fn peeling_algorithms_deterministic_under_chaos() {
    for (name, g) in small_graphs() {
        chaos_check(&format!("kcore_julienne/{name}"), || {
            let r = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
            (r.coreness, r.rounds)
        });
        chaos_check(&format!("kcore_ligra/{name}"), || {
            coreness_ligra(&g).coreness
        });
        chaos_check(&format!("degeneracy/{name}"), || degeneracy_order(&g).order);
        chaos_check(&format!("ktruss/{name}"), || {
            let r = ktruss_julienne(&g);
            (r.trussness, r.max_truss)
        });
    }
}

#[test]
fn sssp_family_deterministic_under_chaos() {
    for (name, g) in small_weighted(true) {
        chaos_check(&format!("delta_stepping/{name}"), || {
            let r = sssp(
                &g,
                &SsspParams {
                    src: 0,
                    delta: 32_768,
                },
                &QueryCtx::default(),
            )
            .unwrap();
            (r.dist, r.rounds)
        });
        chaos_check(&format!("bellman_ford/{name}"), || bellman_ford(&g, 0).dist);
        chaos_check(&format!("gap_delta/{name}"), || {
            gap_delta_stepping(&g, 0, 4_096).dist
        });
        chaos_check(&format!("dijkstra/{name}"), || dijkstra(&g, 0));
        chaos_check(&format!("dial/{name}"), || dial(&g, 0));
    }
    for (name, g) in small_weighted(false) {
        chaos_check(&format!("wbfs/{name}"), || wbfs(&g, 0).dist);
    }
}

#[test]
fn triangles_and_centrality_deterministic_under_chaos() {
    let sources: Vec<u32> = (0..8).collect();
    for (name, g) in small_graphs() {
        chaos_check(&format!("triangles/{name}"), || triangle_count(&g));
        chaos_check(&format!("clustering/{name}"), || {
            let lc: Vec<u64> = local_clustering(&g).iter().map(|c| c.to_bits()).collect();
            (lc, transitivity(&g).to_bits())
        });
        chaos_check(&format!("betweenness/{name}"), || {
            betweenness(&g, &sources)
                .iter()
                .map(|b| b.to_bits())
                .collect::<Vec<u64>>()
        });
        chaos_check(&format!("closeness/{name}"), || {
            closeness(&g, &sources)
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<u64>>()
        });
        chaos_check(&format!("harmonic/{name}"), || {
            harmonic(&g, &sources)
                .iter()
                .map(|h| h.to_bits())
                .collect::<Vec<u64>>()
        });
        chaos_check(&format!("stats/{name}"), || {
            let s = graph_stats(&g);
            (s.rho, s.k_max, s.max_degree, s.eccentricity_from_zero)
        });
    }
}

#[test]
fn setcover_deterministic_under_chaos() {
    let inst = set_cover_instance(128, 6_000, 4, 5);
    chaos_check("setcover", || {
        let r = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
        (r.cover, r.rounds)
    });
}
