//! Cross-crate integration of the Ligra engine: traversal-mode equivalence,
//! backend equivalence (CSR vs compressed vs packed), and the bucket
//! microbenchmark as an end-to-end framework smoke test.

use julienne_repro::algorithms::bfs::{bfs_seq, bfs_with_mode};
use julienne_repro::graph::compress::CompressedGraph;
use julienne_repro::graph::generators::{erdos_renyi, rmat, RmatParams};
use julienne_repro::graph::packed::PackedGraph;
use julienne_repro::ligra::edge_map::{EdgeMap, Mode};
use julienne_repro::ligra::edge_map_reduce::edge_map_sum;
use julienne_repro::ligra::traits::OutEdges;

#[test]
fn bfs_modes_agree_on_every_family() {
    for (name, g) in [
        ("er", erdos_renyi(3_000, 24_000, 1, true)),
        ("rmat", rmat(11, 8, RmatParams::default(), 2, true)),
    ] {
        let oracle = bfs_seq(&g, 0);
        for mode in [Mode::Sparse, Mode::Dense, Mode::Auto] {
            assert_eq!(bfs_with_mode(&g, 0, mode).level, oracle, "{name} {mode:?}");
        }
    }
}

#[test]
fn sparse_edge_map_identical_across_backends() {
    let g = erdos_renyi(1_000, 8_000, 4, true);
    let cg = CompressedGraph::from_csr(&g);
    let pg = PackedGraph::from_csr(&g);
    let frontier: Vec<u32> = (0..100).collect();
    let run = |backend: &dyn Fn() -> Vec<u32>| {
        let mut out = backend();
        out.sort_unstable();
        out
    };
    let on_csr = run(&|| {
        EdgeMap::new(&g)
            .remove_duplicates(true)
            .run_sparse(&frontier, |_, _, _| true, |v| v % 2 == 0)
            .to_vertices()
    });
    let on_compressed = run(&|| {
        EdgeMap::new(&cg)
            .remove_duplicates(true)
            .run_sparse(&frontier, |_, _, _| true, |v| v % 2 == 0)
            .to_vertices()
    });
    let on_packed = run(&|| {
        EdgeMap::new(&pg)
            .remove_duplicates(true)
            .run_sparse(&frontier, |_, _, _| true, |v| v % 2 == 0)
            .to_vertices()
    });
    assert_eq!(on_csr, on_compressed);
    assert_eq!(on_csr, on_packed);
}

#[test]
fn edge_map_sum_identical_across_backends() {
    let g = rmat(10, 8, RmatParams::default(), 6, true);
    let cg = CompressedGraph::from_csr(&g);
    let frontier: Vec<u32> = (0..(g.num_vertices() as u32) / 3).collect();
    let mut a: Vec<(u32, u32)> =
        edge_map_sum(&g, &frontier, |_, c| Some(c), |_| true).into_entries();
    let mut b: Vec<(u32, u32)> =
        edge_map_sum(&cg, &frontier, |_, c| Some(c), |_| true).into_entries();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert_eq!(OutEdges::num_edges(&g), cg.num_edges());
}

#[test]
fn microbenchmark_invariants_across_configs() {
    use julienne_bench_support::*;
    for num_open in [1usize, 32, 128] {
        for b in [64u32, 512] {
            let r = run_micro(20_000, b, num_open);
            // Every identifier is extracted at least once overall: extracted
            // count ≥ ... at least the ids never touched as neighbors.
            assert!(r.0 > 0, "no extractions at b={b} nB={num_open}");
            // Null requests cost nothing but are counted separately.
            assert!(r.1 <= 20_000 * 8, "moved more than total neighbor picks");
        }
    }
}

/// Minimal local re-implementation of the Section 3.4 microbenchmark so the
/// root test doesn't depend on the bench crate (dev-only target).
mod julienne_bench_support {
    use julienne_repro::core::bucket::{BucketDest, BucketsBuilder, Order, NULL_BKT};
    use julienne_repro::graph::generators::random_regular;
    use julienne_repro::ligra::traits::OutEdges;
    use julienne_repro::primitives::rng::hash_range;
    use std::sync::atomic::{AtomicU32, Ordering};

    pub fn run_micro(n: usize, b: u32, num_open: usize) -> (u64, u64) {
        let g = random_regular(n, 8, 99, false);
        let d: Vec<AtomicU32> = (0..n as u64)
            .map(|i| AtomicU32::new(hash_range(7, i, b as u64) as u32))
            .collect();
        let mut buckets = BucketsBuilder::new(
            n,
            |i: u32| d[i as usize].load(Ordering::SeqCst),
            Order::Increasing,
        )
        .open_buckets(num_open)
        .build();
        while let Some((cur, ids)) = buckets.next_bucket() {
            let mut moves: Vec<(u32, BucketDest)> = Vec::new();
            for &i in &ids {
                g.for_each_out(i, |v, _| {
                    let dv = d[v as usize].load(Ordering::SeqCst);
                    if dv == NULL_BKT {
                        return;
                    }
                    if dv > cur {
                        let new = (dv / 2).max(cur);
                        d[v as usize].store(new, Ordering::SeqCst);
                        moves.push((v, buckets.get_bucket(dv, new)));
                    } else {
                        d[v as usize].store(NULL_BKT, Ordering::SeqCst);
                    }
                });
            }
            buckets.update_buckets(&moves);
        }
        let s = buckets.stats();
        (s.identifiers_extracted, s.identifiers_moved)
    }
}
