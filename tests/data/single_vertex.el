# One vertex, no edges: load with an explicit vertex count (n = 1).
