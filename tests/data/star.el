# Star K_{1,8}: hub 0 with eight leaves. Peeling removes all leaves in one
# round; coreness is 1 everywhere, trussness 2, no triangles.
0 1
0 2
0 3
0 4
0 5
0 6
0 7
0 8
