# Weighted boundary case: edge weights at and near u32::MAX = 4294967295,
# so any path of two or more edges overflows u32 — distances must be
# accumulated in u64. The chain 0-1-2-3 reaches 3 * (u32::MAX) ~ 2^33.5;
# the shortcut 0-4-3 is cheaper. Vertex 5 sits at the n-1 id boundary.
0 1 4294967295
1 2 4294967295
2 3 4294967295
0 4 4294967294
4 3 4294967295
3 5 1
