# Edgeless graph: load with an explicit vertex count (n = 5).
# Every algorithm must handle a graph with vertices but no edges.
