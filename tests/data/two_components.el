# Two components plus an isolate (load with n = 7): a triangle {0,1,2},
# a path 3-4-5, and the isolated vertex 6. Exercises unreached vertices in
# every traversal and per-component labels.
0 1
1 2
2 0
3 4
4 5
