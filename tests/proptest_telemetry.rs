//! Property tests for the telemetry layer: enabling collection must never
//! change algorithm outputs (telemetry is observe-only), and the counters
//! and per-round records an enabled engine accumulates must be internally
//! consistent with the algorithm's own result counters.

mod common;

use common::arb_weighted_graph;
use julienne_repro::algorithms::delta_stepping::{sssp, SsspParams};
use julienne_repro::algorithms::kcore::{coreness, KcoreParams};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::prelude::{Counter, Engine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kcore_output_identical_with_and_without_telemetry(g in arb_weighted_graph()) {
        let plain = coreness(&g, &KcoreParams::default(), &QueryCtx::from_engine(&Engine::default())).unwrap();
        let traced_engine = Engine::builder().telemetry(true).build();
        let traced = coreness(&g, &KcoreParams::default(), &QueryCtx::from_engine(&traced_engine)).unwrap();
        prop_assert_eq!(&plain.coreness, &traced.coreness);
        prop_assert_eq!(plain.rounds, traced.rounds);
        prop_assert_eq!(plain.identifiers_moved, traced.identifiers_moved);
        // When the feature is compiled in, the enabled sink must agree with
        // the algorithm's own counters.
        #[cfg(feature = "telemetry")]
        {
            let t = traced_engine.telemetry();
            prop_assert_eq!(t.get(Counter::Rounds), traced.rounds);
            prop_assert_eq!(t.get(Counter::VerticesScanned), traced.vertices_scanned);
            prop_assert_eq!(t.get(Counter::EdgesScanned), traced.edges_traversed);
            let records = t.rounds();
            prop_assert_eq!(records.len() as u64, traced.rounds);
            let frontier_sum: u64 = records.iter().map(|r| r.frontier as u64).sum();
            prop_assert_eq!(frontier_sum, g.num_vertices() as u64);
        }
        // The disabled sink must stay empty either way.
        let _ = Counter::Rounds; // used only under the feature gate above
        prop_assert_eq!(Engine::default().telemetry().get(Counter::Rounds), 0);
    }

    #[test]
    fn sssp_output_identical_with_and_without_telemetry(
        (g, src, delta) in arb_weighted_graph().prop_flat_map(|g| {
            let n = g.num_vertices() as u32;
            (Just(g), 0..n, prop_oneof![Just(1u64), Just(64), Just(1 << 20)])
        })
    ) {
        let plain = sssp(&g, &SsspParams { src, delta }, &QueryCtx::from_engine(&Engine::default())).unwrap();
        let traced_engine = Engine::builder().telemetry(true).build();
        let traced = sssp(&g, &SsspParams { src, delta }, &QueryCtx::from_engine(&traced_engine)).unwrap();
        prop_assert_eq!(&plain.dist, &traced.dist);
        prop_assert_eq!(plain.rounds, traced.rounds);
        prop_assert_eq!(plain.relaxations, traced.relaxations);
        prop_assert_eq!(plain.identifiers_moved, traced.identifiers_moved);
        #[cfg(feature = "telemetry")]
        {
            let t = traced_engine.telemetry();
            prop_assert_eq!(t.get(Counter::Rounds), traced.rounds);
            // Each round is a sparse traversal of the extracted annulus.
            prop_assert_eq!(t.get(Counter::SparseTraversals), traced.rounds);
            let records = t.rounds();
            let scanned: u64 = records.iter().map(|r| r.edges_scanned).sum();
            prop_assert_eq!(scanned, traced.relaxations);
        }
    }
}
