//! Batched-equals-solo equivalence for the serve pipeline's fused
//! multi-source SSSP kernel: for arbitrary weighted graphs and source
//! sets, every lane of [`sssp_multi`] must be **bit-identical** to a solo
//! [`sssp`] run from the same source — distances, round counts, and
//! relaxation counts — on both graph backends, at 1 and 4 worker threads,
//! and under schedule chaos. Cancelling one lane must leave its siblings
//! byte-for-byte untouched.
//!
//! This is the contract that lets the query server coalesce pipelined
//! `sssp` queries into one traversal and still answer each client exactly
//! what a dedicated run would have said.

mod common;

use common::{arb_weighted_graph, at};
use julienne_repro::algorithms::delta_stepping::{sssp, SsspParams};
use julienne_repro::algorithms::multi_source::{sssp_multi, SsspLane};
use julienne_repro::graph::compress::CompressedWGraph;
use julienne_repro::graph::Csr;
use julienne_repro::ligra::traits::OutEdges;
use julienne_repro::prelude::{CancelToken, Engine, QueryCtx};
use proptest::prelude::*;
use std::sync::Mutex;

/// Chaos mode is process-global; serialize the chaos windows.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// (dist, rounds, relaxations) — everything the wire report is rendered
/// from. `identifiers_moved` is deliberately absent: a shared bucket
/// structure cannot attribute moves to a lane (see the multi_source docs).
type Fingerprint = (Vec<u64>, u64, u64);

fn solo_fingerprints<G: OutEdges<W = u32>>(g: &G, srcs: &[u32], delta: u64) -> Vec<Fingerprint> {
    let engine = Engine::default();
    srcs.iter()
        .map(|&src| {
            let r = sssp(
                g,
                &SsspParams { src, delta },
                &QueryCtx::from_engine(&engine),
            )
            .expect("solo run");
            (r.dist, r.rounds, r.relaxations)
        })
        .collect()
}

fn fused_fingerprints<G: OutEdges<W = u32>>(g: &G, srcs: &[u32], delta: u64) -> Vec<Fingerprint> {
    let engine = Engine::default();
    let ctxs: Vec<QueryCtx> = srcs
        .iter()
        .map(|_| QueryCtx::from_engine(&engine))
        .collect();
    let lanes: Vec<SsspLane<'_>> = srcs
        .iter()
        .zip(&ctxs)
        .map(|(&src, ctx)| SsspLane { src, ctx })
        .collect();
    sssp_multi(g, delta, &lanes)
        .expect("fused run")
        .into_iter()
        .map(|lane| {
            let r = lane.expect("lane result");
            (r.dist, r.rounds, r.relaxations)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fused_lanes_bit_identical_to_solo_under_chaos(
        (g, srcs) in arb_weighted_graph().prop_flat_map(|g| {
            let n = g.num_vertices() as u32;
            (Just(g), prop::collection::vec(0..n, 1..5))
        }),
        delta in prop_oneof![Just(1u64), Just(16u64), Just(4096u64)],
    ) {
        let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cg = CompressedWGraph::from_csr(&g);
        let solo = at(1, || solo_fingerprints(&g, &srcs, delta));
        // Both backends, both thread counts, chaos on and off: every
        // fused lane must reproduce its solo fingerprint exactly.
        for threads in [1usize, 4] {
            for chaos in [None, Some(0x5EEDu64)] {
                rayon::set_chaos_seed(chaos);
                let fused_csr = at(threads, || fused_fingerprints(&g, &srcs, delta));
                let fused_cmp = at(threads, || fused_fingerprints(&cg, &srcs, delta));
                rayon::set_chaos_seed(None);
                prop_assert_eq!(
                    &fused_csr, &solo,
                    "csr lanes diverged (threads={}, chaos={:?})", threads, chaos
                );
                prop_assert_eq!(
                    &fused_cmp, &solo,
                    "compressed lanes diverged (threads={}, chaos={:?})", threads, chaos
                );
            }
        }
    }
}

/// Cancelling one lane mid-traversal detaches it (its slot reports the
/// cancellation) while every sibling still matches its solo run exactly.
#[test]
fn cancelled_lane_never_perturbs_siblings() {
    let g: Csr<u32> = {
        use julienne_repro::graph::generators::erdos_renyi;
        use julienne_repro::graph::transform::assign_weights;
        assign_weights(&erdos_renyi(400, 3200, 7, true), 1, 1000, 11)
    };
    let srcs: [u32; 3] = [0, 7, 399];
    for delta in [1u64, 64, 32768] {
        let solo = solo_fingerprints(&g, &srcs, delta);
        for threads in [1usize, 4] {
            let results = at(threads, || {
                let engine = Engine::default();
                let ctxs: Vec<QueryCtx> = srcs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let ctx = QueryCtx::from_engine(&engine);
                        if i == 1 {
                            // Trips after a few round polls: mid-run for
                            // small delta, pre-run for huge delta.
                            ctx.with_cancel_token(CancelToken::cancel_after_polls(2))
                        } else {
                            ctx
                        }
                    })
                    .collect();
                let lanes: Vec<SsspLane<'_>> = srcs
                    .iter()
                    .zip(&ctxs)
                    .map(|(&src, ctx)| SsspLane { src, ctx })
                    .collect();
                sssp_multi(&g, delta, &lanes).expect("fused run")
            });
            assert!(
                results[1].is_err(),
                "lane 1 should have been cancelled (delta={delta}, threads={threads})"
            );
            for (i, lane) in results.into_iter().enumerate() {
                if i == 1 {
                    continue;
                }
                let r = lane.expect("sibling lane");
                assert_eq!(
                    (r.dist, r.rounds, r.relaxations),
                    solo[i].clone(),
                    "sibling lane {i} perturbed by a cancelled neighbour \
                     (delta={delta}, threads={threads})"
                );
            }
        }
    }
}
