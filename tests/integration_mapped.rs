//! Mapped-backend equivalence: every algorithm produces identical output
//! on the raw CSR backend and the zero-copy memory-mapped `.jgr` backend
//! (`MappedGraph`), at 1 and 4 worker threads.
//!
//! Each family is written to a `.jgr` container once and reopened via
//! `MappedGraph::open` — the same no-per-edge-work path `julienne serve
//! backend=mapped` takes — so these tests pin that serving straight from
//! the file is invisible to results, and that the container round-trip
//! (CSR -> sections -> mmap) loses nothing.

use julienne_repro::algorithms::bellman_ford::bellman_ford;
use julienne_repro::algorithms::betweenness::betweenness;
use julienne_repro::algorithms::bfs::{bfs, bfs_seq};
use julienne_repro::algorithms::clustering::{closeness, harmonic, local_clustering, transitivity};
use julienne_repro::algorithms::components::{connected_components, connected_components_seq};
use julienne_repro::algorithms::degeneracy::{
    degeneracy_order, densest_subgraph, densest_subgraph_approx, greedy_coloring,
};
use julienne_repro::algorithms::delta_stepping::{sssp, wbfs, SsspParams};
use julienne_repro::algorithms::dial::dial;
use julienne_repro::algorithms::dijkstra::dijkstra;
use julienne_repro::algorithms::gap_delta::gap_delta_stepping;
use julienne_repro::algorithms::kcore::{coreness, coreness_ligra, KcoreParams};
use julienne_repro::algorithms::ktruss::ktruss_julienne;
use julienne_repro::algorithms::mis::maximal_independent_set;
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::algorithms::stats::{estimate_diameter, graph_stats};
use julienne_repro::algorithms::triangles::triangle_count;
use julienne_repro::graph::container::MappedGraph;
use julienne_repro::graph::csr::Weight;
use julienne_repro::graph::io::{GraphIo, IoOptions};
use julienne_repro::graph::Csr;

mod common;

use common::{at, graphs, small_graphs, weighted};
use julienne_repro::core::query::QueryCtx;

const THREADS: [usize; 2] = [1, 4];

/// A `.jgr` file that removes itself when the test is done with it.
struct TempJgr(std::path::PathBuf);

impl Drop for TempJgr {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Writes `g` to a container and reopens it memory-mapped.
fn mapped<W: Weight>(name: &str, g: &Csr<W>) -> (MappedGraph<W>, TempJgr) {
    let path = std::env::temp_dir().join(format!(
        "julienne-mapped-it-{}-{name}.jgr",
        std::process::id()
    ));
    GraphIo::write(g, &path, &IoOptions::default()).unwrap();
    let m = MappedGraph::open(&path).unwrap();
    (m, TempJgr(path))
}

/// Asserts `csr()` and `via_map()` agree at 1 and 4 threads.
fn eq_mapped<T: PartialEq + std::fmt::Debug + Send>(
    what: &str,
    csr: impl Fn() -> T + Send + Sync,
    via_map: impl Fn() -> T + Send + Sync,
) {
    for t in THREADS {
        let a = at(t, &csr);
        let b = at(t, &via_map);
        assert_eq!(a, b, "{what}: mapped backend diverged at {t} threads");
    }
}

#[test]
fn frontier_algorithms_match_on_mapped_backend() {
    for (name, g) in graphs() {
        let (mg, _file) = mapped(&format!("frontier-{name}"), &g);
        eq_mapped(
            &format!("bfs/{name}"),
            || bfs(&g, 0).level,
            || bfs(&mg, 0).level,
        );
        eq_mapped(
            &format!("bfs_seq/{name}"),
            || bfs_seq(&g, 0),
            || bfs_seq(&mg, 0),
        );
        eq_mapped(
            &format!("components/{name}"),
            || connected_components(&g).label,
            || connected_components(&mg).label,
        );
        eq_mapped(
            &format!("components_seq/{name}"),
            || connected_components_seq(&g),
            || connected_components_seq(&mg),
        );
        eq_mapped(
            &format!("pagerank/{name}"),
            || pagerank(&g, 0.85, 1e-9, 50).rank,
            || pagerank(&mg, 0.85, 1e-9, 50).rank,
        );
        eq_mapped(
            &format!("mis/{name}"),
            || maximal_independent_set(&g, 3).members,
            || maximal_independent_set(&mg, 3).members,
        );
    }
}

#[test]
fn peeling_algorithms_match_on_mapped_backend() {
    for (name, g) in graphs() {
        let (mg, _file) = mapped(&format!("peel-{name}"), &g);
        eq_mapped(
            &format!("kcore_julienne/{name}"),
            || {
                let r = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
            || {
                let r = coreness(&mg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                (r.coreness, r.rounds)
            },
        );
        eq_mapped(
            &format!("kcore_ligra/{name}"),
            || coreness_ligra(&g).coreness,
            || coreness_ligra(&mg).coreness,
        );
        eq_mapped(
            &format!("degeneracy_order/{name}"),
            || degeneracy_order(&g).order,
            || degeneracy_order(&mg).order,
        );
        eq_mapped(
            &format!("densest/{name}"),
            || densest_subgraph(&g).vertices,
            || densest_subgraph(&mg).vertices,
        );
        eq_mapped(
            &format!("densest_approx/{name}"),
            || densest_subgraph_approx(&g, 0.1).vertices,
            || densest_subgraph_approx(&mg, 0.1).vertices,
        );
        eq_mapped(
            &format!("coloring/{name}"),
            || greedy_coloring(&g),
            || greedy_coloring(&mg),
        );
    }
}

#[test]
fn triangle_family_matches_on_mapped_backend() {
    for (name, g) in small_graphs() {
        let (mg, _file) = mapped(&format!("tri-{name}"), &g);
        eq_mapped(
            &format!("triangles/{name}"),
            || triangle_count(&g),
            || triangle_count(&mg),
        );
        eq_mapped(
            &format!("ktruss/{name}"),
            || {
                let r = ktruss_julienne(&g);
                (r.trussness, r.max_truss)
            },
            || {
                let r = ktruss_julienne(&mg);
                (r.trussness, r.max_truss)
            },
        );
        eq_mapped(
            &format!("clustering/{name}"),
            || (local_clustering(&g), transitivity(&g).to_bits()),
            || (local_clustering(&mg), transitivity(&mg).to_bits()),
        );
    }
}

#[test]
fn centrality_and_stats_match_on_mapped_backend() {
    let sources: Vec<u32> = (0..16).collect();
    for (name, g) in small_graphs() {
        let (mg, _file) = mapped(&format!("cent-{name}"), &g);
        eq_mapped(
            &format!("betweenness/{name}"),
            || betweenness(&g, &sources),
            || betweenness(&mg, &sources),
        );
        eq_mapped(
            &format!("closeness/{name}"),
            || closeness(&g, &sources),
            || closeness(&mg, &sources),
        );
        eq_mapped(
            &format!("harmonic/{name}"),
            || harmonic(&g, &sources),
            || harmonic(&mg, &sources),
        );
        eq_mapped(
            &format!("graph_stats/{name}"),
            || {
                let s = graph_stats(&g);
                (s.rho, s.k_max, s.max_degree, s.eccentricity_from_zero)
            },
            || {
                let s = graph_stats(&mg);
                (s.rho, s.k_max, s.max_degree, s.eccentricity_from_zero)
            },
        );
        eq_mapped(
            &format!("diameter/{name}"),
            || estimate_diameter(&g, 4, 9),
            || estimate_diameter(&mg, 4, 9),
        );
    }
}

#[test]
fn sssp_family_matches_on_mapped_backend() {
    for heavy in [false, true] {
        let delta = if heavy { 32_768 } else { 1 };
        for (name, g) in weighted(heavy) {
            let (mg, _file) = mapped(&format!("sssp-{name}-{heavy}"), &g);
            eq_mapped(
                &format!("delta_stepping/{name}/heavy={heavy}"),
                || {
                    let r = sssp(&g, &SsspParams { src: 0, delta }, &QueryCtx::default()).unwrap();
                    (r.dist, r.rounds)
                },
                || {
                    let r = sssp(&mg, &SsspParams { src: 0, delta }, &QueryCtx::default()).unwrap();
                    (r.dist, r.rounds)
                },
            );
            eq_mapped(
                &format!("dijkstra/{name}/heavy={heavy}"),
                || dijkstra(&g, 0),
                || dijkstra(&mg, 0),
            );
            eq_mapped(
                &format!("bellman_ford/{name}/heavy={heavy}"),
                || bellman_ford(&g, 0).dist,
                || bellman_ford(&mg, 0).dist,
            );
            eq_mapped(
                &format!("gap_delta/{name}/heavy={heavy}"),
                || gap_delta_stepping(&g, 0, delta.max(1024)).dist,
                || gap_delta_stepping(&mg, 0, delta.max(1024)).dist,
            );
            eq_mapped(
                &format!("dial/{name}/heavy={heavy}"),
                || dial(&g, 0),
                || dial(&mg, 0),
            );
            if !heavy {
                eq_mapped(
                    &format!("wbfs/{name}"),
                    || wbfs(&g, 0).dist,
                    || wbfs(&mg, 0).dist,
                );
            }
        }
    }
}

/// A container's embedded compressed payload and a freshly-compressed CSR
/// are the same graph: all three backends agree on the same file.
#[test]
fn all_three_backends_agree_from_one_container() {
    use julienne_repro::graph::container::read_compressed;
    let (name, g) = graphs().into_iter().next().unwrap();
    let path = std::env::temp_dir().join(format!(
        "julienne-mapped-it-{}-tri-{name}.jgr",
        std::process::id()
    ));
    let opts = IoOptions {
        compressed_payload: true,
        ..Default::default()
    };
    GraphIo::write(&g, &path, &opts).unwrap();
    let _file = TempJgr(path.clone());
    let mg: MappedGraph<()> = MappedGraph::open(&path).unwrap();
    let cg = read_compressed(&path).unwrap();
    let csr: julienne_repro::graph::Graph = GraphIo::read(&path, &IoOptions::default()).unwrap();

    let a = bfs(&csr, 0).level;
    assert_eq!(a, bfs(&mg, 0).level, "csr vs mapped");
    assert_eq!(a, bfs(&cg, 0).level, "csr vs compressed payload");
    let k = coreness(&csr, &KcoreParams::default(), &QueryCtx::default())
        .unwrap()
        .coreness;
    assert_eq!(
        k,
        coreness(&mg, &KcoreParams::default(), &QueryCtx::default())
            .unwrap()
            .coreness
    );
    assert_eq!(
        k,
        coreness(&cg, &KcoreParams::default(), &QueryCtx::default())
            .unwrap()
            .coreness
    );
}
