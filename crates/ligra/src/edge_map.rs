//! Direction-optimized `edgeMap` (Section 2.1).
//!
//! `edgeMap(G, U, F, C)` applies `F` to edges `(u, v)` with `u ∈ U` and
//! `C(v) = true`, returning the vertices for which `F` returned `true`.
//! Two traversal strategies:
//!
//! * **sparse (push)** — iterate the out-edges of the frontier; output is
//!   built with the scan–scatter–filter pattern so the traversal "only
//!   writes to an amount of memory proportional to the size of the output
//!   frontier" (the optimization the paper credits for its fast 1-thread
//!   SSSP times);
//! * **dense (pull)** — iterate in-edges of every vertex with `C(v)` true,
//!   breaking early once `C(v)` flips; chosen when
//!   `|U| + Σ out-deg(U) > m / 20` (Ligra's threshold).

use crate::subset::{VertexSubset, VertexSubsetData};
use crate::traits::OutEdges;
use julienne_graph::csr::{Csr, Weight};
use julienne_graph::VertexId;
use julienne_primitives::bitset::AtomicBitSet;
use julienne_primitives::filter::filter_map;
use julienne_primitives::scan::prefix_sums;
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;

/// Traversal strategy selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Always push from the frontier.
    Sparse,
    /// Always pull over all vertices (requires an in-adjacency view).
    Dense,
    /// Ligra's threshold rule.
    #[default]
    Auto,
}

/// Options for [`edge_map`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeMapOptions {
    /// Strategy selection.
    pub mode: Mode,
    /// Deduplicate the sparse output with an atomic bitset. Unnecessary when
    /// the update function already guarantees at-most-one success per target
    /// (e.g. via CAS), which all applications in this repo do.
    pub remove_duplicates: bool,
    /// Dense threshold denominator: go dense when
    /// `|U| + Σ out-deg(U) > m / dense_threshold_div`.
    pub dense_threshold_div: usize,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        EdgeMapOptions {
            mode: Mode::Auto,
            remove_duplicates: false,
            dense_threshold_div: 20,
        }
    }
}

fn choose_dense<W: Weight>(
    g: &Csr<W>,
    frontier_ids: &[VertexId],
    opts: &EdgeMapOptions,
) -> bool {
    match opts.mode {
        Mode::Sparse => false,
        Mode::Dense => true,
        Mode::Auto => {
            if !g.has_in_view() {
                return false;
            }
            let out_sum = g.out_degrees_sum(frontier_ids);
            frontier_ids.len() + out_sum > g.num_edges() / opts.dense_threshold_div.max(1)
        }
    }
}

/// Direction-optimized `edgeMap` over a CSR graph.
///
/// `update(u, v, w)` is applied to live edges and must return `true` at most
/// once per target `v` per call (use CAS/writeMin), unless
/// `opts.remove_duplicates` is set. `cond(v)` gates targets.
///
/// ```
/// use julienne_ligra::{edge_map, EdgeMapOptions, VertexSubset};
/// use julienne_graph::builder::from_pairs_symmetric;
/// use julienne_primitives::atomics::{atomic_u32_filled, cas_u32};
/// use std::sync::atomic::Ordering;
///
/// // One BFS step from {0} on a path 0-1-2.
/// let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
/// let parent = atomic_u32_filled(3, u32::MAX);
/// parent[0].store(0, Ordering::SeqCst);
/// let next = edge_map(
///     &g,
///     &VertexSubset::single(3, 0),
///     |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
///     |v| parent[v as usize].load(Ordering::SeqCst) == u32::MAX,
///     EdgeMapOptions::default(),
/// );
/// assert_eq!(next.to_vertices(), vec![1]);
/// ```
pub fn edge_map<W, Fu, Fc>(
    g: &Csr<W>,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
    opts: EdgeMapOptions,
) -> VertexSubset
where
    W: Weight,
    Fu: Fn(VertexId, VertexId, W) -> bool + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let ids = frontier.to_vertices();
    if choose_dense(g, &ids, &opts) {
        edge_map_dense(g, frontier, update, cond)
    } else {
        edge_map_sparse(g, &ids, update, cond, opts.remove_duplicates)
    }
}

/// Sparse (push) `edgeMap` over any out-edge backend.
pub fn edge_map_sparse<G, Fu, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: Fu,
    cond: Fc,
    remove_duplicates: bool,
) -> VertexSubset
where
    G: OutEdges,
    Fu: Fn(VertexId, VertexId, G::W) -> bool + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    const SENTINEL: VertexId = VertexId::MAX;
    let n = g.num_vertices();
    let mut offsets: Vec<usize> = frontier_ids
        .par_iter()
        .map(|&u| g.out_degree(u))
        .collect();
    let total = prefix_sums(&mut offsets);

    let mut out: Vec<VertexId> = vec![SENTINEL; total];
    let dedup = if remove_duplicates {
        Some(AtomicBitSet::new(n))
    } else {
        None
    };
    {
        let writer = DisjointWriter::new(&mut out);
        frontier_ids
            .par_iter()
            .zip(offsets.par_iter())
            .for_each(|(&u, &base)| {
                let mut k = base;
                g.for_each_out(u, |v, w| {
                    if cond(v) && update(u, v, w) {
                        let emit = match &dedup {
                            Some(bs) => bs.set(v as usize),
                            None => true,
                        };
                        if emit {
                            // SAFETY: slot k lies in u's private range.
                            unsafe { writer.write(k, v) };
                        }
                    }
                    k += 1;
                });
            });
    }
    let result = filter_map(&out, |&v| if v == SENTINEL { None } else { Some(v) });
    VertexSubset::from_vertices(n, result)
}

/// Dense (pull) `edgeMap`. Requires an in-adjacency view.
fn edge_map_dense<W, Fu, Fc>(
    g: &Csr<W>,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
) -> VertexSubset
where
    W: Weight,
    Fu: Fn(VertexId, VertexId, W) -> bool + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let in_view = g
        .in_view()
        .expect("dense edgeMap requires a symmetric graph or attached transpose");
    let frontier_bits = frontier.to_bitset();
    let out = AtomicBitSet::new(n);
    (0..n as VertexId).into_par_iter().for_each(|v| {
        if !cond(v) {
            return;
        }
        for (u, w) in in_view.edges_of(v) {
            if frontier_bits.get(u as usize) && update(u, v, w) {
                out.set(v as usize);
            }
            // Ligra's dense early exit: once the target no longer wants
            // updates, stop scanning its in-edges.
            if !cond(v) {
                break;
            }
        }
    });
    VertexSubset::from_bitset(out.into_bitset())
}

/// `edgeMap` returning per-vertex data: `update(u, v, w)` yields `Some(t)`
/// for targets to include. Must yield `Some` at most once per target per
/// call (CAS discipline), like the flag-guarded Update of Algorithm 2.
pub fn edge_map_data<W, T, Fu, Fc>(
    g: &Csr<W>,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
    opts: EdgeMapOptions,
) -> VertexSubsetData<T>
where
    W: Weight,
    T: Copy + Send + Sync,
    Fu: Fn(VertexId, VertexId, W) -> Option<T> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let ids = frontier.to_vertices();
    if choose_dense(g, &ids, &opts) {
        edge_map_dense_data(g, frontier, update, cond)
    } else {
        edge_map_sparse_data(g, &ids, update, cond)
    }
}

/// Sparse (push) data-carrying `edgeMap` over any out-edge backend.
pub fn edge_map_sparse_data<G, T, Fu, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: Fu,
    cond: Fc,
) -> VertexSubsetData<T>
where
    G: OutEdges,
    T: Copy + Send + Sync,
    Fu: Fn(VertexId, VertexId, G::W) -> Option<T> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let mut offsets: Vec<usize> = frontier_ids
        .par_iter()
        .map(|&u| g.out_degree(u))
        .collect();
    let total = prefix_sums(&mut offsets);

    let mut out: Vec<Option<(VertexId, T)>> = vec![None; total];
    {
        let writer = DisjointWriter::new(&mut out);
        frontier_ids
            .par_iter()
            .zip(offsets.par_iter())
            .for_each(|(&u, &base)| {
                let mut k = base;
                g.for_each_out(u, |v, w| {
                    if cond(v) {
                        if let Some(t) = update(u, v, w) {
                            // SAFETY: slot k lies in u's private range.
                            unsafe { writer.write(k, Some((v, t))) };
                        }
                    }
                    k += 1;
                });
            });
    }
    let entries = filter_map(&out, |slot| *slot);
    VertexSubsetData::from_entries(n, entries)
}

/// Dense (pull) data-carrying `edgeMap`.
fn edge_map_dense_data<W, T, Fu, Fc>(
    g: &Csr<W>,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
) -> VertexSubsetData<T>
where
    W: Weight,
    T: Copy + Send + Sync,
    Fu: Fn(VertexId, VertexId, W) -> Option<T> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let in_view = g
        .in_view()
        .expect("dense edgeMap requires a symmetric graph or attached transpose");
    let frontier_bits = frontier.to_bitset();
    let per_vertex: Vec<Option<(VertexId, T)>> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return None;
            }
            let mut got: Option<(VertexId, T)> = None;
            for (u, w) in in_view.edges_of(v) {
                if frontier_bits.get(u as usize) {
                    if let Some(t) = update(u, v, w) {
                        got = Some((v, t));
                    }
                }
                if !cond(v) {
                    break;
                }
            }
            got
        })
        .collect();
    let entries = filter_map(&per_vertex, |slot| *slot);
    VertexSubsetData::from_entries(n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::{from_pairs, from_pairs_symmetric};
    use julienne_primitives::atomics::{atomic_u32_filled, cas_u32};
    use std::sync::atomic::Ordering;

    /// One BFS step from {0} on a small graph, in each mode.
    fn bfs_step(mode: Mode) -> Vec<VertexId> {
        let g = from_pairs_symmetric(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let parent = atomic_u32_filled(6, u32::MAX);
        parent[0].store(0, Ordering::Relaxed);
        let frontier = VertexSubset::single(6, 0);
        let out = edge_map(
            &g,
            &frontier,
            |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
            |v| parent[v as usize].load(Ordering::Relaxed) == u32::MAX,
            EdgeMapOptions {
                mode,
                ..Default::default()
            },
        );
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn sparse_and_dense_agree() {
        assert_eq!(bfs_step(Mode::Sparse), vec![1, 2]);
        assert_eq!(bfs_step(Mode::Dense), vec![1, 2]);
        assert_eq!(bfs_step(Mode::Auto), vec![1, 2]);
    }

    #[test]
    fn cond_gates_targets() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (0, 3)]);
        let frontier = VertexSubset::single(4, 0);
        let out = edge_map(
            &g,
            &frontier,
            |_, _, _| true,
            |v| v != 2,
            EdgeMapOptions {
                mode: Mode::Sparse,
                ..Default::default()
            },
        );
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn duplicate_removal() {
        // Both 0 and 1 point at 2; update always true would emit 2 twice.
        let g = from_pairs(3, &[(0, 2), (1, 2)]);
        let frontier = VertexSubset::from_vertices(3, vec![0, 1]);
        let with = edge_map(
            &g,
            &frontier,
            |_, _, _| true,
            |_| true,
            EdgeMapOptions {
                mode: Mode::Sparse,
                remove_duplicates: true,
                ..Default::default()
            },
        );
        assert_eq!(with.to_vertices(), vec![2]);
        let without = edge_map(
            &g,
            &frontier,
            |_, _, _| true,
            |_| true,
            EdgeMapOptions {
                mode: Mode::Sparse,
                ..Default::default()
            },
        );
        assert_eq!(without.len(), 2); // duplicates kept
    }

    #[test]
    fn data_map_carries_values() {
        let g: Csr<u32> = {
            use julienne_graph::builder::EdgeList;
            let mut el = EdgeList::new(3);
            el.push(0, 1, 10);
            el.push(0, 2, 20);
            el.build(false)
        };
        let frontier = VertexSubset::single(3, 0);
        let out = edge_map_data(
            &g,
            &frontier,
            |_, _, w| if w >= 20 { Some(w * 2) } else { None },
            |_| true,
            EdgeMapOptions {
                mode: Mode::Sparse,
                ..Default::default()
            },
        );
        assert_eq!(out.entries(), &[(2, 40)]);
    }

    #[test]
    fn dense_data_map_agrees_with_sparse() {
        let g = from_pairs_symmetric(8, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5), (5, 6)]);
        let visited = atomic_u32_filled(8, 0);
        let frontier = VertexSubset::from_vertices(8, vec![0, 4]);
        let run = |mode: Mode| {
            // reset
            for a in &visited {
                a.store(0, Ordering::Relaxed);
            }
            let out = edge_map_data(
                &g,
                &frontier,
                |u, v, _| {
                    if cas_u32(&visited[v as usize], 0, 1) {
                        Some(u)
                    } else {
                        None
                    }
                },
                |v| visited[v as usize].load(Ordering::Relaxed) == 0,
                EdgeMapOptions {
                    mode,
                    ..Default::default()
                },
            );
            let mut e: Vec<VertexId> = out.entries().iter().map(|&(v, _)| v).collect();
            e.sort_unstable();
            e
        };
        assert_eq!(run(Mode::Sparse), run(Mode::Dense));
    }

    #[test]
    fn empty_frontier_empty_result() {
        let g = from_pairs(3, &[(0, 1)]);
        let out = edge_map(
            &g,
            &VertexSubset::empty(3),
            |_, _, _| true,
            |_| true,
            EdgeMapOptions::default(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn auto_stays_sparse_without_in_view() {
        // Directed graph with no transpose: Auto must not panic even with a
        // full frontier.
        let g = from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = edge_map(
            &g,
            &VertexSubset::all(4),
            |_, _, _| true,
            |_| true,
            EdgeMapOptions::default(),
        );
        assert_eq!(out.len(), 4);
    }
}
