//! Direction-optimized `edgeMap` (Section 2.1).
//!
//! `edgeMap(G, U, F, C)` applies `F` to edges `(u, v)` with `u ∈ U` and
//! `C(v) = true`, returning the vertices for which `F` returned `true`.
//! Two traversal strategies:
//!
//! * **sparse (push)** — iterate the out-edges of the frontier; output is
//!   built with the scan–scatter–filter pattern so the traversal "only
//!   writes to an amount of memory proportional to the size of the output
//!   frontier" (the optimization the paper credits for its fast 1-thread
//!   SSSP times);
//! * **dense (pull)** — iterate in-edges of every vertex with `C(v)` true,
//!   breaking early once `C(v)` flips; chosen when
//!   `|U| + Σ out-deg(U) > m / 20` (Ligra's threshold).
//!
//! Both directions split **giant adjacency lists** into parallel chunk
//! tasks when the backend supports it (see [`OutEdges::out_chunk_edges`]):
//! a hub vertex whose list spans more than two chunks no longer serializes
//! a round on one worker. Chunk boundaries are a pure function of degrees,
//! so results stay identical at every thread count.
//!
//! The unified entry point is the [`EdgeMap`] builder, which owns the
//! traversal options and an optional [`Telemetry`] sink recording the
//! direction decision, edges scanned, and successful updates of every
//! traversal. Both directions are generic over the trait hierarchy of
//! [`crate::traits`]: the sparse path needs only [`OutEdges`], the
//! direction-optimized path needs [`GraphRef`] (in-edge access for pull),
//! so every backend — CSR, byte-compressed, packed — goes through the same
//! code.

use crate::subset::{VertexSubset, VertexSubsetData};
use crate::traits::{GraphRef, OutEdges};
use julienne_graph::VertexId;
use julienne_primitives::bitset::AtomicBitSet;
use julienne_primitives::filter::filter_map;
use julienne_primitives::scan::prefix_sums;
use julienne_primitives::telemetry::{Counter, Telemetry};
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;

/// Traversal strategy selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Always push from the frontier.
    Sparse,
    /// Always pull over all vertices (requires an in-adjacency view).
    Dense,
    /// Ligra's threshold rule.
    #[default]
    Auto,
}

/// Options for [`EdgeMap`] traversals.
#[derive(Clone, Copy, Debug)]
pub struct EdgeMapOptions {
    /// Strategy selection.
    pub mode: Mode,
    /// Deduplicate the sparse output with an atomic bitset. Unnecessary when
    /// the update function already guarantees at-most-one success per target
    /// (e.g. via CAS), which all applications in this repo do.
    pub remove_duplicates: bool,
    /// Dense threshold denominator: go dense when
    /// `|U| + Σ out-deg(U) > m / dense_threshold_div`.
    pub dense_threshold_div: usize,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        EdgeMapOptions {
            mode: Mode::Auto,
            remove_duplicates: false,
            dense_threshold_div: 20,
        }
    }
}

fn choose_dense<G: GraphRef>(g: &G, frontier_ids: &[VertexId], opts: &EdgeMapOptions) -> bool {
    match opts.mode {
        Mode::Sparse => false,
        Mode::Dense => true,
        Mode::Auto => {
            if !g.has_in_view() {
                return false;
            }
            let out_sum = g.out_degrees_sum(frontier_ids);
            frontier_ids.len() + out_sum > g.num_edges() / opts.dense_threshold_div.max(1)
        }
    }
}

/// Builder-style `edgeMap`: configure once, traverse many times.
///
/// `update(u, v, w)` is applied to live edges and must return `true` at most
/// once per target `v` per call (use CAS/writeMin), unless
/// `remove_duplicates` is set. `cond(v)` gates targets.
///
/// ```
/// use julienne_ligra::{EdgeMap, VertexSubset};
/// use julienne_graph::builder::from_pairs_symmetric;
/// use julienne_primitives::atomics::{atomic_u32_filled, cas_u32};
/// use std::sync::atomic::Ordering;
///
/// // One BFS step from {0} on a path 0-1-2.
/// let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
/// let parent = atomic_u32_filled(3, u32::MAX);
/// parent[0].store(0, Ordering::SeqCst);
/// let next = EdgeMap::new(&g).run(
///     &VertexSubset::single(3, 0),
///     |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
///     |v| parent[v as usize].load(Ordering::SeqCst) == u32::MAX,
/// );
/// assert_eq!(next.to_vertices(), vec![1]);
/// ```
pub struct EdgeMap<'g, G> {
    g: &'g G,
    opts: EdgeMapOptions,
    telemetry: Telemetry,
}

impl<'g, G: OutEdges> EdgeMap<'g, G> {
    /// A traversal over `g` with default options and no telemetry.
    pub fn new(g: &'g G) -> Self {
        EdgeMap {
            g,
            opts: EdgeMapOptions::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the traversal strategy.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Enables bitset-based deduplication of the sparse output.
    pub fn remove_duplicates(mut self, yes: bool) -> Self {
        self.opts.remove_duplicates = yes;
        self
    }

    /// Sets the dense-threshold denominator (Ligra uses 20).
    pub fn dense_threshold_div(mut self, div: usize) -> Self {
        self.opts.dense_threshold_div = div;
        self
    }

    /// Replaces the whole option block.
    pub fn options(mut self, opts: EdgeMapOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attaches a telemetry sink; every traversal records its direction
    /// decision, frontier size, edges scanned, and successful updates.
    pub fn telemetry(mut self, sink: &Telemetry) -> Self {
        self.telemetry = sink.clone();
        self
    }

    fn note(&self, direction: Counter, frontier: usize, scanned: u64, relaxed: usize) {
        if self.telemetry.is_enabled() {
            self.telemetry.incr(direction);
            self.telemetry
                .add(Counter::VerticesScanned, frontier as u64);
            self.telemetry.add(Counter::EdgesScanned, scanned);
            self.telemetry.add(Counter::EdgesRelaxed, relaxed as u64);
        }
    }

    /// Sparse (push) traversal over an explicit id list; works with any
    /// out-edge backend (CSR, compressed, packed, edge partitions).
    pub fn run_sparse<Fu, Fc>(
        &self,
        frontier_ids: &[VertexId],
        update: Fu,
        cond: Fc,
    ) -> VertexSubset
    where
        Fu: Fn(VertexId, VertexId, G::W) -> bool + Send + Sync,
        Fc: Fn(VertexId) -> bool + Send + Sync,
    {
        let (out, scanned) = sparse_counted(
            self.g,
            frontier_ids,
            update,
            cond,
            self.opts.remove_duplicates,
        );
        self.note(
            Counter::SparseTraversals,
            frontier_ids.len(),
            scanned,
            out.len(),
        );
        out
    }

    /// Sparse (push) data-carrying traversal over an explicit id list.
    pub fn run_sparse_data<T, Fu, Fc>(
        &self,
        frontier_ids: &[VertexId],
        update: Fu,
        cond: Fc,
    ) -> VertexSubsetData<T>
    where
        T: Copy + Send + Sync,
        Fu: Fn(VertexId, VertexId, G::W) -> Option<T> + Send + Sync,
        Fc: Fn(VertexId) -> bool + Send + Sync,
    {
        let (out, scanned) = sparse_data_counted(self.g, frontier_ids, update, cond);
        self.note(
            Counter::SparseTraversals,
            frontier_ids.len(),
            scanned,
            out.len(),
        );
        out
    }
}

impl<'g, G: GraphRef> EdgeMap<'g, G> {
    /// Direction-optimized traversal: picks sparse or dense per the
    /// configured [`Mode`] and runs it. Works over any [`GraphRef`]
    /// backend; `Mode::Auto` only chooses dense when the backend currently
    /// has an in-edge view.
    pub fn run<Fu, Fc>(&self, frontier: &VertexSubset, update: Fu, cond: Fc) -> VertexSubset
    where
        Fu: Fn(VertexId, VertexId, G::W) -> bool + Send + Sync,
        Fc: Fn(VertexId) -> bool + Send + Sync,
    {
        let owned;
        let ids: &[VertexId] = match frontier.as_sparse() {
            Some(s) => s,
            None => {
                owned = frontier.to_vertices();
                &owned
            }
        };
        if choose_dense(self.g, ids, &self.opts) {
            let (out, scanned) = dense_counted(self.g, frontier, update, cond);
            self.note(Counter::DenseTraversals, ids.len(), scanned, out.len());
            out
        } else {
            self.run_sparse(ids, update, cond)
        }
    }

    /// Direction-optimized data-carrying traversal: `update` yields
    /// `Some(t)` for targets to include, at most once per target per call
    /// (the flag-guarded Update of Algorithm 2).
    pub fn run_data<T, Fu, Fc>(
        &self,
        frontier: &VertexSubset,
        update: Fu,
        cond: Fc,
    ) -> VertexSubsetData<T>
    where
        T: Copy + Send + Sync,
        Fu: Fn(VertexId, VertexId, G::W) -> Option<T> + Send + Sync,
        Fc: Fn(VertexId) -> bool + Send + Sync,
    {
        let owned;
        let ids: &[VertexId] = match frontier.as_sparse() {
            Some(s) => s,
            None => {
                owned = frontier.to_vertices();
                &owned
            }
        };
        if choose_dense(self.g, ids, &self.opts) {
            let (out, scanned) = dense_data_counted(self.g, frontier, update, cond);
            self.note(Counter::DenseTraversals, ids.len(), scanned, out.len());
            out
        } else {
            self.run_sparse_data(ids, update, cond)
        }
    }
}

/// Sparse push kernel; returns the new frontier and the edges scanned.
fn sparse_counted<G, Fu, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: Fu,
    cond: Fc,
    remove_duplicates: bool,
) -> (VertexSubset, u64)
where
    G: OutEdges,
    Fu: Fn(VertexId, VertexId, G::W) -> bool + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    const SENTINEL: VertexId = VertexId::MAX;
    let n = g.num_vertices();
    let mut offsets: Vec<usize> = frontier_ids.par_iter().map(|&u| g.out_degree(u)).collect();
    let max_deg = offsets.par_iter().copied().max().unwrap_or(0);
    let total = prefix_sums(&mut offsets);

    let mut out: Vec<VertexId> = vec![SENTINEL; total];
    let dedup = if remove_duplicates {
        Some(AtomicBitSet::new(n))
    } else {
        None
    };
    {
        let writer = DisjointWriter::new(&mut out);
        let split = g.out_chunk_edges();
        if split != usize::MAX && max_deg > split.saturating_mul(2) {
            // A hub vertex dominates the frontier: split giant out-lists
            // into per-chunk tasks so no single list serializes the round.
            // Chunk c of u writes slots [base + c·split, ...) — the same
            // slots the unsplit scan would use, so the output (and its
            // ordering) is unchanged.
            split_tasks(g, frontier_ids, &offsets, split)
                .par_iter()
                .for_each(|&(u, c, slot)| {
                    let mut k = slot;
                    g.for_each_out_chunk(u, c, |v, w| {
                        if cond(v) && update(u, v, w) {
                            let emit = match &dedup {
                                Some(bs) => bs.set(v as usize),
                                None => true,
                            };
                            if emit {
                                // SAFETY: slot k lies in chunk c's private
                                // slice of u's range.
                                unsafe { writer.write(k, v) };
                            }
                        }
                        k += 1;
                    });
                });
        } else {
            frontier_ids
                .par_iter()
                .zip(offsets.par_iter())
                .for_each(|(&u, &base)| {
                    let mut k = base;
                    g.for_each_out(u, |v, w| {
                        if cond(v) && update(u, v, w) {
                            let emit = match &dedup {
                                Some(bs) => bs.set(v as usize),
                                None => true,
                            };
                            if emit {
                                // SAFETY: slot k lies in u's private range.
                                unsafe { writer.write(k, v) };
                            }
                        }
                        k += 1;
                    });
                });
        }
    }
    let result = filter_map(&out, |&v| if v == SENTINEL { None } else { Some(v) });
    (VertexSubset::from_vertices(n, result), total as u64)
}

/// Materializes the `(source, chunk, slot base)` task list for a sparse
/// push whose frontier contains at least one giant out-list. Chunk counts
/// are a pure function of degrees, so the task set — and therefore the
/// traversal's output — is identical at every thread count.
fn split_tasks<G: OutEdges>(
    g: &G,
    frontier_ids: &[VertexId],
    offsets: &[usize],
    split: usize,
) -> Vec<(VertexId, usize, usize)> {
    let mut tasks = Vec::with_capacity(frontier_ids.len());
    for (i, &u) in frontier_ids.iter().enumerate() {
        let deg = g.out_degree(u);
        for c in 0..deg.div_ceil(split) {
            tasks.push((u, c, offsets[i] + c * split));
        }
    }
    tasks
}

/// Dense pull kernel; returns the new frontier and the in-edges examined
/// (the early exit makes this less than the full in-degree sum).
///
/// Heavy targets — in-degree above twice the backend's
/// [`InEdges::in_chunk_edges`] granularity — are pulled out of the main
/// per-vertex loop and scanned as parallel chunk tasks, so one hub's
/// in-list no longer serializes the round. Chunk tasks decode in full
/// (no early exit): the examined-edge count stays a pure function of the
/// graph, the same trade Ligra+ makes to decode compressed lists in
/// parallel. Extra `update` calls after `cond` flips are harmless for the
/// CAS/writeMin updates `edgeMap` requires.
fn dense_counted<G, Fu, Fc>(
    g: &G,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
) -> (VertexSubset, u64)
where
    G: GraphRef,
    Fu: Fn(VertexId, VertexId, G::W) -> bool + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let frontier_bits = frontier.to_bitset();
    let out = AtomicBitSet::new(n);
    let trigger = heavy_trigger(g.in_chunk_edges());
    let scanned: u64 = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return 0u64;
            }
            if trigger != usize::MAX && g.in_degree(v) > trigger {
                return 0u64; // handled by the heavy pass below
            }
            let mut examined = 0u64;
            g.for_each_in_until(v, |u, w| {
                examined += 1;
                if frontier_bits.get(u as usize) && update(u, v, w) {
                    out.set(v as usize);
                }
                // Ligra's dense early exit: once the target no longer wants
                // updates, stop scanning its in-edges.
                cond(v)
            });
            examined
        })
        .sum();
    let mut heavy_scanned = 0u64;
    if trigger != usize::MAX {
        let split = g.in_chunk_edges();
        let heavy: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| cond(v) && g.in_degree(v) > trigger)
            .collect();
        let tasks: Vec<(VertexId, usize)> = heavy
            .iter()
            .flat_map(|&v| (0..g.in_degree(v).div_ceil(split)).map(move |c| (v, c)))
            .collect();
        tasks.par_iter().for_each(|&(v, c)| {
            g.for_each_in_chunk(v, c, |u, w| {
                if frontier_bits.get(u as usize) && cond(v) && update(u, v, w) {
                    out.set(v as usize);
                }
            });
        });
        heavy_scanned = heavy.iter().map(|&v| g.in_degree(v) as u64).sum();
    }
    (
        VertexSubset::from_bitset(out.into_bitset()),
        scanned + heavy_scanned,
    )
}

/// In-degree above which a dense target's in-list is scanned as chunk
/// tasks: twice the chunk granularity, so splitting only kicks in when it
/// buys at least two-way parallelism. `usize::MAX` (unsplittable backend)
/// disables the heavy pass entirely.
fn heavy_trigger(split: usize) -> usize {
    if split == usize::MAX {
        usize::MAX
    } else {
        split.saturating_mul(2)
    }
}

/// Sparse push data kernel; returns the data-subset and edges scanned.
fn sparse_data_counted<G, T, Fu, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: Fu,
    cond: Fc,
) -> (VertexSubsetData<T>, u64)
where
    G: OutEdges,
    T: Copy + Send + Sync,
    Fu: Fn(VertexId, VertexId, G::W) -> Option<T> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let mut offsets: Vec<usize> = frontier_ids.par_iter().map(|&u| g.out_degree(u)).collect();
    let max_deg = offsets.par_iter().copied().max().unwrap_or(0);
    let total = prefix_sums(&mut offsets);

    let mut out: Vec<Option<(VertexId, T)>> = vec![None; total];
    {
        let writer = DisjointWriter::new(&mut out);
        let split = g.out_chunk_edges();
        if split != usize::MAX && max_deg > split.saturating_mul(2) {
            // Giant out-lists go through per-chunk tasks; slots match the
            // unsplit scan, so the output ordering is unchanged.
            split_tasks(g, frontier_ids, &offsets, split)
                .par_iter()
                .for_each(|&(u, c, slot)| {
                    let mut k = slot;
                    g.for_each_out_chunk(u, c, |v, w| {
                        if cond(v) {
                            if let Some(t) = update(u, v, w) {
                                // SAFETY: slot k lies in chunk c's private
                                // slice of u's range.
                                unsafe { writer.write(k, Some((v, t))) };
                            }
                        }
                        k += 1;
                    });
                });
        } else {
            frontier_ids
                .par_iter()
                .zip(offsets.par_iter())
                .for_each(|(&u, &base)| {
                    let mut k = base;
                    g.for_each_out(u, |v, w| {
                        if cond(v) {
                            if let Some(t) = update(u, v, w) {
                                // SAFETY: slot k lies in u's private range.
                                unsafe { writer.write(k, Some((v, t))) };
                            }
                        }
                        k += 1;
                    });
                });
        }
    }
    let entries = filter_map(&out, |slot| *slot);
    (VertexSubsetData::from_entries(n, entries), total as u64)
}

/// Dense pull data kernel; returns the data-subset and in-edges examined.
fn dense_data_counted<G, T, Fu, Fc>(
    g: &G,
    frontier: &VertexSubset,
    update: Fu,
    cond: Fc,
) -> (VertexSubsetData<T>, u64)
where
    G: GraphRef,
    T: Copy + Send + Sync,
    Fu: Fn(VertexId, VertexId, G::W) -> Option<T> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let frontier_bits = frontier.to_bitset();
    let trigger = heavy_trigger(g.in_chunk_edges());
    let mut per_vertex: Vec<(Option<(VertexId, T)>, u64)> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return (None, 0);
            }
            if trigger != usize::MAX && g.in_degree(v) > trigger {
                return (None, 0); // handled by the heavy pass below
            }
            let mut got: Option<(VertexId, T)> = None;
            let mut examined = 0u64;
            g.for_each_in_until(v, |u, w| {
                examined += 1;
                if frontier_bits.get(u as usize) {
                    if let Some(t) = update(u, v, w) {
                        got = Some((v, t));
                    }
                }
                cond(v)
            });
            (got, examined)
        })
        .collect();
    if trigger != usize::MAX {
        let split = g.in_chunk_edges();
        let heavy: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| cond(v) && g.in_degree(v) > trigger)
            .collect();
        let tasks: Vec<(VertexId, usize)> = heavy
            .iter()
            .flat_map(|&v| (0..g.in_degree(v).div_ceil(split)).map(move |c| (v, c)))
            .collect();
        let chunk_got: Vec<Option<(VertexId, T)>> = tasks
            .par_iter()
            .map(|&(v, c)| {
                let mut got: Option<(VertexId, T)> = None;
                g.for_each_in_chunk(v, c, |u, w| {
                    if frontier_bits.get(u as usize) && cond(v) {
                        if let Some(t) = update(u, v, w) {
                            got = Some((v, t));
                        }
                    }
                });
                got
            })
            .collect();
        // Combine per-chunk results in ascending chunk order so the last
        // `Some` wins — the serial "last successful update in neighbor
        // order" rule. Writing into `per_vertex[v]` keeps the final entry
        // list ordered by vertex id exactly as the unsplit scan emits it.
        for (&(v, _), got) in tasks.iter().zip(chunk_got) {
            if got.is_some() {
                per_vertex[v as usize].0 = got;
            }
        }
        for &v in &heavy {
            per_vertex[v as usize].1 = g.in_degree(v) as u64;
        }
    }
    let scanned = per_vertex.iter().map(|&(_, e)| e).sum();
    let entries = filter_map(&per_vertex, |&(slot, _)| slot);
    (VertexSubsetData::from_entries(n, entries), scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::{from_pairs, from_pairs_symmetric};
    use julienne_graph::csr::Csr;
    use julienne_primitives::atomics::{atomic_u32_filled, cas_u32};
    use std::sync::atomic::Ordering;

    /// One BFS step from {0} on a small graph, in each mode.
    fn bfs_step(mode: Mode) -> Vec<VertexId> {
        let g = from_pairs_symmetric(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let parent = atomic_u32_filled(6, u32::MAX);
        parent[0].store(0, Ordering::Relaxed);
        let frontier = VertexSubset::single(6, 0);
        let out = EdgeMap::new(&g).mode(mode).run(
            &frontier,
            |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
            |v| parent[v as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn sparse_and_dense_agree() {
        assert_eq!(bfs_step(Mode::Sparse), vec![1, 2]);
        assert_eq!(bfs_step(Mode::Dense), vec![1, 2]);
        assert_eq!(bfs_step(Mode::Auto), vec![1, 2]);
    }

    #[test]
    fn cond_gates_targets() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (0, 3)]);
        let frontier = VertexSubset::single(4, 0);
        let out = EdgeMap::new(&g)
            .mode(Mode::Sparse)
            .run(&frontier, |_, _, _| true, |v| v != 2);
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn duplicate_removal() {
        // Both 0 and 1 point at 2; update always true would emit 2 twice.
        let g = from_pairs(3, &[(0, 2), (1, 2)]);
        let frontier = VertexSubset::from_vertices(3, vec![0, 1]);
        let with = EdgeMap::new(&g)
            .mode(Mode::Sparse)
            .remove_duplicates(true)
            .run(&frontier, |_, _, _| true, |_| true);
        assert_eq!(with.to_vertices(), vec![2]);
        let without = EdgeMap::new(&g)
            .mode(Mode::Sparse)
            .run(&frontier, |_, _, _| true, |_| true);
        assert_eq!(without.len(), 2); // duplicates kept
    }

    #[test]
    fn data_map_carries_values() {
        let g: Csr<u32> = {
            use julienne_graph::builder::EdgeList;
            let mut el = EdgeList::new(3);
            el.push(0, 1, 10);
            el.push(0, 2, 20);
            el.build(false)
        };
        let frontier = VertexSubset::single(3, 0);
        let out = EdgeMap::new(&g).mode(Mode::Sparse).run_data(
            &frontier,
            |_, _, w| if w >= 20 { Some(w * 2) } else { None },
            |_| true,
        );
        assert_eq!(out.entries(), &[(2, 40)]);
    }

    #[test]
    fn dense_data_map_agrees_with_sparse() {
        let g = from_pairs_symmetric(8, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5), (5, 6)]);
        let visited = atomic_u32_filled(8, 0);
        let frontier = VertexSubset::from_vertices(8, vec![0, 4]);
        let run = |mode: Mode| {
            // reset
            for a in &visited {
                a.store(0, Ordering::Relaxed);
            }
            let out = EdgeMap::new(&g).mode(mode).run_data(
                &frontier,
                |u, v, _| {
                    if cas_u32(&visited[v as usize], 0, 1) {
                        Some(u)
                    } else {
                        None
                    }
                },
                |v| visited[v as usize].load(Ordering::Relaxed) == 0,
            );
            let mut e: Vec<VertexId> = out.entries().iter().map(|&(v, _)| v).collect();
            e.sort_unstable();
            e
        };
        assert_eq!(run(Mode::Sparse), run(Mode::Dense));
    }

    #[test]
    fn empty_frontier_empty_result() {
        let g = from_pairs(3, &[(0, 1)]);
        let out = EdgeMap::new(&g).run(&VertexSubset::empty(3), |_, _, _| true, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_stays_sparse_without_in_view() {
        // Directed graph with no transpose: Auto must not panic even with a
        // full frontier.
        let g = from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = EdgeMap::new(&g).run(&VertexSubset::all(4), |_, _, _| true, |_| true);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn dense_works_on_compressed_backend() {
        use julienne_graph::compress::CompressedGraph;
        let g = from_pairs_symmetric(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let parent = atomic_u32_filled(6, u32::MAX);
        parent[0].store(0, Ordering::Relaxed);
        let out = EdgeMap::new(&c).mode(Mode::Dense).run(
            &VertexSubset::single(6, 0),
            |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
            |v| parent[v as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn auto_on_directed_compressed_with_transpose_goes_dense() {
        use julienne_graph::compress::CompressedGraph;
        let g = from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = CompressedGraph::from_csr(&g).with_transpose();
        // Full frontier exceeds the m/20 threshold, so Auto picks dense —
        // which must agree with sparse.
        let sink = Telemetry::enabled();
        let out =
            EdgeMap::new(&c)
                .telemetry(&sink)
                .run(&VertexSubset::all(4), |_, _, _| true, |_| true);
        assert_eq!(out.len(), 4);
        #[cfg(feature = "telemetry")]
        assert_eq!(sink.get(Counter::DenseTraversals), 1);
    }

    #[test]
    fn sparse_split_hub_matches_unsplit() {
        use julienne_graph::compress::CompressedGraph;
        // Hub 0 with 40 out-edges, chunk size 3 → the giant-list path
        // triggers (40 > 2·3) and fans out into 14 chunk tasks.
        let pairs: Vec<(u32, u32)> = (1..=40).map(|u| (0, u)).collect();
        let g = from_pairs(64, &pairs);
        let split = CompressedGraph::from_csr_with_chunk_size(&g, 3);
        let whole = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        let run = |c: &CompressedGraph| {
            let out = EdgeMap::new(c).mode(Mode::Sparse).run(
                &VertexSubset::single(64, 0),
                |_, v, _| v % 2 == 0,
                |v| v != 7,
            );
            out.to_vertices() // scatter slots fix the order — compare raw
        };
        assert_eq!(run(&split), run(&whole));
    }

    #[test]
    fn sparse_data_split_hub_matches_unsplit() {
        use julienne_graph::compress::CompressedGraph;
        let pairs: Vec<(u32, u32)> = (1..=30).map(|u| (0, u)).collect();
        let g = from_pairs(32, &pairs);
        let split = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        let whole = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        let run = |c: &CompressedGraph| {
            let out = EdgeMap::new(c).mode(Mode::Sparse).run_data(
                &VertexSubset::single(32, 0),
                |_, v, _| if v % 3 == 0 { Some(v * 10) } else { None },
                |_| true,
            );
            out.entries().to_vec()
        };
        assert_eq!(run(&split), run(&whole));
    }

    #[test]
    fn dense_heavy_target_matches_unsplit() {
        use julienne_graph::compress::CompressedGraph;
        // Star: every spoke points at hub 31, which has in-degree 31 —
        // heavy for chunk size 4 (31 > 2·4). BFS-style CAS update keeps
        // the traversal's output frontier deterministic.
        let pairs: Vec<(u32, u32)> = (0..31).map(|u| (u, 31)).collect();
        let g = from_pairs_symmetric(32, &pairs);
        let run = |c: &CompressedGraph| {
            let claimed = atomic_u32_filled(32, 0);
            let frontier = VertexSubset::from_vertices(32, (0..31).collect());
            let out = EdgeMap::new(c).mode(Mode::Dense).run(
                &frontier,
                |_, v, _| cas_u32(&claimed[v as usize], 0, 1),
                |v| claimed[v as usize].load(Ordering::Relaxed) == 0,
            );
            let mut ids = out.to_vertices();
            ids.sort_unstable();
            ids
        };
        let split = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        let whole = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        assert_eq!(run(&split), run(&whole));
        assert_eq!(run(&split), vec![31]);
    }

    #[test]
    fn dense_data_heavy_target_matches_unsplit() {
        use julienne_graph::compress::CompressedGraph;
        let pairs: Vec<(u32, u32)> = (0..25).map(|u| (u, 25)).collect();
        let g = from_pairs_symmetric(26, &pairs);
        let run = |c: &CompressedGraph| {
            let flag = atomic_u32_filled(26, 0);
            let frontier = VertexSubset::from_vertices(26, (0..25).collect());
            let out = EdgeMap::new(c).mode(Mode::Dense).run_data(
                &frontier,
                |u, v, _| {
                    if cas_u32(&flag[v as usize], 0, 1) {
                        Some(u)
                    } else {
                        None
                    }
                },
                |v| flag[v as usize].load(Ordering::Relaxed) == 0,
            );
            out.entries()
                .iter()
                .map(|&(v, _)| v)
                .collect::<Vec<VertexId>>()
        };
        let split = CompressedGraph::from_csr_with_chunk_size(&g, 3);
        let whole = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        assert_eq!(run(&split), run(&whole));
        assert_eq!(run(&split), vec![25]);
    }

    #[test]
    fn telemetry_records_direction_and_counts() {
        let g = from_pairs_symmetric(4, &[(0, 1), (0, 2), (2, 3)]);
        let sink = Telemetry::enabled();
        let out = EdgeMap::new(&g).mode(Mode::Sparse).telemetry(&sink).run(
            &VertexSubset::single(4, 0),
            |_, _, _| true,
            |v| v != 0,
        );
        assert_eq!(out.len(), 2);
        #[cfg(feature = "telemetry")]
        {
            assert_eq!(sink.get(Counter::SparseTraversals), 1);
            assert_eq!(sink.get(Counter::DenseTraversals), 0);
            assert_eq!(sink.get(Counter::EdgesScanned), 2); // deg(0) = 2
            assert_eq!(sink.get(Counter::EdgesRelaxed), 2);
            assert_eq!(sink.get(Counter::VerticesScanned), 1);
        }
        let dense_sink = Telemetry::enabled();
        EdgeMap::new(&g)
            .mode(Mode::Dense)
            .telemetry(&dense_sink)
            .run(&VertexSubset::single(4, 0), |_, _, _| true, |v| v != 0);
        #[cfg(feature = "telemetry")]
        assert_eq!(dense_sink.get(Counter::DenseTraversals), 1);
    }
}
