//! Out-edge access abstraction.
//!
//! Sparse (push) traversals only need per-vertex out-edge iteration, so they
//! are written once against this trait and work over plain CSR graphs,
//! Ligra+ byte-compressed graphs, and packable graphs alike — mirroring how
//! Julienne runs unmodified on compressed inputs.

use julienne_graph::compress::CompressedGraph;
use julienne_graph::csr::{Csr, Weight};
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;

/// Read access to a graph's out-adjacency.
pub trait OutEdges: Sync {
    /// Edge weight type.
    type W: Weight;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of (directed) edges currently in the graph.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize;

    /// Visits each out-edge `(target, weight)` of `v`.
    fn for_each_out<F: FnMut(VertexId, Self::W)>(&self, v: VertexId, f: F);
}

impl<W: Weight> OutEdges for Csr<W> {
    type W = W;

    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, mut f: F) {
        for (u, w) in self.edges_of(v) {
            f(u, w);
        }
    }
}

impl OutEdges for CompressedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        CompressedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CompressedGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        self.for_each_neighbor(v, |u| f(u, ()));
    }
}

impl OutEdges for julienne_graph::compress::CompressedWGraph {
    type W = u32;

    fn num_vertices(&self) -> usize {
        julienne_graph::compress::CompressedWGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        julienne_graph::compress::CompressedWGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, u32)>(&self, v: VertexId, f: F) {
        self.for_each_edge(v, f);
    }
}

impl OutEdges for PackedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        PackedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        self.original_num_edges()
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            f(u, ());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs;
    use julienne_graph::compress::CompressedGraph;

    fn collect<G: OutEdges>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_out(v, |u, _| out.push(u));
        out.sort_unstable();
        out
    }

    #[test]
    fn all_backends_agree() {
        let g = from_pairs(6, &[(0, 1), (0, 3), (0, 5), (2, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let p = PackedGraph::from_csr(&g);
        for v in 0..6u32 {
            let want = collect(&g, v);
            assert_eq!(collect(&c, v), want, "compressed vertex {v}");
            assert_eq!(collect(&p, v), want, "packed vertex {v}");
            assert_eq!(g.out_degree(v), c.out_degree(v));
            assert_eq!(g.out_degree(v), p.out_degree(v));
        }
        assert_eq!(OutEdges::num_edges(&g), 4);
        assert_eq!(OutEdges::num_vertices(&c), 6);
    }
}
