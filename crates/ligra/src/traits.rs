//! The graph-access trait hierarchy — the canonical backend abstraction.
//!
//! Every traversal in the framework is written against one of three traits,
//! so the same algorithm runs unmodified over plain CSR graphs, Ligra+
//! byte-compressed graphs, and packable graphs — mirroring how Julienne
//! runs unmodified on compressed inputs:
//!
//! * [`OutEdges`] — per-vertex **out**-edge iteration. Sufficient for
//!   sparse (push) traversals, sequential oracles, and anything that only
//!   walks forward edges.
//! * [`InEdges`] — adds **in**-edge access with the early-exit iteration
//!   the dense (pull) path needs: a pull traversal stops scanning a
//!   target's in-edges the moment its `cond` flips, so the iteration
//!   primitive must support breaking mid-list (including mid-decode for
//!   byte-compressed adjacency).
//! * [`GraphRef`] — the umbrella bound for direction-optimized `edgeMap`:
//!   symmetry metadata plus the frontier out-degree sum used by the
//!   `|U| + Σ out-deg(U) > m/20` switching rule.
//!
//! Who implements what:
//!
//! | backend            | `OutEdges` | `InEdges` (dense pull)                  |
//! |--------------------|------------|-----------------------------------------|
//! | `Csr<W>`           | yes        | when symmetric or transpose attached     |
//! | `CompressedGraph`  | yes        | when symmetric or transpose attached     |
//! | `CompressedWGraph` | yes        | when symmetric or transpose attached     |
//! | `MappedGraph<W>`   | yes        | when symmetric or the `.jgr` file        |
//! |                    |            | carries transpose sections               |
//! | `PackedGraph`      | yes        | never (`has_in_view` is `false`; packing |
//! |                    |            | mutates out-lists asymmetrically)        |
//!
//! All five implement `GraphRef`; `has_in_view()` gates whether the dense
//! path may actually be chosen.

use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::container::MappedGraph;
use julienne_graph::csr::{Csr, Weight};
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use rayon::prelude::*;

/// Read access to a graph's out-adjacency.
pub trait OutEdges: Sync {
    /// Edge weight type.
    type W: Weight;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of (directed) edges currently in the graph.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize;

    /// Visits each out-edge `(target, weight)` of `v`.
    fn for_each_out<F: FnMut(VertexId, Self::W)>(&self, v: VertexId, f: F);

    /// Visits out-edges of `v` until `f` returns `false`.
    ///
    /// The default keeps calling [`for_each_out`](Self::for_each_out) with a
    /// dead flag (correct but scans the whole list); backends with a real
    /// break — slice iteration, early decode stop — should override.
    fn for_each_out_until<F: FnMut(VertexId, Self::W) -> bool>(&self, v: VertexId, mut f: F) {
        let mut alive = true;
        self.for_each_out(v, |u, w| {
            if alive {
                alive = f(u, w);
            }
        });
    }

    /// Degree-aware split granularity: edges per independently scannable
    /// sub-chunk of one vertex's out-list, or `usize::MAX` when the backend
    /// cannot split a single list. edgeMap uses this to break giant
    /// adjacency lists (hub vertices) into parallel chunk tasks instead of
    /// serializing a whole list on one worker. Must be a pure function of
    /// the graph — never of the thread count — so chunk task sets are
    /// deterministic.
    fn out_chunk_edges(&self) -> usize {
        usize::MAX
    }

    /// Visits chunk `c` of `v`'s out-edges — the local edge range
    /// `[c·sz, min((c+1)·sz, deg))` with `sz = out_chunk_edges()`. Chunks
    /// of one vertex may be visited concurrently. Backends that cannot
    /// split (the default) only accept chunk 0 = the whole list.
    fn for_each_out_chunk<F: FnMut(VertexId, Self::W)>(&self, v: VertexId, c: usize, f: F) {
        debug_assert_eq!(c, 0, "unsplittable backend asked for out-chunk {c}");
        self.for_each_out(v, f);
    }
}

/// In-edge access for the dense (pull) traversal direction.
///
/// A backend *implements* this trait whenever it can sometimes answer pull
/// queries; whether it can right now is a runtime property exposed by
/// [`has_in_view`](InEdges::has_in_view) (e.g. a directed CSR only has an
/// in-view once a transpose is attached). Direction-optimized `edgeMap`
/// consults `has_in_view()` before choosing dense, so `Mode::Auto` is always
/// safe; forcing `Mode::Dense` without an in-view panics.
pub trait InEdges: OutEdges {
    /// Whether in-edge queries are currently answerable (symmetric graph or
    /// attached transpose).
    fn has_in_view(&self) -> bool;

    /// In-degree of `v`.
    ///
    /// # Panics
    /// If [`has_in_view`](InEdges::has_in_view) is `false`.
    fn in_degree(&self, v: VertexId) -> usize;

    /// Visits in-edges `(source, weight)` of `v` until `f` returns `false` —
    /// the early exit Ligra's pull direction relies on ("once the target no
    /// longer wants updates, stop scanning its in-edges").
    ///
    /// # Panics
    /// If [`has_in_view`](InEdges::has_in_view) is `false`.
    fn for_each_in_until<F: FnMut(VertexId, Self::W) -> bool>(&self, v: VertexId, f: F);

    /// Split granularity for in-lists — the pull-side twin of
    /// [`OutEdges::out_chunk_edges`].
    fn in_chunk_edges(&self) -> usize {
        usize::MAX
    }

    /// Visits chunk `c` of `v`'s in-edges — the local edge range
    /// `[c·sz, min((c+1)·sz, deg))` with `sz = in_chunk_edges()`. Unlike
    /// [`for_each_in_until`](InEdges::for_each_in_until) there is no early
    /// exit: chunk tasks of one vertex run concurrently, and decoding each
    /// chunk in full keeps the scanned-edge count a pure function of the
    /// graph (Ligra+ makes the same trade for parallel decode).
    ///
    /// # Panics
    /// If [`has_in_view`](InEdges::has_in_view) is `false`.
    fn for_each_in_chunk<F: FnMut(VertexId, Self::W)>(&self, v: VertexId, c: usize, mut f: F) {
        debug_assert_eq!(c, 0, "unsplittable backend asked for in-chunk {c}");
        self.for_each_in_until(v, |u, w| {
            f(u, w);
            true
        });
    }
}

/// The umbrella bound for direction-optimized traversal: out-edges,
/// (potential) in-edges, and the metadata the sparse/dense switching rule
/// needs.
pub trait GraphRef: InEdges {
    /// Whether the graph is symmetric (undirected).
    fn is_symmetric(&self) -> bool;

    /// Sum of out-degrees over a set of vertices (the `Σ out-deg(U)` term
    /// of the switching rule). The default parallelizes above 4096 ids.
    fn out_degrees_sum(&self, vs: &[VertexId]) -> usize {
        if vs.len() < 4096 {
            vs.iter().map(|&v| self.out_degree(v)).sum()
        } else {
            vs.par_iter().map(|&v| self.out_degree(v)).sum()
        }
    }
}

const NO_IN_VIEW: &str = "dense edgeMap requires a symmetric graph or attached transpose";

/// Chunk granularity for the CSR-family backends (`Csr`, `MappedGraph`).
/// Contiguous slices split at any boundary, so the choice only balances
/// scheduling overhead against load balance; 4096 edges ≈ one L1-resident
/// slice per task and mirrors the compressed backend's default of
/// [`julienne_graph::compress::DEFAULT_CHUNK_SIZE`] × a small factor.
const CSR_CHUNK_EDGES: usize = 4096;

// --------------------------------------------------------------------------
// Csr<W>
// --------------------------------------------------------------------------

impl<W: Weight> OutEdges for Csr<W> {
    type W = W;

    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, mut f: F) {
        for (u, w) in self.edges_of(v) {
            f(u, w);
        }
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        for (u, w) in self.edges_of(v) {
            if !f(u, w) {
                break;
            }
        }
    }

    fn out_chunk_edges(&self) -> usize {
        CSR_CHUNK_EDGES
    }

    #[inline]
    fn for_each_out_chunk<F: FnMut(VertexId, W)>(&self, v: VertexId, c: usize, mut f: F) {
        let deg = self.degree(v);
        let lo = c.saturating_mul(CSR_CHUNK_EDGES).min(deg);
        let hi = lo.saturating_add(CSR_CHUNK_EDGES).min(deg);
        let ns = &self.neighbors(v)[lo..hi];
        let ws = &self.weights_of(v)[lo..hi];
        for (&u, &w) in ns.iter().zip(ws) {
            f(u, w);
        }
    }
}

impl<W: Weight> InEdges for Csr<W> {
    #[inline]
    fn has_in_view(&self) -> bool {
        Csr::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        let iv = self.in_view().expect(NO_IN_VIEW);
        for (u, w) in iv.edges_of(v) {
            if !f(u, w) {
                break;
            }
        }
    }

    fn in_chunk_edges(&self) -> usize {
        CSR_CHUNK_EDGES
    }

    #[inline]
    fn for_each_in_chunk<F: FnMut(VertexId, W)>(&self, v: VertexId, c: usize, f: F) {
        OutEdges::for_each_out_chunk(self.in_view().expect(NO_IN_VIEW), v, c, f);
    }
}

impl<W: Weight> GraphRef for Csr<W> {
    #[inline]
    fn is_symmetric(&self) -> bool {
        Csr::is_symmetric(self)
    }

    #[inline]
    fn out_degrees_sum(&self, vs: &[VertexId]) -> usize {
        Csr::out_degrees_sum(self, vs)
    }
}

// --------------------------------------------------------------------------
// CompressedGraph
// --------------------------------------------------------------------------

impl OutEdges for CompressedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        CompressedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CompressedGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        self.for_each_neighbor(v, |u| f(u, ()));
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        self.for_each_neighbor_until(v, |u| f(u, ()));
    }

    fn out_chunk_edges(&self) -> usize {
        match self.chunk_size() {
            0 => usize::MAX,
            cs => cs as usize,
        }
    }

    #[inline]
    fn for_each_out_chunk<F: FnMut(VertexId, ())>(&self, v: VertexId, c: usize, mut f: F) {
        self.for_each_neighbor_chunk(v, c, |u| f(u, ()));
    }
}

impl InEdges for CompressedGraph {
    #[inline]
    fn has_in_view(&self) -> bool {
        CompressedGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        self.in_view()
            .expect(NO_IN_VIEW)
            .for_each_neighbor_until(v, |u| f(u, ()));
    }

    fn in_chunk_edges(&self) -> usize {
        match self.in_view().map(CompressedGraph::chunk_size) {
            Some(0) | None => usize::MAX,
            Some(cs) => cs as usize,
        }
    }

    #[inline]
    fn for_each_in_chunk<F: FnMut(VertexId, ())>(&self, v: VertexId, c: usize, mut f: F) {
        self.in_view()
            .expect(NO_IN_VIEW)
            .for_each_neighbor_chunk(v, c, |u| f(u, ()));
    }
}

impl GraphRef for CompressedGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        CompressedGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// CompressedWGraph
// --------------------------------------------------------------------------

impl OutEdges for CompressedWGraph {
    type W = u32;

    fn num_vertices(&self) -> usize {
        CompressedWGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CompressedWGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, u32)>(&self, v: VertexId, f: F) {
        self.for_each_edge(v, f);
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, f: F) {
        self.for_each_edge_until(v, f);
    }

    fn out_chunk_edges(&self) -> usize {
        match self.chunk_size() {
            0 => usize::MAX,
            cs => cs as usize,
        }
    }

    #[inline]
    fn for_each_out_chunk<F: FnMut(VertexId, u32)>(&self, v: VertexId, c: usize, f: F) {
        self.for_each_edge_chunk(v, c, f);
    }
}

impl InEdges for CompressedWGraph {
    #[inline]
    fn has_in_view(&self) -> bool {
        CompressedWGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, f: F) {
        self.in_view().expect(NO_IN_VIEW).for_each_edge_until(v, f);
    }

    fn in_chunk_edges(&self) -> usize {
        match self.in_view().map(CompressedWGraph::chunk_size) {
            Some(0) | None => usize::MAX,
            Some(cs) => cs as usize,
        }
    }

    #[inline]
    fn for_each_in_chunk<F: FnMut(VertexId, u32)>(&self, v: VertexId, c: usize, f: F) {
        self.in_view()
            .expect(NO_IN_VIEW)
            .for_each_edge_chunk(v, c, f);
    }
}

impl GraphRef for CompressedWGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        CompressedWGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// MappedGraph<W> — traversal directly over the mmap'd .jgr sections
// --------------------------------------------------------------------------

impl<W: Weight> OutEdges for MappedGraph<W> {
    type W = W;

    fn num_vertices(&self) -> usize {
        MappedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        MappedGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_out(self, v, f);
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_out_until(self, v, f);
    }

    fn out_chunk_edges(&self) -> usize {
        CSR_CHUNK_EDGES
    }

    #[inline]
    fn for_each_out_chunk<F: FnMut(VertexId, W)>(&self, v: VertexId, c: usize, f: F) {
        let lo = c.saturating_mul(CSR_CHUNK_EDGES);
        MappedGraph::for_each_out_range(self, v, lo, lo.saturating_add(CSR_CHUNK_EDGES), f);
    }
}

impl<W: Weight> InEdges for MappedGraph<W> {
    #[inline]
    fn has_in_view(&self) -> bool {
        MappedGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        MappedGraph::in_degree(self, v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_in_until(self, v, f);
    }

    fn in_chunk_edges(&self) -> usize {
        CSR_CHUNK_EDGES
    }

    #[inline]
    fn for_each_in_chunk<F: FnMut(VertexId, W)>(&self, v: VertexId, c: usize, f: F) {
        let lo = c.saturating_mul(CSR_CHUNK_EDGES);
        MappedGraph::for_each_in_range(self, v, lo, lo.saturating_add(CSR_CHUNK_EDGES), f);
    }
}

impl<W: Weight> GraphRef for MappedGraph<W> {
    #[inline]
    fn is_symmetric(&self) -> bool {
        MappedGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// PackedGraph
// --------------------------------------------------------------------------

impl OutEdges for PackedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        PackedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        self.original_num_edges()
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            f(u, ());
        }
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            if !f(u, ()) {
                break;
            }
        }
    }
}

impl InEdges for PackedGraph {
    /// Always `false`: packing shrinks out-lists independently, so even a
    /// symmetric source graph stops being its own transpose after the first
    /// `pack`. The dense path is therefore never chosen for packed graphs.
    #[inline]
    fn has_in_view(&self) -> bool {
        false
    }

    fn in_degree(&self, _v: VertexId) -> usize {
        panic!("PackedGraph has no in-edge view (packing mutates out-lists asymmetrically)")
    }

    fn for_each_in_until<F: FnMut(VertexId, ()) -> bool>(&self, _v: VertexId, _f: F) {
        panic!("PackedGraph has no in-edge view (packing mutates out-lists asymmetrically)")
    }
}

impl GraphRef for PackedGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::{from_pairs, from_pairs_symmetric};
    use julienne_graph::compress::CompressedGraph;

    fn collect<G: OutEdges>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_out(v, |u, _| out.push(u));
        out.sort_unstable();
        out
    }

    #[test]
    fn all_backends_agree() {
        let g = from_pairs(6, &[(0, 1), (0, 3), (0, 5), (2, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let p = PackedGraph::from_csr(&g);
        for v in 0..6u32 {
            let want = collect(&g, v);
            assert_eq!(collect(&c, v), want, "compressed vertex {v}");
            assert_eq!(collect(&p, v), want, "packed vertex {v}");
            assert_eq!(g.out_degree(v), c.out_degree(v));
            assert_eq!(g.out_degree(v), p.out_degree(v));
        }
        assert_eq!(OutEdges::num_edges(&g), 4);
        assert_eq!(OutEdges::num_vertices(&c), 6);
    }

    #[test]
    fn out_until_stops_early() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (0, 3)]);
        let c = CompressedGraph::from_csr(&g);
        let p = PackedGraph::from_csr(&g);
        fn first_two<G: OutEdges>(g: &G) -> Vec<VertexId> {
            let mut seen = Vec::new();
            g.for_each_out_until(0, |u, _| {
                seen.push(u);
                seen.len() < 2
            });
            seen
        }
        assert_eq!(first_two(&g).len(), 2);
        assert_eq!(first_two(&c).len(), 2);
        assert_eq!(first_two(&p).len(), 2);
    }

    #[test]
    fn in_edges_on_symmetric_backends() {
        let g = from_pairs_symmetric(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let c = CompressedGraph::from_csr(&g);
        for v in 0..5u32 {
            assert!(g.has_in_view());
            assert!(c.has_in_view());
            assert_eq!(InEdges::in_degree(&g, v), g.degree(v));
            assert_eq!(InEdges::in_degree(&c, v), c.degree(v));
            let mut a = Vec::new();
            g.for_each_in_until(v, |u, _| {
                a.push(u);
                true
            });
            let mut b = Vec::new();
            c.for_each_in_until(v, |u, _| {
                b.push(u);
                true
            });
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in-edges of {v}");
        }
    }

    #[test]
    fn directed_transpose_gives_in_view() {
        let g = from_pairs(4, &[(0, 2), (1, 2), (2, 3)]).with_transpose();
        let c = CompressedGraph::from_csr(&g);
        assert!(g.has_in_view() && c.has_in_view());
        for back in [
            {
                let mut a = Vec::new();
                g.for_each_in_until(2, |u, _| {
                    a.push(u);
                    true
                });
                a
            },
            {
                let mut a = Vec::new();
                c.for_each_in_until(2, |u, _| {
                    a.push(u);
                    true
                });
                a
            },
        ] {
            let mut b = back;
            b.sort_unstable();
            assert_eq!(b, vec![0, 1]);
        }
    }

    #[test]
    fn mapped_backend_agrees_with_csr() {
        use julienne_graph::container::{self, ContainerWriteOptions};
        let g = from_pairs_symmetric(6, &[(0, 1), (0, 3), (0, 5), (2, 4), (1, 5)]);
        let p =
            std::env::temp_dir().join(format!("julienne-traits-mapped-{}.jgr", std::process::id()));
        container::write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        for v in 0..6u32 {
            assert_eq!(collect(&mg, v), collect(&g, v), "vertex {v}");
            assert_eq!(mg.out_degree(v), g.out_degree(v));
            assert_eq!(InEdges::in_degree(&mg, v), InEdges::in_degree(&g, v));
            let mut a = Vec::new();
            mg.for_each_in_until(v, |u, _| {
                a.push(u);
                true
            });
            let mut b = Vec::new();
            g.for_each_in_until(v, |u, _| {
                b.push(u);
                true
            });
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in-edges of {v}");
        }
        assert!(GraphRef::is_symmetric(&mg));
        assert!(InEdges::has_in_view(&mg));
        assert_eq!(GraphRef::out_degrees_sum(&mg, &[0, 2]), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn packed_never_has_in_view() {
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        let p = PackedGraph::from_csr(&g);
        assert!(!InEdges::has_in_view(&p));
        assert!(!GraphRef::is_symmetric(&p));
    }

    #[test]
    fn in_until_early_exit_stops_decode() {
        let g = from_pairs_symmetric(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let mut seen = 0;
        c.for_each_in_until(4, |_, _| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn chunk_concat_matches_whole_list() {
        // A hub with 11 out-edges, compressed with chunk_size 4 → 3 chunks.
        let pairs: Vec<(u32, u32)> = (1..=11).map(|u| (0, u)).collect();
        let g = from_pairs(12, &pairs);
        let c = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        assert_eq!(OutEdges::out_chunk_edges(&c), 4);
        let deg = OutEdges::out_degree(&c, 0);
        let nc = deg.div_ceil(OutEdges::out_chunk_edges(&c));
        let mut got = Vec::new();
        for ch in 0..nc {
            let before = got.len();
            c.for_each_out_chunk(0, ch, |u, ()| got.push(u));
            assert!(got.len() - before <= 4, "chunk {ch} over-sized");
        }
        assert_eq!(got, collect(&c, 0), "chunk concat != whole list");
        // CSR and legacy compressed report "unsplittable or huge" sizes and
        // serve the whole list as chunk 0.
        let legacy = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        assert_eq!(OutEdges::out_chunk_edges(&legacy), usize::MAX);
        let mut whole = Vec::new();
        legacy.for_each_out_chunk(0, 0, |u, ()| whole.push(u));
        assert_eq!(whole, got);
        assert_eq!(OutEdges::out_chunk_edges(&g), CSR_CHUNK_EDGES);
        let mut csr_whole = Vec::new();
        g.for_each_out_chunk(0, 0, |u, w: ()| csr_whole.push((u, w)));
        assert_eq!(csr_whole.len(), deg);
    }

    #[test]
    fn in_chunks_cover_in_list_symmetric() {
        let pairs: Vec<(u32, u32)> = (0..9).map(|u| (u, 9)).collect();
        let g = from_pairs_symmetric(10, &pairs);
        let c = CompressedGraph::from_csr_with_chunk_size(&g, 2);
        assert_eq!(InEdges::in_chunk_edges(&c), 2);
        let deg = InEdges::in_degree(&c, 9);
        let nc = deg.div_ceil(InEdges::in_chunk_edges(&c));
        let mut got = Vec::new();
        for ch in 0..nc {
            c.for_each_in_chunk(9, ch, |u, ()| got.push(u));
        }
        let mut want = Vec::new();
        c.for_each_in_until(9, |u, ()| {
            want.push(u);
            true
        });
        assert_eq!(got, want);
        // CSR in-chunks route through the in-view's out-chunks.
        let mut csr_got = Vec::new();
        g.for_each_in_chunk(9, 0, |u, _| csr_got.push(u));
        assert_eq!(csr_got.len(), InEdges::in_degree(&g, 9));
    }

    #[test]
    fn mapped_chunks_match_unchunked() {
        use julienne_graph::container::{self, ContainerWriteOptions};
        let pairs: Vec<(u32, u32)> = (1..=7).map(|u| (0, u)).collect();
        let g = from_pairs_symmetric(8, &pairs);
        let p =
            std::env::temp_dir().join(format!("julienne-traits-chunk-{}.jgr", std::process::id()));
        container::write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        let mut got = Vec::new();
        mg.for_each_out_chunk(0, 0, |u, _| got.push(u));
        assert_eq!(got, collect(&mg, 0));
        let mut ins = Vec::new();
        mg.for_each_in_chunk(0, 0, |u, _| ins.push(u));
        assert_eq!(ins.len(), InEdges::in_degree(&mg, 0));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn default_out_degrees_sum_matches_manual() {
        let g = from_pairs(5, &[(0, 1), (0, 2), (3, 4)]);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(GraphRef::out_degrees_sum(&c, &[0, 3]), 3);
        assert_eq!(GraphRef::out_degrees_sum(&g, &[0, 3]), 3);
    }
}
