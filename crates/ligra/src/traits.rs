//! The graph-access trait hierarchy — the canonical backend abstraction.
//!
//! Every traversal in the framework is written against one of three traits,
//! so the same algorithm runs unmodified over plain CSR graphs, Ligra+
//! byte-compressed graphs, and packable graphs — mirroring how Julienne
//! runs unmodified on compressed inputs:
//!
//! * [`OutEdges`] — per-vertex **out**-edge iteration. Sufficient for
//!   sparse (push) traversals, sequential oracles, and anything that only
//!   walks forward edges.
//! * [`InEdges`] — adds **in**-edge access with the early-exit iteration
//!   the dense (pull) path needs: a pull traversal stops scanning a
//!   target's in-edges the moment its `cond` flips, so the iteration
//!   primitive must support breaking mid-list (including mid-decode for
//!   byte-compressed adjacency).
//! * [`GraphRef`] — the umbrella bound for direction-optimized `edgeMap`:
//!   symmetry metadata plus the frontier out-degree sum used by the
//!   `|U| + Σ out-deg(U) > m/20` switching rule.
//!
//! Who implements what:
//!
//! | backend            | `OutEdges` | `InEdges` (dense pull)                  |
//! |--------------------|------------|-----------------------------------------|
//! | `Csr<W>`           | yes        | when symmetric or transpose attached     |
//! | `CompressedGraph`  | yes        | when symmetric or transpose attached     |
//! | `CompressedWGraph` | yes        | when symmetric or transpose attached     |
//! | `MappedGraph<W>`   | yes        | when symmetric or the `.jgr` file        |
//! |                    |            | carries transpose sections               |
//! | `PackedGraph`      | yes        | never (`has_in_view` is `false`; packing |
//! |                    |            | mutates out-lists asymmetrically)        |
//!
//! All five implement `GraphRef`; `has_in_view()` gates whether the dense
//! path may actually be chosen.

use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::container::MappedGraph;
use julienne_graph::csr::{Csr, Weight};
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use rayon::prelude::*;

/// Read access to a graph's out-adjacency.
pub trait OutEdges: Sync {
    /// Edge weight type.
    type W: Weight;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of (directed) edges currently in the graph.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize;

    /// Visits each out-edge `(target, weight)` of `v`.
    fn for_each_out<F: FnMut(VertexId, Self::W)>(&self, v: VertexId, f: F);

    /// Visits out-edges of `v` until `f` returns `false`.
    ///
    /// The default keeps calling [`for_each_out`](Self::for_each_out) with a
    /// dead flag (correct but scans the whole list); backends with a real
    /// break — slice iteration, early decode stop — should override.
    fn for_each_out_until<F: FnMut(VertexId, Self::W) -> bool>(&self, v: VertexId, mut f: F) {
        let mut alive = true;
        self.for_each_out(v, |u, w| {
            if alive {
                alive = f(u, w);
            }
        });
    }
}

/// In-edge access for the dense (pull) traversal direction.
///
/// A backend *implements* this trait whenever it can sometimes answer pull
/// queries; whether it can right now is a runtime property exposed by
/// [`has_in_view`](InEdges::has_in_view) (e.g. a directed CSR only has an
/// in-view once a transpose is attached). Direction-optimized `edgeMap`
/// consults `has_in_view()` before choosing dense, so `Mode::Auto` is always
/// safe; forcing `Mode::Dense` without an in-view panics.
pub trait InEdges: OutEdges {
    /// Whether in-edge queries are currently answerable (symmetric graph or
    /// attached transpose).
    fn has_in_view(&self) -> bool;

    /// In-degree of `v`.
    ///
    /// # Panics
    /// If [`has_in_view`](InEdges::has_in_view) is `false`.
    fn in_degree(&self, v: VertexId) -> usize;

    /// Visits in-edges `(source, weight)` of `v` until `f` returns `false` —
    /// the early exit Ligra's pull direction relies on ("once the target no
    /// longer wants updates, stop scanning its in-edges").
    ///
    /// # Panics
    /// If [`has_in_view`](InEdges::has_in_view) is `false`.
    fn for_each_in_until<F: FnMut(VertexId, Self::W) -> bool>(&self, v: VertexId, f: F);
}

/// The umbrella bound for direction-optimized traversal: out-edges,
/// (potential) in-edges, and the metadata the sparse/dense switching rule
/// needs.
pub trait GraphRef: InEdges {
    /// Whether the graph is symmetric (undirected).
    fn is_symmetric(&self) -> bool;

    /// Sum of out-degrees over a set of vertices (the `Σ out-deg(U)` term
    /// of the switching rule). The default parallelizes above 4096 ids.
    fn out_degrees_sum(&self, vs: &[VertexId]) -> usize {
        if vs.len() < 4096 {
            vs.iter().map(|&v| self.out_degree(v)).sum()
        } else {
            vs.par_iter().map(|&v| self.out_degree(v)).sum()
        }
    }
}

const NO_IN_VIEW: &str = "dense edgeMap requires a symmetric graph or attached transpose";

// --------------------------------------------------------------------------
// Csr<W>
// --------------------------------------------------------------------------

impl<W: Weight> OutEdges for Csr<W> {
    type W = W;

    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, mut f: F) {
        for (u, w) in self.edges_of(v) {
            f(u, w);
        }
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        for (u, w) in self.edges_of(v) {
            if !f(u, w) {
                break;
            }
        }
    }
}

impl<W: Weight> InEdges for Csr<W> {
    #[inline]
    fn has_in_view(&self) -> bool {
        Csr::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        let iv = self.in_view().expect(NO_IN_VIEW);
        for (u, w) in iv.edges_of(v) {
            if !f(u, w) {
                break;
            }
        }
    }
}

impl<W: Weight> GraphRef for Csr<W> {
    #[inline]
    fn is_symmetric(&self) -> bool {
        Csr::is_symmetric(self)
    }

    #[inline]
    fn out_degrees_sum(&self, vs: &[VertexId]) -> usize {
        Csr::out_degrees_sum(self, vs)
    }
}

// --------------------------------------------------------------------------
// CompressedGraph
// --------------------------------------------------------------------------

impl OutEdges for CompressedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        CompressedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CompressedGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        self.for_each_neighbor(v, |u| f(u, ()));
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        self.for_each_neighbor_until(v, |u| f(u, ()));
    }
}

impl InEdges for CompressedGraph {
    #[inline]
    fn has_in_view(&self) -> bool {
        CompressedGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        self.in_view()
            .expect(NO_IN_VIEW)
            .for_each_neighbor_until(v, |u| f(u, ()));
    }
}

impl GraphRef for CompressedGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        CompressedGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// CompressedWGraph
// --------------------------------------------------------------------------

impl OutEdges for CompressedWGraph {
    type W = u32;

    fn num_vertices(&self) -> usize {
        CompressedWGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CompressedWGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, u32)>(&self, v: VertexId, f: F) {
        self.for_each_edge(v, f);
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, f: F) {
        self.for_each_edge_until(v, f);
    }
}

impl InEdges for CompressedWGraph {
    #[inline]
    fn has_in_view(&self) -> bool {
        CompressedWGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_view().expect(NO_IN_VIEW).degree(v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, f: F) {
        self.in_view().expect(NO_IN_VIEW).for_each_edge_until(v, f);
    }
}

impl GraphRef for CompressedWGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        CompressedWGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// MappedGraph<W> — traversal directly over the mmap'd .jgr sections
// --------------------------------------------------------------------------

impl<W: Weight> OutEdges for MappedGraph<W> {
    type W = W;

    fn num_vertices(&self) -> usize {
        MappedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        MappedGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_out(self, v, f);
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_out_until(self, v, f);
    }
}

impl<W: Weight> InEdges for MappedGraph<W> {
    #[inline]
    fn has_in_view(&self) -> bool {
        MappedGraph::has_in_view(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        MappedGraph::in_degree(self, v)
    }

    #[inline]
    fn for_each_in_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, f: F) {
        MappedGraph::for_each_in_until(self, v, f);
    }
}

impl<W: Weight> GraphRef for MappedGraph<W> {
    #[inline]
    fn is_symmetric(&self) -> bool {
        MappedGraph::is_symmetric(self)
    }
}

// --------------------------------------------------------------------------
// PackedGraph
// --------------------------------------------------------------------------

impl OutEdges for PackedGraph {
    type W = ();

    fn num_vertices(&self) -> usize {
        PackedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        self.original_num_edges()
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(VertexId, ())>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            f(u, ());
        }
    }

    #[inline]
    fn for_each_out_until<F: FnMut(VertexId, ()) -> bool>(&self, v: VertexId, mut f: F) {
        for &u in self.neighbors(v) {
            if !f(u, ()) {
                break;
            }
        }
    }
}

impl InEdges for PackedGraph {
    /// Always `false`: packing shrinks out-lists independently, so even a
    /// symmetric source graph stops being its own transpose after the first
    /// `pack`. The dense path is therefore never chosen for packed graphs.
    #[inline]
    fn has_in_view(&self) -> bool {
        false
    }

    fn in_degree(&self, _v: VertexId) -> usize {
        panic!("PackedGraph has no in-edge view (packing mutates out-lists asymmetrically)")
    }

    fn for_each_in_until<F: FnMut(VertexId, ()) -> bool>(&self, _v: VertexId, _f: F) {
        panic!("PackedGraph has no in-edge view (packing mutates out-lists asymmetrically)")
    }
}

impl GraphRef for PackedGraph {
    #[inline]
    fn is_symmetric(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::{from_pairs, from_pairs_symmetric};
    use julienne_graph::compress::CompressedGraph;

    fn collect<G: OutEdges>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_out(v, |u, _| out.push(u));
        out.sort_unstable();
        out
    }

    #[test]
    fn all_backends_agree() {
        let g = from_pairs(6, &[(0, 1), (0, 3), (0, 5), (2, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let p = PackedGraph::from_csr(&g);
        for v in 0..6u32 {
            let want = collect(&g, v);
            assert_eq!(collect(&c, v), want, "compressed vertex {v}");
            assert_eq!(collect(&p, v), want, "packed vertex {v}");
            assert_eq!(g.out_degree(v), c.out_degree(v));
            assert_eq!(g.out_degree(v), p.out_degree(v));
        }
        assert_eq!(OutEdges::num_edges(&g), 4);
        assert_eq!(OutEdges::num_vertices(&c), 6);
    }

    #[test]
    fn out_until_stops_early() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (0, 3)]);
        let c = CompressedGraph::from_csr(&g);
        let p = PackedGraph::from_csr(&g);
        fn first_two<G: OutEdges>(g: &G) -> Vec<VertexId> {
            let mut seen = Vec::new();
            g.for_each_out_until(0, |u, _| {
                seen.push(u);
                seen.len() < 2
            });
            seen
        }
        assert_eq!(first_two(&g).len(), 2);
        assert_eq!(first_two(&c).len(), 2);
        assert_eq!(first_two(&p).len(), 2);
    }

    #[test]
    fn in_edges_on_symmetric_backends() {
        let g = from_pairs_symmetric(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let c = CompressedGraph::from_csr(&g);
        for v in 0..5u32 {
            assert!(g.has_in_view());
            assert!(c.has_in_view());
            assert_eq!(InEdges::in_degree(&g, v), g.degree(v));
            assert_eq!(InEdges::in_degree(&c, v), c.degree(v));
            let mut a = Vec::new();
            g.for_each_in_until(v, |u, _| {
                a.push(u);
                true
            });
            let mut b = Vec::new();
            c.for_each_in_until(v, |u, _| {
                b.push(u);
                true
            });
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in-edges of {v}");
        }
    }

    #[test]
    fn directed_transpose_gives_in_view() {
        let g = from_pairs(4, &[(0, 2), (1, 2), (2, 3)]).with_transpose();
        let c = CompressedGraph::from_csr(&g);
        assert!(g.has_in_view() && c.has_in_view());
        for back in [
            {
                let mut a = Vec::new();
                g.for_each_in_until(2, |u, _| {
                    a.push(u);
                    true
                });
                a
            },
            {
                let mut a = Vec::new();
                c.for_each_in_until(2, |u, _| {
                    a.push(u);
                    true
                });
                a
            },
        ] {
            let mut b = back;
            b.sort_unstable();
            assert_eq!(b, vec![0, 1]);
        }
    }

    #[test]
    fn mapped_backend_agrees_with_csr() {
        use julienne_graph::container::{self, ContainerWriteOptions};
        let g = from_pairs_symmetric(6, &[(0, 1), (0, 3), (0, 5), (2, 4), (1, 5)]);
        let p =
            std::env::temp_dir().join(format!("julienne-traits-mapped-{}.jgr", std::process::id()));
        container::write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        for v in 0..6u32 {
            assert_eq!(collect(&mg, v), collect(&g, v), "vertex {v}");
            assert_eq!(mg.out_degree(v), g.out_degree(v));
            assert_eq!(InEdges::in_degree(&mg, v), InEdges::in_degree(&g, v));
            let mut a = Vec::new();
            mg.for_each_in_until(v, |u, _| {
                a.push(u);
                true
            });
            let mut b = Vec::new();
            g.for_each_in_until(v, |u, _| {
                b.push(u);
                true
            });
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in-edges of {v}");
        }
        assert!(GraphRef::is_symmetric(&mg));
        assert!(InEdges::has_in_view(&mg));
        assert_eq!(GraphRef::out_degrees_sum(&mg, &[0, 2]), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn packed_never_has_in_view() {
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        let p = PackedGraph::from_csr(&g);
        assert!(!InEdges::has_in_view(&p));
        assert!(!GraphRef::is_symmetric(&p));
    }

    #[test]
    fn in_until_early_exit_stops_decode() {
        let g = from_pairs_symmetric(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let c = CompressedGraph::from_csr(&g);
        let mut seen = 0;
        c.for_each_in_until(4, |_, _| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn default_out_degrees_sum_matches_manual() {
        let g = from_pairs(5, &[(0, 1), (0, 2), (3, 4)]);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(GraphRef::out_degrees_sum(&c, &[0, 3]), 3);
        assert_eq!(GraphRef::out_degrees_sum(&g, &[0, 3]), 3);
    }
}
