//! `edgeMapReduce` and `edgeMapSum` (Section 2.1).
//!
//! `edgeMapReduce(G, S, M, R, U)` maps `M` over the live edges out of `S`,
//! reduces the mapped values per target vertex with `R`, and applies
//! `U(v, reduced)` to produce a `vertexSubsetData`. k-core uses the `M = 1`,
//! `R = +` specialisation `edgeMapSum` to count, per neighbor, how many of
//! its edges were removed this round.
//!
//! Two implementations:
//! * the default gathers live `(target, value)` pairs and aggregates them
//!   with the semisort (the paper's theoretically-efficient route);
//! * [`edge_map_sum_with_scratch`] keeps a reusable atomic counter array and
//!   clears only touched entries, trading O(n) one-time space for fewer
//!   passes (the A3 ablation compares the two).

use crate::subset::VertexSubsetData;
use crate::traits::OutEdges;
use julienne_graph::VertexId;
use julienne_primitives::filter::filter_map;
use julienne_primitives::scan::prefix_sums;
use julienne_primitives::semisort::semisort_by_key;
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Gathers `(target, M(u,v,w))` for every edge out of `frontier_ids` whose
/// target satisfies `cond`.
fn gather_pairs<G, T, M, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    map: M,
    cond: Fc,
) -> Vec<(VertexId, T)>
where
    G: OutEdges,
    T: Copy + Send + Sync,
    M: Fn(VertexId, VertexId, G::W) -> T + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let mut offsets: Vec<usize> = frontier_ids.par_iter().map(|&u| g.out_degree(u)).collect();
    let total = prefix_sums(&mut offsets);
    let mut out: Vec<Option<(VertexId, T)>> = vec![None; total];
    {
        let writer = DisjointWriter::new(&mut out);
        frontier_ids
            .par_iter()
            .zip(offsets.par_iter())
            .for_each(|(&u, &base)| {
                let mut k = base;
                g.for_each_out(u, |v, w| {
                    if cond(v) {
                        // SAFETY: slot k lies in u's private range.
                        unsafe { writer.write(k, Some((v, map(u, v, w)))) };
                    }
                    k += 1;
                });
            });
    }
    filter_map(&out, |slot| *slot)
}

/// `edgeMapReduce`: per-target reduction of mapped edge values.
///
/// `update(v, reduced)` returns `Some(out)` to include `v` in the result.
pub fn edge_map_reduce<G, T, O, M, R, U, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    map: M,
    reduce: R,
    update: U,
    cond: Fc,
) -> VertexSubsetData<O>
where
    G: OutEdges,
    T: Copy + Send + Sync,
    O: Copy + Send + Sync,
    M: Fn(VertexId, VertexId, G::W) -> T + Send + Sync,
    R: Fn(T, T) -> T + Send + Sync,
    U: Fn(VertexId, T) -> Option<O> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let mut pairs = gather_pairs(g, frontier_ids, map, cond);
    if pairs.is_empty() {
        return VertexSubsetData::empty(n);
    }
    let groups = semisort_by_key(&mut pairs, (n - 1) as u32, |p| p.0);
    let entries = filter_map(&groups, |grp| {
        let seg = &pairs[grp.start..grp.start + grp.len];
        let mut acc = seg[0].1;
        for p in &seg[1..] {
            acc = reduce(acc, p.1);
        }
        update(grp.key, acc).map(|o| (grp.key, o))
    });
    VertexSubsetData::from_entries(n, entries)
}

/// `edgeMapSum`: counts live edges per target and applies `update(v, count)`.
pub fn edge_map_sum<G, O, U, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: U,
    cond: Fc,
) -> VertexSubsetData<O>
where
    G: OutEdges,
    O: Copy + Send + Sync,
    U: Fn(VertexId, u32) -> Option<O> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    edge_map_reduce(g, frontier_ids, |_, _, _| 1u32, |a, b| a + b, update, cond)
}

/// Reusable counter array for [`edge_map_sum_with_scratch`].
pub struct SumScratch {
    counts: Vec<AtomicU32>,
}

impl SumScratch {
    /// Allocates counters for an `n`-vertex graph (all zero).
    pub fn new(n: usize) -> Self {
        SumScratch {
            counts: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }
}

/// `edgeMapSum` via a persistent atomic counter array: every live edge
/// increments its target's counter; the first incrementer claims the target
/// for the output. Counters of touched vertices are reset before returning,
/// keeping per-call work proportional to the traversed edges.
pub fn edge_map_sum_with_scratch<G, O, U, Fc>(
    g: &G,
    frontier_ids: &[VertexId],
    update: U,
    cond: Fc,
    scratch: &SumScratch,
) -> VertexSubsetData<O>
where
    G: OutEdges,
    O: Copy + Send + Sync,
    U: Fn(VertexId, u32) -> Option<O> + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    debug_assert_eq!(scratch.counts.len(), n);
    const SENTINEL: VertexId = VertexId::MAX;

    let mut offsets: Vec<usize> = frontier_ids.par_iter().map(|&u| g.out_degree(u)).collect();
    let total = prefix_sums(&mut offsets);
    let mut touched: Vec<VertexId> = vec![SENTINEL; total];
    {
        let writer = DisjointWriter::new(&mut touched);
        frontier_ids
            .par_iter()
            .zip(offsets.par_iter())
            .for_each(|(&u, &base)| {
                let mut k = base;
                g.for_each_out(u, |v, _| {
                    if cond(v) {
                        let prev = scratch.counts[v as usize].fetch_add(1, Ordering::Relaxed);
                        if prev == 0 {
                            // First toucher claims v for the output list.
                            // SAFETY: slot k lies in u's private range.
                            unsafe { writer.write(k, v) };
                        }
                    }
                    k += 1;
                });
            });
    }
    let owners = filter_map(&touched, |&v| if v == SENTINEL { None } else { Some(v) });
    let entries = filter_map(&owners, |&v| {
        let count = scratch.counts[v as usize].swap(0, Ordering::Relaxed);
        debug_assert!(count > 0);
        update(v, count).map(|o| (v, o))
    });
    VertexSubsetData::from_entries(n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs;

    fn diamond() -> julienne_graph::Graph {
        // 0 and 1 both point at 2 and 3; 2 points at 3.
        from_pairs(4, &[(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn sum_counts_in_edges_from_frontier() {
        let g = diamond();
        let out = edge_map_sum(&g, &[0, 1], |v, c| Some((v, c)), |_| true);
        let mut entries: Vec<_> = out.entries().to_vec();
        entries.sort_by_key(|&(v, _)| v);
        assert_eq!(entries, vec![(2, (2, 2)), (3, (3, 2))]);
    }

    #[test]
    fn cond_excludes_targets() {
        let g = diamond();
        let out = edge_map_sum(&g, &[0, 1], |_, c| Some(c), |v| v != 3);
        assert_eq!(out.entries(), &[(2, 2)]);
    }

    #[test]
    fn update_none_drops() {
        let g = diamond();
        let out = edge_map_sum(
            &g,
            &[0, 1, 2],
            |_, c| if c >= 3 { Some(c) } else { None },
            |_| true,
        );
        // target 3 has in-edges from 0,1,2 = 3; target 2 only 2.
        assert_eq!(out.entries(), &[(3, 3)]);
    }

    #[test]
    fn scratch_variant_agrees_with_sort_variant() {
        use julienne_graph::generators::erdos_renyi;
        let g = erdos_renyi(500, 4000, 3, false);
        let frontier: Vec<VertexId> = (0..250).collect();
        let scratch = SumScratch::new(500);
        let a = edge_map_sum(&g, &frontier, |_, c| Some(c), |v| v % 3 != 0);
        let b = edge_map_sum_with_scratch(&g, &frontier, |_, c| Some(c), |v| v % 3 != 0, &scratch);
        let mut ea: Vec<_> = a.entries().to_vec();
        let mut eb: Vec<_> = b.entries().to_vec();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
        // Scratch must be fully cleared for reuse.
        assert!(scratch
            .counts
            .iter()
            .all(|c| c.load(Ordering::Relaxed) == 0));
    }

    #[test]
    fn reduce_with_max_monoid() {
        let g = diamond();
        // value = source id; reduce = max → per-target max source.
        let out = edge_map_reduce(
            &g,
            &[0, 1, 2],
            |u, _, _| u,
            |a, b| a.max(b),
            |_, m| Some(m),
            |_| true,
        );
        let mut entries: Vec<_> = out.entries().to_vec();
        entries.sort_by_key(|&(v, _)| v);
        assert_eq!(entries, vec![(2, 1), (3, 2)]);
    }

    #[test]
    fn empty_frontier() {
        let g = diamond();
        let out = edge_map_sum(&g, &[], |_, c| Some(c), |_| true);
        assert!(out.is_empty());
    }
}
