//! `vertexMap` and `vertexFilter` (Section 2.1).

use crate::subset::{VertexSubset, VertexSubsetData};
use julienne_graph::VertexId;
use julienne_primitives::filter::filter_map;
use rayon::prelude::*;

/// Applies `f` to every vertex of `subset` in parallel and returns the
/// subset of vertices for which `f` returned `true`. `f` may side-effect
/// per-vertex state.
pub fn vertex_map<F>(subset: &VertexSubset, f: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Send + Sync,
{
    match subset.as_sparse() {
        Some(ids) => {
            let kept = filter_map(ids, |&v| if f(v) { Some(v) } else { None });
            VertexSubset::from_vertices(subset.universe(), kept)
        }
        None => {
            let bs = subset.as_dense().unwrap();
            let n = subset.universe();
            crate::subset::subset_from_pred(n, |i| bs.get(i) && f(i as VertexId))
        }
    }
}

/// Applies `f` for its side effects only, ignoring the result subset.
pub fn vertex_for_each<F>(subset: &VertexSubset, f: F)
where
    F: Fn(VertexId) + Send + Sync,
{
    match subset.as_sparse() {
        Some(ids) => ids.par_iter().for_each(|&v| f(v)),
        None => {
            let bs = subset.as_dense().unwrap();
            (0..subset.universe()).into_par_iter().for_each(|i| {
                if bs.get(i) {
                    f(i as VertexId);
                }
            });
        }
    }
}

/// `vertexFilter`: keeps vertices satisfying the pure predicate `p`.
/// (Identical machinery to [`vertex_map`], named separately to mirror the
/// paper's API, where `vertexFilter` must be side-effect free.)
pub fn vertex_filter<F>(subset: &VertexSubset, p: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Send + Sync,
{
    vertex_map(subset, p)
}

/// `vertexFilter` over a value-carrying subset, keeping the values.
pub fn vertex_filter_data<T, F>(subset: &VertexSubsetData<T>, p: F) -> VertexSubsetData<T>
where
    T: Copy + Send + Sync,
    F: Fn(VertexId, T) -> bool + Send + Sync,
{
    let kept = filter_map(
        subset.entries(),
        |&(v, t)| {
            if p(v, t) {
                Some((v, t))
            } else {
                None
            }
        },
    );
    VertexSubsetData::from_entries(subset.universe(), kept)
}

/// `vertexMap` over a value-carrying subset: `f(v, value)` returns
/// `Some(out)` to keep `v` with a new value, `None` to drop it.
pub fn vertex_map_data<T, U, F>(subset: &VertexSubsetData<T>, f: F) -> VertexSubsetData<U>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(VertexId, T) -> Option<U> + Send + Sync,
{
    let out = filter_map(subset.entries(), |&(v, t)| f(v, t).map(|u| (v, u)));
    VertexSubsetData::from_entries(subset.universe(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn vertex_map_filters_and_side_effects() {
        let touched: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        let s = VertexSubset::from_vertices(10, vec![1, 2, 3, 4]);
        let out = vertex_map(&s, |v| {
            touched[v as usize].fetch_add(1, Ordering::Relaxed);
            v % 2 == 0
        });
        let mut ids = out.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 4]);
        for v in [1, 2, 3, 4] {
            assert_eq!(touched[v].load(Ordering::Relaxed), 1);
        }
        assert_eq!(touched[0].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn vertex_map_on_dense_subset() {
        let mut s = VertexSubset::from_vertices(100, (0..50).collect());
        s.make_dense();
        let out = vertex_map(&s, |v| v < 10);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn vertex_map_data_transforms() {
        let d = VertexSubsetData::from_entries(10, vec![(1, 10u32), (2, 20), (3, 30)]);
        let out = vertex_map_data(&d, |v, x| if v != 2 { Some(x * 2) } else { None });
        assert_eq!(out.entries(), &[(1, 20), (3, 60)]);
    }

    #[test]
    fn vertex_filter_data_keeps_values() {
        let d = VertexSubsetData::from_entries(10, vec![(1, 5u32), (6, 1)]);
        let out = vertex_filter_data(&d, |_, x| x >= 5);
        assert_eq!(out.entries(), &[(1, 5)]);
    }

    #[test]
    fn for_each_visits_all() {
        let count = AtomicU32::new(0);
        let s = VertexSubset::from_vertices(10, vec![0, 5, 9]);
        vertex_for_each(&s, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
