//! Ligra-style frontier engine (Section 2.1).
//!
//! Reimplements the primitives of Shun & Blelloch's Ligra that Julienne
//! extends:
//!
//! * [`subset`] — `vertexSubset` with sparse/dense dual representation and
//!   the value-carrying `vertexSubsetData<T>`,
//! * [`vertex_ops`] — `vertexMap` / `vertexFilter`,
//! * [`traits`] — the graph-trait hierarchy ([`OutEdges`] / [`InEdges`] /
//!   [`GraphRef`]) shared by plain CSR, byte-compressed, and packable
//!   graphs,
//! * [`edge_map`] — direction-optimized `edgeMap` (sparse push / dense pull
//!   with the |frontier| + outDegrees > m/20 switching rule),
//! * [`edge_map_reduce`] — `edgeMapReduce` / `edgeMapSum` (per-neighbor
//!   aggregation, used by k-core),
//! * [`edge_map_filter`] — `edgeMapFilter` with the `Pack` option (used by
//!   approximate set cover).

pub mod edge_map;
pub mod edge_map_filter;
pub mod edge_map_reduce;
pub mod subset;
pub mod traits;
pub mod vertex_ops;

pub use edge_map::{EdgeMap, EdgeMapOptions, Mode};
pub use edge_map_filter::{edge_map_filter_count, edge_map_filter_pack, edge_map_packed};
pub use edge_map_reduce::{edge_map_sum, edge_map_sum_with_scratch, SumScratch};
pub use subset::{VertexSubset, VertexSubsetData};
pub use traits::{GraphRef, InEdges, OutEdges};
pub use vertex_ops::{vertex_filter, vertex_map, vertex_map_data};
