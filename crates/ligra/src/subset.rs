//! `vertexSubset` and `vertexSubsetData<T>` (Section 2.1).
//!
//! A subset of the vertices, stored sparse (an id array) or dense (a
//! bitset). Ligra's engine converts between the two depending on traversal
//! direction; conversion is O(n)/O(|S|) and parallel.

use julienne_graph::VertexId;
use julienne_primitives::bitset::{BitSet, OnesIter};
use julienne_primitives::filter::pack_index;
use std::sync::OnceLock;

/// Sparse subsets at or below this size answer [`VertexSubset::contains`]
/// with a linear scan instead of building the memoized bitset.
const CONTAINS_SCAN_MAX: usize = 16;

/// The two physical representations of a vertex subset.
#[derive(Clone, Debug)]
pub enum Repr {
    /// Vertex ids, no duplicates, order unspecified.
    Sparse(Vec<VertexId>),
    /// One bit per vertex.
    Dense(BitSet),
}

/// A subset of `0..n` vertices.
///
/// Membership is fixed at construction; [`VertexSubset::make_sparse`] /
/// [`VertexSubset::make_dense`] change only the physical representation.
/// That invariant lets [`VertexSubset::contains`] memoize a bitset for
/// large sparse subsets without ever invalidating it.
#[derive(Debug)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
    /// Lazily built membership bitset for large sparse subsets (see
    /// [`VertexSubset::contains`]). Never set while dense.
    memo: OnceLock<BitSet>,
}

impl Clone for VertexSubset {
    fn clone(&self) -> Self {
        // Drop the memo rather than deep-copying it; the clone rebuilds it
        // on first `contains` if it ever needs one.
        VertexSubset {
            n: self.n,
            repr: self.repr.clone(),
            memo: OnceLock::new(),
        }
    }
}

impl VertexSubset {
    fn from_repr(n: usize, repr: Repr) -> Self {
        VertexSubset {
            n,
            repr,
            memo: OnceLock::new(),
        }
    }

    /// The empty subset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self::from_repr(n, Repr::Sparse(Vec::new()))
    }

    /// The singleton `{v}`.
    pub fn single(n: usize, v: VertexId) -> Self {
        debug_assert!((v as usize) < n);
        Self::from_repr(n, Repr::Sparse(vec![v]))
    }

    /// The full vertex set `0..n`.
    pub fn all(n: usize) -> Self {
        Self::from_repr(n, Repr::Sparse((0..n as VertexId).collect()))
    }

    /// A sparse subset from an id list (caller guarantees no duplicates).
    pub fn from_vertices(n: usize, vs: Vec<VertexId>) -> Self {
        debug_assert!(vs.iter().all(|&v| (v as usize) < n));
        Self::from_repr(n, Repr::Sparse(vs))
    }

    /// A dense subset from a bitset of length `n`.
    pub fn from_bitset(bs: BitSet) -> Self {
        let n = bs.len();
        Self::from_repr(n, Repr::Dense(bs))
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense(b) => b.count_ones(),
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.is_empty(),
            Repr::Dense(b) => b.count_ones() == 0,
        }
    }

    /// Whether the physical representation is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Membership test.
    ///
    /// Cost contract: O(1) when dense; when sparse, a linear scan for
    /// subsets of at most `CONTAINS_SCAN_MAX` (16) ids, otherwise O(1) after a
    /// one-time O(n) bitset memoization on the first query. The memo is
    /// sound because membership never changes after construction (only the
    /// representation does), and it is rebuilt lazily after `clone`.
    /// Per-edge callers therefore pay amortized O(1), not O(|S|) per probe.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => {
                if ids.len() <= CONTAINS_SCAN_MAX {
                    ids.contains(&v)
                } else {
                    self.memo
                        .get_or_init(|| BitSet::from_indices(self.n, ids))
                        .get(v as usize)
                }
            }
            Repr::Dense(b) => b.get(v as usize),
        }
    }

    /// Borrows the id list if sparse.
    pub fn as_sparse(&self) -> Option<&[VertexId]> {
        match &self.repr {
            Repr::Sparse(v) => Some(v),
            Repr::Dense(_) => None,
        }
    }

    /// Borrows the bitset if dense.
    pub fn as_dense(&self) -> Option<&BitSet> {
        match &self.repr {
            Repr::Dense(b) => Some(b),
            Repr::Sparse(_) => None,
        }
    }

    /// Materialises the id list (cheap if already sparse).
    pub fn to_vertices(&self) -> Vec<VertexId> {
        match &self.repr {
            Repr::Sparse(v) => v.clone(),
            Repr::Dense(b) => b.to_indices(),
        }
    }

    /// Materialises a bitset (cheap if already dense).
    pub fn to_bitset(&self) -> BitSet {
        match &self.repr {
            Repr::Sparse(v) => BitSet::from_indices(self.n, v),
            Repr::Dense(b) => b.clone(),
        }
    }

    /// Converts the representation in place to sparse.
    pub fn make_sparse(&mut self) {
        if let Repr::Dense(b) = &self.repr {
            self.repr = Repr::Sparse(b.to_indices());
        }
    }

    /// Converts the representation in place to dense, reusing the
    /// membership memo from [`VertexSubset::contains`] if one was built.
    pub fn make_dense(&mut self) {
        if let Repr::Sparse(v) = &self.repr {
            let bs = match self.memo.take() {
                Some(b) => b,
                None => BitSet::from_indices(self.n, v),
            };
            self.repr = Repr::Dense(bs);
        }
    }

    /// Iterates the member vertices without materialising an id list
    /// (unlike [`VertexSubset::to_vertices`], which allocates even when the
    /// subset is already sparse). Sparse order is unspecified; dense order
    /// is increasing.
    pub fn iter(&self) -> SubsetIter<'_> {
        match &self.repr {
            Repr::Sparse(v) => SubsetIter::Sparse(v.iter()),
            Repr::Dense(b) => SubsetIter::Dense(b.iter_ones()),
        }
    }
}

impl<'a> IntoIterator for &'a VertexSubset {
    type Item = VertexId;
    type IntoIter = SubsetIter<'a>;

    fn into_iter(self) -> SubsetIter<'a> {
        self.iter()
    }
}

/// Allocation-free iterator over a [`VertexSubset`]'s members.
pub enum SubsetIter<'a> {
    /// Walking a sparse id list.
    Sparse(std::slice::Iter<'a, VertexId>),
    /// Walking a dense bitset's set bits.
    Dense(OnesIter<'a>),
}

impl Iterator for SubsetIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            SubsetIter::Sparse(it) => it.next().copied(),
            SubsetIter::Dense(it) => it.next().map(|i| i as VertexId),
        }
    }
}

/// A sparse subset whose members carry a value of type `T` — the paper's
/// `vertexSubsetData<T>` ("we add a function call operator to vertexSubset
/// which returns a (vertex, data) pair").
#[derive(Clone, Debug)]
pub struct VertexSubsetData<T> {
    n: usize,
    entries: Vec<(VertexId, T)>,
}

impl<T: Send + Sync> VertexSubsetData<T> {
    /// The empty data-subset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubsetData {
            n,
            entries: Vec::new(),
        }
    }

    /// Builds from `(vertex, value)` pairs (no duplicate vertices).
    pub fn from_entries(n: usize, entries: Vec<(VertexId, T)>) -> Self {
        debug_assert!(entries.iter().all(|&(v, _)| (v as usize) < n));
        VertexSubsetData { n, entries }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(vertex, value)` pairs.
    pub fn entries(&self) -> &[(VertexId, T)] {
        &self.entries
    }

    /// Consumes into the pair list.
    pub fn into_entries(self) -> Vec<(VertexId, T)> {
        self.entries
    }

    /// Drops the values, yielding a plain subset (a `vertexSubsetData` "can
    /// be supplied to any function that accepts a vertexSubset").
    pub fn to_subset(&self) -> VertexSubset {
        VertexSubset::from_vertices(self.n, self.entries.iter().map(|&(v, _)| v).collect())
    }
}

impl VertexSubset {
    /// Union of two subsets over the same universe.
    pub fn union(&self, other: &VertexSubset) -> VertexSubset {
        assert_eq!(self.n, other.n);
        let (a, b) = (self.to_bitset(), other.to_bitset());
        subset_from_pred(self.n, |i| a.get(i) || b.get(i))
    }

    /// Intersection of two subsets over the same universe.
    pub fn intersection(&self, other: &VertexSubset) -> VertexSubset {
        assert_eq!(self.n, other.n);
        let (a, b) = (self.to_bitset(), other.to_bitset());
        subset_from_pred(self.n, |i| a.get(i) && b.get(i))
    }

    /// Members of `self` not in `other`.
    pub fn difference(&self, other: &VertexSubset) -> VertexSubset {
        assert_eq!(self.n, other.n);
        let (a, b) = (self.to_bitset(), other.to_bitset());
        subset_from_pred(self.n, |i| a.get(i) && !b.get(i))
    }

    /// The complement within the universe.
    pub fn complement(&self) -> VertexSubset {
        let a = self.to_bitset();
        subset_from_pred(self.n, |i| !a.get(i))
    }
}

/// Packs the indices of `0..n` satisfying `pred` into a sparse subset.
pub fn subset_from_pred<F>(n: usize, pred: F) -> VertexSubset
where
    F: Fn(usize) -> bool + Send + Sync,
{
    VertexSubset::from_vertices(n, pack_index(n, pred))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_dense_roundtrip() {
        let s = VertexSubset::from_vertices(100, vec![3, 50, 99]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(50));
        assert!(!s.contains(51));
        let mut d = s.clone();
        d.make_dense();
        assert!(!d.is_sparse());
        assert_eq!(d.len(), 3);
        assert!(d.contains(99));
        let mut back = d.clone();
        back.make_sparse();
        let mut ids = back.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 50, 99]);
    }

    #[test]
    fn empty_single_all() {
        assert!(VertexSubset::empty(10).is_empty());
        let s = VertexSubset::single(10, 7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
        assert_eq!(VertexSubset::all(5).len(), 5);
    }

    #[test]
    fn data_subset_projects() {
        let d = VertexSubsetData::from_entries(10, vec![(1, "a"), (4, "b")]);
        assert_eq!(d.len(), 2);
        let s = d.to_subset();
        assert!(s.contains(1) && s.contains(4) && !s.contains(2));
        assert_eq!(d.into_entries(), vec![(1, "a"), (4, "b")]);
    }

    #[test]
    fn iter_matches_to_vertices_in_both_reprs() {
        let sparse = VertexSubset::from_vertices(100, vec![9, 3, 77]);
        let got: Vec<u32> = sparse.iter().collect();
        assert_eq!(got, sparse.to_vertices());
        let mut dense = sparse.clone();
        dense.make_dense();
        let got: Vec<u32> = dense.iter().collect();
        assert_eq!(got, vec![3, 9, 77]);
        assert_eq!(VertexSubset::empty(5).iter().count(), 0);
        // for-loop sugar via IntoIterator
        let mut sum = 0u32;
        for v in &sparse {
            sum += v;
        }
        assert_eq!(sum, 9 + 3 + 77);
    }

    #[test]
    fn contains_memoizes_large_sparse_sets() {
        // Above CONTAINS_SCAN_MAX ids: first probe builds the bitset memo,
        // later probes (and make_dense) reuse it.
        let ids: Vec<u32> = (0..40).map(|i| i * 3).collect();
        let s = VertexSubset::from_vertices(200, ids.clone());
        assert!(s.contains(117));
        assert!(!s.contains(118));
        for &v in &ids {
            assert!(s.contains(v));
        }
        // Clone drops the memo but keeps membership.
        let c = s.clone();
        assert!(c.contains(117) && !c.contains(1));
        let mut d = s;
        d.make_dense();
        assert_eq!(d.len(), 40);
        assert!(d.contains(117) && !d.contains(118));
    }

    #[test]
    fn subset_from_pred_packs() {
        let s = subset_from_pred(20, |i| i % 5 == 0);
        let mut ids = s.to_vertices();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 5, 10, 15]);
    }

    #[test]
    fn set_operations() {
        let a = VertexSubset::from_vertices(10, vec![1, 2, 3, 4]);
        let mut b = VertexSubset::from_vertices(10, vec![3, 4, 5]);
        b.make_dense(); // exercise mixed representations
        assert_eq!(a.union(&b).to_vertices(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_vertices(), vec![3, 4]);
        assert_eq!(a.difference(&b).to_vertices(), vec![1, 2]);
        assert_eq!(b.difference(&a).to_vertices(), vec![5]);
        let comp = a.complement();
        assert_eq!(comp.len(), 6);
        assert!(comp.contains(0) && comp.contains(9) && !comp.contains(1));
        // Universe identities.
        assert_eq!(a.union(&a.complement()).len(), 10);
        assert!(a.intersection(&a.complement()).is_empty());
    }

    #[test]
    fn bitset_constructor() {
        let mut bs = BitSet::new(8);
        bs.set(2);
        bs.set(6);
        let s = VertexSubset::from_bitset(bs);
        assert_eq!(s.universe(), 8);
        assert_eq!(s.len(), 2);
        assert!(s.as_dense().is_some());
    }
}
