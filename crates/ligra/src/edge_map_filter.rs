//! `edgeMapFilter` with the optional `Pack` (Section 2.1, used by set
//! cover), plus a side-effect-only `edgeMap` over packable graphs.

use crate::subset::{VertexSubset, VertexSubsetData};
use crate::traits::OutEdges;
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use rayon::prelude::*;

/// `edgeMapFilter(G, U, P)`: counts, for each `u ∈ U`, the neighbors
/// satisfying `P(u, v)`, without mutating the graph. Works on any
/// [`OutEdges`] backend; on [`PackedGraph`] only live edges are counted.
pub fn edge_map_filter_count<G, P>(
    g: &G,
    frontier_ids: &[VertexId],
    pred: P,
) -> VertexSubsetData<u32>
where
    G: OutEdges,
    P: Fn(VertexId, VertexId) -> bool + Send + Sync,
{
    let counts: Vec<u32> = frontier_ids
        .par_iter()
        .map(|&u| {
            let mut c = 0u32;
            g.for_each_out(u, |v, _| {
                if pred(u, v) {
                    c += 1;
                }
            });
            c
        })
        .collect();
    VertexSubsetData::from_entries(
        g.num_vertices(),
        frontier_ids.iter().copied().zip(counts).collect(),
    )
}

/// `edgeMapFilter(G, U, P, Pack)`: removes the edges of each `u ∈ U` whose
/// targets fail `P`, mutating `G`, and returns each vertex with its new
/// degree.
pub fn edge_map_filter_pack<P>(
    g: &mut PackedGraph,
    frontier_ids: &[VertexId],
    pred: P,
) -> VertexSubsetData<u32>
where
    P: Fn(VertexId, VertexId) -> bool + Send + Sync,
{
    let new_degrees = g.pack(frontier_ids, pred);
    VertexSubsetData::from_entries(
        g.num_vertices(),
        frontier_ids.iter().copied().zip(new_degrees).collect(),
    )
}

/// Side-effect `edgeMap` over any [`OutEdges`] backend: applies
/// `update(u, v)` to each live edge of the frontier whose target satisfies
/// `cond`. The result subset is not needed by set cover, so none is built.
pub fn edge_map_packed<G, Fu, Fc>(g: &G, frontier_ids: &[VertexId], update: Fu, cond: Fc)
where
    G: OutEdges,
    Fu: Fn(VertexId, VertexId) + Send + Sync,
    Fc: Fn(VertexId) -> bool + Send + Sync,
{
    frontier_ids.par_iter().for_each(|&u| {
        g.for_each_out(u, |v, _| {
            if cond(v) {
                update(u, v);
            }
        });
    });
}

/// Projection helper: the id list of a data subset (order preserved).
pub fn ids_of<T: Send + Sync>(d: &VertexSubsetData<T>) -> Vec<VertexId> {
    d.entries().iter().map(|&(v, _)| v).collect()
}

/// Projection helper: a plain subset view of a data subset.
pub fn subset_of<T: Send + Sync>(d: &VertexSubsetData<T>) -> VertexSubset {
    d.to_subset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn bipartite() -> PackedGraph {
        // sets {0,1}, elements {2,3,4}: 0-{2,3,4}, 1-{3,4}
        let pairs = [(0, 2), (0, 3), (0, 4), (1, 3), (1, 4)];
        PackedGraph::from_csr(&from_pairs_symmetric(5, &pairs))
    }

    #[test]
    fn count_then_pack() {
        let mut g = bipartite();
        // Pretend elements 3 is covered.
        let covered = |_s: VertexId, e: VertexId| e != 3;
        let counts = edge_map_filter_count(&g, &[0, 1], covered);
        assert_eq!(counts.entries(), &[(0, 2), (1, 1)]);
        // Graph untouched by count.
        assert_eq!(g.degree(0), 3);
        let packed = edge_map_filter_pack(&mut g, &[0, 1], covered);
        assert_eq!(packed.entries(), &[(0, 2), (1, 1)]);
        assert_eq!(g.degree(0), 2);
        assert!(!g.neighbors(0).contains(&3));
        assert_eq!(g.neighbors(1), &[4]);
    }

    #[test]
    fn packed_edge_map_side_effects() {
        let g = bipartite();
        let visits: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
        edge_map_packed(
            &g,
            &[0, 1],
            |_, v| {
                visits[v as usize].fetch_add(1, Ordering::Relaxed);
            },
            |v| v != 2,
        );
        assert_eq!(visits[2].load(Ordering::Relaxed), 0); // cond excluded
        assert_eq!(visits[3].load(Ordering::Relaxed), 2); // from 0 and 1
        assert_eq!(visits[4].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn projections() {
        let d = VertexSubsetData::from_entries(5, vec![(3, 9u32), (1, 2)]);
        assert_eq!(ids_of(&d), vec![3, 1]);
        assert!(subset_of(&d).contains(1));
    }
}
