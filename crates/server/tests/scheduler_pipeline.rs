//! Wire-level tests for the serve pipeline's new behaviours: batched
//! coalescing (`"batched": true` with payloads byte-identical to solo
//! serving), the result cache (`"cached": true` round-trip), NaN
//! rejection at admission, per-member cancellation inside a fused batch,
//! and the priority dispatch policy.

use julienne::prelude::{Backend, Engine};
use julienne_algorithms::registry::GraphStore;
use julienne_graph::generators::rmat;
use julienne_graph::generators::RmatParams;
use julienne_graph::transform::assign_weights;
use julienne_server::json::Json;
use julienne_server::{
    query_request, Client, SchedPolicy, SchedulerConfig, Server, ShutdownHandle,
};
use std::collections::HashMap;
use std::thread;
use std::time::Duration;

fn store(backend: Backend) -> GraphStore {
    let g = assign_weights(&rmat(8, 8, RmatParams::default(), 5, true), 1, 64, 9);
    GraphStore::from_weighted(g, backend)
}

fn start_with(
    backend: Backend,
    config: SchedulerConfig,
) -> (String, thread::JoinHandle<()>, ShutdownHandle) {
    let server =
        Server::bind_with("127.0.0.1:0", &Engine::default(), store(backend), config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.serve().unwrap());
    (addr, join, handle)
}

/// A window long enough that a pipelined burst always lands inside it,
/// even on a loaded single-core CI machine.
fn batching() -> SchedulerConfig {
    SchedulerConfig {
        batch_window: Duration::from_millis(250),
        cache_bytes: 0,
        policy: SchedPolicy::Fifo,
    }
}

#[test]
fn homogeneous_sssp_burst_batches_with_payloads_identical_to_solo() {
    for backend in [Backend::Csr, Backend::Compressed] {
        // Solo server: batching off — the reference wire payloads.
        let (solo_addr, solo_join, solo_stop) = start_with(backend, SchedulerConfig::default());
        let mut solo = Client::connect(&solo_addr).unwrap();
        let mut expect: HashMap<String, String> = HashMap::new();
        for q in 0..8usize {
            let src = (q * 31) % 256;
            let resp = solo
                .roundtrip(&query_request(
                    &format!("q{q}"),
                    "sssp",
                    &[("algo", "wbfs"), ("src", &src.to_string())],
                    None,
                    false,
                ))
                .unwrap();
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
            assert!(
                resp.get("batched").is_none(),
                "unbatched server must not flag responses: {}",
                resp.to_json()
            );
            expect.insert(
                format!("q{q}"),
                resp.get("output").unwrap().as_str().unwrap().to_string(),
            );
        }
        solo_stop.stop();
        solo_join.join().unwrap();

        // Batched server: the same burst pipelined inside one window.
        let (addr, join, stop) = start_with(backend, batching());
        let mut client = Client::connect(&addr).unwrap();
        for q in 0..8usize {
            let src = (q * 31) % 256;
            client
                .send(&query_request(
                    &format!("q{q}"),
                    "sssp",
                    &[("algo", "wbfs"), ("src", &src.to_string())],
                    None,
                    false,
                ))
                .unwrap();
        }
        for _ in 0..8 {
            let resp = client.recv().unwrap();
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "{}",
                resp.to_json()
            );
            assert_eq!(
                resp.get("batched").and_then(Json::as_bool),
                Some(true),
                "burst member missed the batch window: {}",
                resp.to_json()
            );
            let id = resp.get("id").unwrap().as_str().unwrap();
            assert_eq!(
                resp.get("output").unwrap().as_str().unwrap(),
                expect[id],
                "fused payload diverged from solo serving ({id} on {backend:?})"
            );
        }
        stop.stop();
        join.join().unwrap();
    }
}

#[test]
fn whole_graph_queries_fan_out_one_run() {
    let (addr, join, stop) = start_with(Backend::Csr, batching());
    let mut client = Client::connect(&addr).unwrap();
    for q in 0..4usize {
        client
            .send(&query_request(
                &format!("k{q}"),
                "kcore",
                &[("top", "3")],
                None,
                false,
            ))
            .unwrap();
    }
    let mut outputs = Vec::new();
    for _ in 0..4 {
        let resp = client.recv().unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            resp.get("batched").and_then(Json::as_bool),
            Some(true),
            "{}",
            resp.to_json()
        );
        outputs.push(resp.get("output").unwrap().as_str().unwrap().to_string());
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "fan-out answers must be identical"
    );
    stop.stop();
    join.join().unwrap();
}

#[test]
fn cache_hit_answers_with_cached_flag_and_identical_output() {
    let config = SchedulerConfig {
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        policy: SchedPolicy::Fifo,
    };
    let (addr, join, stop) = start_with(Backend::Csr, config);
    let mut client = Client::connect(&addr).unwrap();

    let first = client
        .roundtrip(&query_request("c1", "kcore", &[("top", "3")], None, false))
        .unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    assert!(first.get("cached").is_none(), "{}", first.to_json());

    // Same algorithm, same canonical params (spelled differently) → hit.
    let second = client
        .roundtrip(&query_request("c2", "kcore", &[("top", "3")], None, false))
        .unwrap();
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "{}",
        second.to_json()
    );
    assert_eq!(
        first.get("output").unwrap().as_str().unwrap(),
        second.get("output").unwrap().as_str().unwrap()
    );

    // Different params miss.
    let third = client
        .roundtrip(&query_request("c3", "kcore", &[("top", "5")], None, false))
        .unwrap();
    assert!(third.get("cached").is_none(), "{}", third.to_json());

    stop.stop();
    join.join().unwrap();
}

#[test]
fn float_params_canonicalize_into_one_cache_entry() {
    let config = SchedulerConfig {
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        policy: SchedPolicy::Fifo,
    };
    let (addr, join, stop) = start_with(Backend::Csr, config);
    let mut client = Client::connect(&addr).unwrap();

    let first = client
        .roundtrip(&query_request(
            "p1",
            "pagerank",
            &[("damping", "0.85")],
            None,
            false,
        ))
        .unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));

    // 0.850 canonicalizes to the same key as 0.85.
    let second = client
        .roundtrip(&query_request(
            "p2",
            "pagerank",
            &[("damping", "0.850")],
            None,
            false,
        ))
        .unwrap();
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "{}",
        second.to_json()
    );
    assert_eq!(
        first.get("output").unwrap().as_str().unwrap(),
        second.get("output").unwrap().as_str().unwrap()
    );

    stop.stop();
    join.join().unwrap();
}

#[test]
fn nan_param_is_rejected_at_admission_with_input_code() {
    // NaN must be refused even on a default (no cache, no batching)
    // server: admission canonicalizes floats unconditionally.
    let (addr, join, stop) = start_with(Backend::Csr, SchedulerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .roundtrip(&query_request(
            "n1",
            "pagerank",
            &[("damping", "NaN")],
            None,
            false,
        ))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("input"),
        "{}",
        resp.to_json()
    );
    stop.stop();
    join.join().unwrap();
}

#[test]
fn pre_cancelled_member_detaches_without_poisoning_the_batch() {
    let (addr, join, stop) = start_with(Backend::Csr, batching());
    let mut client = Client::connect(&addr).unwrap();

    let ack = client
        .roundtrip(&Json::parse(r#"{"cancel":"doomed"}"#).unwrap())
        .unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

    // Both queries land in one fused batch; the pre-cancelled member is
    // answered `cancelled`, its sibling completes normally.
    client
        .send(&query_request(
            "doomed",
            "sssp",
            &[("algo", "wbfs"), ("src", "2")],
            None,
            false,
        ))
        .unwrap();
    client
        .send(&query_request(
            "fine",
            "sssp",
            &[("algo", "wbfs"), ("src", "3")],
            None,
            false,
        ))
        .unwrap();
    let mut by_id = HashMap::new();
    for _ in 0..2 {
        let resp = client.recv().unwrap();
        by_id.insert(resp.get("id").unwrap().as_str().unwrap().to_string(), resp);
    }
    let doomed = &by_id["doomed"];
    assert_eq!(doomed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doomed.get("error").unwrap().get("code").unwrap().as_str(),
        Some("cancelled"),
        "{}",
        doomed.to_json()
    );
    let fine = &by_id["fine"];
    assert_eq!(
        fine.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        fine.to_json()
    );

    stop.stop();
    join.join().unwrap();
}

#[test]
fn priority_policy_serves_the_standard_contract() {
    let config = SchedulerConfig {
        batch_window: Duration::ZERO,
        cache_bytes: 0,
        policy: SchedPolicy::Priority,
    };
    let (addr, join, stop) = start_with(Backend::Csr, config);
    let mut client = Client::connect(&addr).unwrap();
    // A mixed burst across cost classes all completes correctly.
    for (id, algo, params) in [
        ("a", "triangles", Vec::<(&str, &str)>::new()),
        ("b", "kcore", vec![("top", "3")]),
        ("c", "components", vec![]),
    ] {
        client
            .send(&query_request(id, algo, &params, None, false))
            .unwrap();
    }
    for _ in 0..3 {
        let resp = client.recv().unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            resp.to_json()
        );
    }
    stop.stop();
    join.join().unwrap();
}
