//! Wire-level lifecycle tests: one loaded graph, ≥64 concurrent mixed
//! queries, answers bit-identical to the direct API on both backends, and
//! the cancel / deadline / shutdown paths of the protocol.

use julienne::prelude::{Backend, Engine, QueryCtx};
use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::assign_weights;
use julienne_server::json::Json;
use julienne_server::{query_request, Client, Server, ShutdownHandle};
use std::collections::HashMap;
use std::thread;

/// The served graph: weighted + symmetric so every algorithm in the mix
/// (k-core needs symmetry, Δ-stepping needs weights) runs on one store.
fn store(backend: Backend) -> GraphStore {
    let g = assign_weights(&rmat(8, 8, RmatParams::default(), 5, true), 1, 64, 9);
    GraphStore::from_weighted(g, backend)
}

fn start(backend: Backend) -> (String, thread::JoinHandle<()>, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", &Engine::default(), store(backend)).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.serve().unwrap());
    (addr, join, handle)
}

/// The mixed workload of the acceptance criterion: k-core, Δ-stepping,
/// weighted BFS, and set cover, all against the same session.
const MIX: &[(&str, &[(&str, &str)])] = &[
    ("kcore", &[("top", "3")]),
    ("sssp", &[("algo", "delta"), ("src", "1"), ("delta", "16")]),
    ("sssp", &[("algo", "wbfs"), ("src", "2")]),
    (
        "setcover",
        &[
            ("sets", "64"),
            ("elements", "2048"),
            ("mult", "2"),
            ("seed", "3"),
        ],
    ),
];

fn direct_answers(backend: Backend) -> Vec<String> {
    let direct = store(backend);
    MIX.iter()
        .map(|(algo, params)| {
            let pm =
                ParamMap::from_pairs(params.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            Registry::standard()
                .run(algo, &direct, &pm, &QueryCtx::default())
                .unwrap()
        })
        .collect()
}

#[test]
fn sixty_four_concurrent_mixed_queries_match_direct_api() {
    for backend in [Backend::Csr, Backend::Compressed] {
        let expect = direct_answers(backend);
        let (addr, join, handle) = start(backend);

        // 8 connections x 8 pipelined queries = 64 in flight at once.
        let mut conns = Vec::new();
        for c in 0..8usize {
            let addr = addr.clone();
            let expect = expect.clone();
            conns.push(thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for q in 0..8usize {
                    let (algo, params) = MIX[(c + q) % MIX.len()];
                    client
                        .send(&query_request(
                            &format!("q{c}-{q}"),
                            algo,
                            params,
                            None,
                            false,
                        ))
                        .unwrap();
                }
                // Responses come back in completion order; correlate by id.
                let mut got: HashMap<String, String> = HashMap::new();
                for _ in 0..8 {
                    let resp = client.recv().unwrap();
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "query failed: {}",
                        resp.to_json()
                    );
                    got.insert(
                        resp.get("id").unwrap().as_str().unwrap().to_string(),
                        resp.get("output").unwrap().as_str().unwrap().to_string(),
                    );
                }
                for q in 0..8usize {
                    let idx = (c + q) % MIX.len();
                    assert_eq!(
                        got[&format!("q{c}-{q}")],
                        expect[idx],
                        "served answer must be bit-identical to the direct API \
                         ({} on {backend:?})",
                        MIX[idx].0
                    );
                }
            }));
        }
        for conn in conns {
            conn.join().unwrap();
        }
        handle.stop();
        join.join().unwrap();
    }
}

#[test]
fn expired_deadline_is_a_deadline_error_and_session_survives() {
    let (addr, join, handle) = start(Backend::Csr);
    let mut client = Client::connect(&addr).unwrap();

    let resp = client
        .roundtrip(&query_request("late", "kcore", &[], Some(0), false))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("deadline")
    );

    // The session keeps answering after a query died on its deadline.
    let resp = client
        .roundtrip(&query_request("after", "kcore", &[], None, false))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    handle.stop();
    join.join().unwrap();
}

#[test]
fn cancelling_an_id_pre_cancels_the_query_that_reuses_it() {
    let (addr, join, handle) = start(Backend::Csr);
    let mut client = Client::connect(&addr).unwrap();

    // Cancel first: deterministic no matter how fast the query would run.
    let ack = client
        .roundtrip(&Json::parse(r#"{"cancel":"doomed"}"#).unwrap())
        .unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

    let resp = client
        .roundtrip(&query_request("doomed", "kcore", &[], None, false))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("cancelled")
    );

    // A fresh id on the same connection is unaffected.
    let resp = client
        .roundtrip(&query_request("fine", "sssp", &[("src", "0")], None, false))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    handle.stop();
    join.join().unwrap();
}

#[test]
fn cancel_works_across_connections() {
    let (addr, join, handle) = start(Backend::Csr);

    // Query ids are a server-wide namespace: a cancel sent on its own
    // short-lived connection (as `julienne query cancel=...` does) lands on
    // queries submitted from any other connection.
    let mut canceller = Client::connect(&addr).unwrap();
    let ack = canceller
        .roundtrip(&Json::parse(r#"{"cancel":"elsewhere"}"#).unwrap())
        .unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    drop(canceller);

    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .roundtrip(&query_request("elsewhere", "kcore", &[], None, false))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("cancelled")
    );

    handle.stop();
    join.join().unwrap();
}

#[test]
fn protocol_errors_carry_wire_codes() {
    let (addr, join, handle) = start(Backend::Csr);
    let mut client = Client::connect(&addr).unwrap();

    let cases: &[(&str, &str)] = &[
        (r#"{"id":"u1","algo":"frobnicate"}"#, "usage"),
        (
            r#"{"id":"u2","algo":"sssp","params":{"delta":"0"}}"#,
            "usage",
        ),
        (
            r#"{"id":"u3","algo":"sssp","params":{"src":"999999"}}"#,
            "input",
        ),
        (
            r#"{"id":"u4","algo":"kcore","params":{"bogus":"1"}}"#,
            "usage",
        ),
        (r#"{"id":"u5"}"#, "usage"),
        (r#"this is not json"#, "parse"),
    ];
    for (line, code) in cases {
        client.send_raw(line).unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some(*code),
            "{line} -> {}",
            resp.to_json()
        );
    }

    handle.stop();
    join.join().unwrap();
}

#[test]
fn stats_queries_embed_a_per_query_trace() {
    let (addr, join, handle) = start(Backend::Csr);
    let mut client = Client::connect(&addr).unwrap();

    let resp = client
        .roundtrip(&query_request("s1", "kcore", &[], None, true))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let output = resp.get("output").unwrap().as_str().unwrap();
    assert!(
        output.contains("\"algorithm\":\"kcore\""),
        "stats trace missing from: {output}"
    );

    handle.stop();
    join.join().unwrap();
}

#[test]
fn wire_shutdown_drains_the_server() {
    let (addr, join, _handle) = start(Backend::Csr);
    let mut client = Client::connect(&addr).unwrap();

    let resp = client
        .roundtrip(&Json::parse(r#"{"shutdown":true}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("shutdown").and_then(Json::as_bool), Some(true));

    // serve() returns: all connection and worker threads joined.
    join.join().unwrap();
}
