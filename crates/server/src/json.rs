//! A dependency-free JSON value: enough of RFC 8259 for the wire protocol.
//!
//! The build environment is offline, so the server carries its own
//! parser/serializer instead of pulling in `serde_json`. Numbers are kept
//! as `f64` (the protocol only uses ids, small counts, and millisecond
//! timeouts, all exact in a double); object keys keep insertion order so
//! responses serialize deterministically.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates (e.g. emoji) are out of scope for
                            // this protocol; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // continuation bytes are well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"id":"q1","algo":"sssp","params":{"src":"0","delta":"1024"},"timeout_ms":250,"stats":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(v.get("timeout_ms").unwrap().as_u64(), Some(250));
        assert_eq!(v.get("stats").unwrap().as_bool(), Some(true));
        assert_eq!(Json::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let original = Json::Obj(vec![(
            "output".into(),
            Json::Str("line1\nline2\t\"quoted\" \\slash \u{1} λ".into()),
        )]);
        let parsed = Json::parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        // The wire form must be single-line: embedded newlines are escaped.
        assert!(!original.to_json().contains('\n'));
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn malformed_input_is_rejected_not_panicked() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "nul", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""λ x""#).unwrap(), Json::Str("λ x".into()));
    }
}
