//! The serve-path pipeline: admission → batching → execution → cache.
//!
//! Every query request passes through three stages before an algorithm
//! runs:
//!
//! 1. **Admission** (connection thread). The request is validated, float
//!    parameters are canonicalized (`NaN` is rejected here with an input
//!    error — it would otherwise poison cache keys and batch grouping),
//!    the query's cancellation token is adopted, and the result cache is
//!    consulted under `(algorithm, canonical params, graph epoch)`. A hit
//!    answers immediately with `"cached": true` and never reaches the
//!    queue.
//! 2. **Scheduling** (dispatcher thread). Admitted jobs wait in one
//!    server-wide queue. `fifo` dispatches in arrival order; `priority`
//!    dispatches by the algorithm's declared [`CostClass`] (cheap first,
//!    arrival order within a class), so a burst of expensive queries
//!    cannot starve cheap ones. A batchable job is held for the
//!    configured *batch window* after arrival; compatible jobs that
//!    arrive within the window coalesce with it:
//!    * [`BatchKind::MultiSourceSssp`] — same-`delta` `sssp` queries fuse
//!      into **one** multi-source traversal with a frontier lane per
//!      member ([`julienne_algorithms::multi_source`]). Per-member
//!      outputs are byte-identical to solo runs; a member cancelling
//!      detaches its lane without disturbing siblings.
//!    * [`BatchKind::WholeGraph`] — queries with identical canonical
//!      parameters (k-core, PageRank, …) run **once** and fan the one
//!      output out to every waiter.
//!
//!    Members answered from a fused run carry `"batched": true`; the
//!    `output` payload itself stays byte-identical to a solo run.
//! 3. **Completion** (executor thread). Successful, stats-free results
//!    are written into the session's
//!    [`ResultCache`](julienne::cache::ResultCache) before the response
//!    goes out.
//!
//! `stats=true` queries bypass both the cache and every batch shape: a
//! telemetry trace describes one query's own run, so sharing it would
//! lie. Deadline-carrying whole-graph queries also run solo (a fused run
//! has no single deadline to honour); `sssp` lanes keep their own
//! deadline and cancellation through their per-lane [`QueryCtx`].
//!
//! The default configuration (no window, no cache, fifo) makes the
//! pipeline invisible: every job dispatches solo immediately, preserving
//! the protocol behaviour documented in [`crate`].

use crate::json::Json;
use crate::{error_for, error_response, respond, Shared};
use julienne::prelude::{CacheKey, CancelToken, QueryCtx, Session};
use julienne_algorithms::registry::{
    run_sssp_batch, BatchKind, CostClass, GraphStore, ParamMap, Registry,
};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Dispatch order for admitted jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Arrival order, no reordering.
    #[default]
    Fifo,
    /// Declared [`CostClass`] first (cheap before expensive), arrival
    /// order within a class.
    Priority,
}

impl SchedPolicy {
    /// Parses `fifo` / `priority` (the CLI spelling).
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "priority" => Some(SchedPolicy::Priority),
            _ => None,
        }
    }
}

/// Serve-pipeline knobs; [`Default`] reproduces the unbatched,
/// uncached, arrival-order server exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerConfig {
    /// How long a batchable job waits for compatible company before
    /// dispatch. Zero disables coalescing entirely.
    pub batch_window: Duration,
    /// Result-cache budget in accounted bytes. Zero disables caching.
    pub cache_bytes: usize,
    /// Dispatch order.
    pub policy: SchedPolicy,
}

/// One admitted query waiting for (or riding along with) dispatch.
struct Job {
    seq: u64,
    ready_at: Instant,
    id: Option<String>,
    algo: String,
    params: ParamMap,
    ctx: QueryCtx,
    /// `Some` only when the result may be cached (spec known, stats off).
    cache_key: Option<CacheKey>,
    cost: CostClass,
    batch: BatchKind,
    stats: bool,
    has_deadline: bool,
    /// Decided at admission: may this job lead or join a fused batch?
    coalesce: bool,
    writer: Arc<Mutex<TcpStream>>,
}

struct State {
    queue: Vec<Job>,
    next_seq: u64,
    draining: bool,
}

/// The shared queue plus everything an executor needs to answer a job.
pub(crate) struct Scheduler {
    session: Session<GraphStore>,
    config: SchedulerConfig,
    shared: Arc<Shared>,
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new(
        session: Session<GraphStore>,
        config: SchedulerConfig,
        shared: Arc<Shared>,
    ) -> Scheduler {
        Scheduler {
            session,
            config,
            shared,
            state: Mutex::new(State {
                queue: Vec::new(),
                next_seq: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Admits one query request from a connection thread: validates it,
    /// consults the cache, and either answers immediately or enqueues a
    /// job for the dispatcher. Never blocks on algorithm work.
    pub(crate) fn admit(&self, request: &Json, writer: &Arc<Mutex<TcpStream>>) {
        let id = request.get("id").and_then(Json::as_str).map(str::to_string);
        let Some(algo) = request.get("algo").and_then(Json::as_str) else {
            respond(
                writer,
                error_response(id.as_deref(), "usage", "request has no \"algo\" field"),
            );
            return;
        };
        let params = match request.get("params") {
            None => ParamMap::default(),
            Some(Json::Obj(fields)) => ParamMap::from_pairs(fields.iter().map(|(k, v)| {
                let value = match v {
                    Json::Str(s) => s.clone(),
                    other => other.to_json(),
                };
                (k.clone(), value)
            })),
            Some(_) => {
                respond(
                    writer,
                    error_response(id.as_deref(), "usage", "\"params\" must be an object"),
                );
                return;
            }
        };
        let stats = request.get("stats").and_then(Json::as_bool) == Some(true);

        // Canonicalize parameters while the request is still cheap to
        // refuse: NaN floats never make it past admission.
        let registry = Registry::standard();
        let spec = registry.get(algo);
        let canonical = match spec.map(|s| s.canonical_params(&params)).transpose() {
            Ok(c) => c,
            Err(err) => {
                respond(writer, error_for(id.as_deref(), &err));
                return;
            }
        };

        // Register (or adopt a pre-cancelled) token under the query id.
        let token = match &id {
            Some(id) => self
                .shared
                .inflight
                .lock()
                .unwrap()
                .entry(id.clone())
                .or_default()
                .clone(),
            None => CancelToken::new(),
        };

        let mut ctx: QueryCtx = self.session.query().with_cancel_token(token.clone());
        let mut has_deadline = false;
        if let Some(ms) = request.get("timeout_ms").and_then(Json::as_u64) {
            ctx = ctx.with_deadline(Duration::from_millis(ms));
            has_deadline = true;
        }
        if stats {
            ctx = ctx.with_stats(true);
        }

        let cache_key = match (&canonical, stats) {
            (Some(c), false) => Some(CacheKey::new(algo, c, self.session.epoch())),
            _ => None,
        };

        // Cache consult happens before admission; a pre-cancelled query
        // must still answer `cancelled`, so it skips the lookup.
        if !token.is_cancelled() {
            if let (Some(cache), Some(key)) = (self.session.cache(), &cache_key) {
                if let Some(hit) = cache.get(key) {
                    if let Some(id) = &id {
                        self.shared.inflight.lock().unwrap().remove(id);
                    }
                    respond(writer, ok_response(id.as_deref(), &hit, false, true));
                    return;
                }
            }
        }

        let (cost, batch) = match spec {
            Some(s) => (s.cost, s.batch),
            None => (CostClass::Moderate, BatchKind::None),
        };
        let now = Instant::now();
        let batchable = self.config.batch_window > Duration::ZERO
            && batch != BatchKind::None
            && !stats
            && !(batch == BatchKind::WholeGraph && has_deadline);
        let ready_at = if batchable {
            now + self.config.batch_window
        } else {
            now
        };
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push(Job {
            seq,
            ready_at,
            id,
            algo: algo.to_string(),
            params,
            ctx,
            cache_key,
            cost,
            batch,
            stats,
            has_deadline,
            coalesce: batchable,
            writer: Arc::clone(writer),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Tells the dispatcher no further jobs will arrive; it finishes the
    /// queue and returns.
    pub(crate) fn begin_drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.cv.notify_all();
    }

    /// The dispatcher loop: picks ready jobs per policy, coalesces
    /// compatible ones, and hands each batch to its own executor thread.
    /// Returns (joining every executor) once drained.
    pub(crate) fn dispatch_loop(self: &Arc<Scheduler>) {
        let mut executors: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            let batch = {
                let mut st = self.state.lock().unwrap();
                loop {
                    let now = Instant::now();
                    if let Some(pos) = pick_ready(&st.queue, self.config.policy, now) {
                        break collect_batch(&mut st.queue, pos);
                    }
                    if st.queue.is_empty() && st.draining {
                        drop(st);
                        for h in executors {
                            let _ = h.join();
                        }
                        return;
                    }
                    // Sleep until the nearest batch window closes (or a
                    // new job / drain signal arrives).
                    st = match st.queue.iter().map(|j| j.ready_at).min() {
                        Some(at) => {
                            let wait = at.saturating_duration_since(now);
                            self.cv.wait_timeout(st, wait).unwrap().0
                        }
                        None => self.cv.wait(st).unwrap(),
                    };
                }
            };
            executors.retain(|h| !h.is_finished());
            let sched = Arc::clone(self);
            executors.push(thread::spawn(move || sched.execute(batch)));
        }
    }

    /// Runs one dispatched batch to its responses.
    fn execute(&self, mut batch: Vec<Job>) {
        if batch.len() >= 2 && batch[0].batch == BatchKind::MultiSourceSssp {
            // Deduplicate before fusing: members with identical canonical
            // parameters share ONE frontier lane (a homogeneous burst of a
            // popular query costs one lane, not N), distinct parameter
            // sets become distinct lanes of one traversal. A shared lane
            // runs under a fresh context so no single member's
            // cancellation can starve the others — duplicates are checked
            // at respond time, exactly like whole-graph fan-out. Members
            // with a deadline keep a private lane (their own context), so
            // their deadline still trips mid-run.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut by_params: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            for (i, job) in batch.iter().enumerate() {
                match (&job.cache_key, job.has_deadline) {
                    (Some(key), false) => match by_params.get(key.params.as_str()) {
                        Some(&g) => groups[g].push(i),
                        None => {
                            by_params.insert(&key.params, groups.len());
                            groups.push(vec![i]);
                        }
                    },
                    _ => groups.push(vec![i]),
                }
            }
            let fresh: Vec<Option<QueryCtx>> = groups
                .iter()
                .map(|g| (g.len() >= 2).then(|| self.session.query()))
                .collect();
            let members: Vec<(&ParamMap, &QueryCtx)> = groups
                .iter()
                .zip(&fresh)
                .map(|(g, f)| {
                    let rep = &batch[g[0]];
                    (&rep.params, f.as_ref().unwrap_or(&rep.ctx))
                })
                .collect();
            // On Err (mixed delta/algo or an unfusable variant) fall
            // through to the solo loop: correctness first, throughput
            // second.
            if let Ok(slots) = run_sssp_batch(self.session.graph(), &members) {
                let slots: Vec<Result<String, (String, String)>> = slots
                    .into_iter()
                    .map(|r| r.map_err(|e| (e.code().to_string(), e.to_string())))
                    .collect();
                let mut jobs: Vec<Option<Job>> = batch.into_iter().map(Some).collect();
                for (group, slot) in groups.iter().zip(&slots) {
                    for &i in group {
                        let job = jobs[i].take().expect("job fanned out twice");
                        if group.len() >= 2 {
                            if let Err(e) = job.ctx.check() {
                                self.finish(job, Err(e), true);
                                continue;
                            }
                        }
                        match slot {
                            Ok(output) => self.finish(job, Ok(output.clone()), true),
                            Err((code, msg)) => {
                                if let Some(id) = &job.id {
                                    self.shared.inflight.lock().unwrap().remove(id);
                                }
                                respond(&job.writer, error_response(job.id.as_deref(), code, msg));
                            }
                        }
                    }
                }
                return;
            }
        } else if batch.len() >= 2 && batch[0].batch == BatchKind::WholeGraph {
            // One run under a fresh context fans out to every waiter.
            // Members keep their own cancellation: a cancelled member is
            // answered `cancelled` at respond time and never sees (or
            // poisons) the shared result.
            let leader = &batch[0];
            let ctx = self.session.query();
            let result = Registry::standard()
                .run(&leader.algo, self.session.graph(), &leader.params, &ctx)
                .map_err(|e| (e.code().to_string(), e.to_string()));
            for job in batch {
                if let Err(e) = job.ctx.check() {
                    self.finish(job, Err(e), true);
                    continue;
                }
                match &result {
                    Ok(output) => self.finish(job, Ok(output.clone()), true),
                    Err((code, msg)) => {
                        if let Some(id) = &job.id {
                            self.shared.inflight.lock().unwrap().remove(id);
                        }
                        respond(&job.writer, error_response(job.id.as_deref(), code, msg));
                    }
                }
            }
            return;
        }
        for job in batch.drain(..) {
            let result =
                Registry::standard().run(&job.algo, self.session.graph(), &job.params, &job.ctx);
            self.finish(job, result, false);
        }
    }

    /// Caches a successful result, releases the query id, and writes the
    /// wire response.
    fn finish(&self, job: Job, result: Result<String, julienne::Error>, batched: bool) {
        if let (Ok(output), Some(key), Some(cache)) =
            (&result, &job.cache_key, self.session.cache())
        {
            cache.put(key.clone(), output.clone());
        }
        if let Some(id) = &job.id {
            self.shared.inflight.lock().unwrap().remove(id);
        }
        let response = match result {
            Ok(output) => ok_response(job.id.as_deref(), &output, batched, false),
            Err(err) => error_for(job.id.as_deref(), &err),
        };
        respond(&job.writer, response);
    }
}

/// The index of the best dispatchable job, honouring each job's batch
/// window (`ready_at`) and the configured policy.
fn pick_ready(queue: &[Job], policy: SchedPolicy, now: Instant) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, j)| j.ready_at <= now)
        .min_by_key(|(_, j)| match policy {
            SchedPolicy::Fifo => (CostClass::Cheap, j.seq),
            SchedPolicy::Priority => (j.cost, j.seq),
        })
        .map(|(i, _)| i)
}

/// Removes the picked job plus every queued job that can fuse with it.
/// Ride-alongs join even if their own window has not elapsed — they are
/// answered early, never late.
fn collect_batch(queue: &mut Vec<Job>, pos: usize) -> Vec<Job> {
    let lead = queue.remove(pos);
    if !lead.coalesce {
        return vec![lead];
    }
    let mut batch = vec![lead];
    let mut i = 0;
    while i < queue.len() {
        let j = &queue[i];
        let lead = &batch[0];
        let compatible = j.algo == lead.algo
            && !j.stats
            && match lead.batch {
                BatchKind::MultiSourceSssp => true,
                BatchKind::WholeGraph => {
                    !j.has_deadline
                        && match (&j.cache_key, &lead.cache_key) {
                            (Some(a), Some(b)) => a.params == b.params,
                            // Without canonical params there is no sound
                            // notion of "same query".
                            _ => false,
                        }
                }
                BatchKind::None => false,
            };
        if compatible {
            batch.push(queue.remove(i));
        } else {
            i += 1;
        }
    }
    batch
}

/// A success response; `batched` / `cached` appear only when true, so
/// unbatched responses are byte-identical to the pre-pipeline wire
/// format.
fn ok_response(id: Option<&str>, output: &str, batched: bool, cached: bool) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::Str(id.to_string())));
    }
    fields.push(("ok".to_string(), Json::Bool(true)));
    fields.push(("output".to_string(), Json::Str(output.to_string())));
    if batched {
        fields.push(("batched".to_string(), Json::Bool(true)));
    }
    if cached {
        fields.push(("cached".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields)
}
