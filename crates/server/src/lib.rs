//! `julienne serve`: one loaded graph, many concurrent queries.
//!
//! The server owns a [`Session`] over an immutable [`GraphStore`] (either
//! backend) and answers line-delimited JSON requests on a local TCP
//! socket. Every request line is one JSON object; every response is one
//! JSON object on one line. Three request shapes exist:
//!
//! * **Query** — `{"id": "q1", "algo": "kcore", "params": {"top": "5"},
//!   "timeout_ms": 250, "stats": false}`. Runs the algorithm through the
//!   workspace [`Registry`](julienne_algorithms::registry::Registry)
//!   under a fresh [`QueryCtx`](julienne::query::QueryCtx) carrying the
//!   deadline and a cancellation token. Responds
//!   `{"id": "q1", "ok": true, "output": "..."}` or
//!   `{"id": "q1", "ok": false, "error": {"code": "...", "message": "..."}}`
//!   where `code` is the wire class of the workspace error enum
//!   (`usage`, `input`, `io`, `parse`, `cancelled`, `deadline`).
//! * **Cancel** — `{"cancel": "q1"}`. Trips q1's token; the query returns
//!   at its next round boundary with code `cancelled`. Query ids live in
//!   one server-wide namespace, so a cancel works from any connection —
//!   including a fresh `julienne query cancel=q1` process. Cancelling an
//!   id that is not yet inflight pre-cancels it: a later query reusing the
//!   id starts cancelled (this closes the submit/cancel race for clients
//!   that pipeline both on one connection). Acknowledged with
//!   `{"cancel": "q1", "ok": true}`.
//! * **Shutdown** — `{"shutdown": true}`. Acknowledged, then the whole
//!   server drains: in-flight queries finish (or cancel), connection
//!   threads join, and [`Server::serve`] returns.
//!
//! Queries flow through the [`scheduler`] pipeline: admission on the
//! connection thread (validation, NaN rejection, result-cache lookup),
//! optional coalescing of compatible queries into one fused run, then
//! execution on scheduler worker threads sharing the process-wide rayon
//! pool. A cancelled or expired query unwinds at a round boundary,
//! dropping its buckets, and the session keeps serving. The graph itself
//! is behind an [`Arc`] and never copied per query. With
//! [`Server::bind`]'s default [`SchedulerConfig`] (no batch window, no
//! cache) every query dispatches solo immediately and responses carry no
//! extra fields; [`Server::bind_with`] turns on batching (`"batched":
//! true` on fused responses) and caching (`"cached": true` on hits).

pub mod json;
pub mod scheduler;

use json::Json;
use julienne::prelude::{CancelToken, Engine, Session};
use julienne::Error;
use julienne_algorithms::registry::GraphStore;
use scheduler::Scheduler;
pub use scheduler::{SchedPolicy, SchedulerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// State every connection shares with the accept loop: the stop flag, a
/// registry of live sockets (so shutdown can unblock readers that are
/// parked in `read` waiting for a client's next request), and the
/// server-wide map of query ids to cancellation tokens.
pub(crate) struct Shared {
    addr: SocketAddr,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    pub(crate) inflight: Mutex<HashMap<String, CancelToken>>,
}

impl Shared {
    /// Flags shutdown, closes every registered connection (their reader
    /// threads wake with EOF and drain), and pokes the accept loop.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for stream in self.conns.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // A throwaway connection unblocks the blocking accept.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The query server: a bound listener, the shared graph session, and the
/// admission/batching/caching scheduler every query routes through (see
/// [`scheduler`]).
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    shared: Arc<Shared>,
}

/// Stops a running [`Server`] from another thread (used by in-process
/// tests; wire clients send `{"shutdown": true}` instead).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests shutdown: in-flight queries finish, connections drain, and
    /// [`Server::serve`] returns once everything is joined.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and
    /// prepares a session sharing `store` under `engine`'s options. Uses
    /// the default [`SchedulerConfig`]: no batch window, no cache, fifo —
    /// i.e. the plain one-job-at-a-time pipeline.
    pub fn bind(addr: &str, engine: &Engine, store: GraphStore) -> std::io::Result<Server> {
        Server::bind_with(addr, engine, store, SchedulerConfig::default())
    }

    /// [`bind`](Server::bind) with explicit serve-pipeline configuration:
    /// batch window, result-cache budget, and dispatch policy.
    pub fn bind_with(
        addr: &str,
        engine: &Engine,
        store: GraphStore,
        config: SchedulerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
        });
        let session: Session<GraphStore> = engine
            .session(Arc::new(store))
            .with_cache(config.cache_bytes);
        Ok(Server {
            listener,
            scheduler: Arc::new(Scheduler::new(session, config, Arc::clone(&shared))),
            shared,
        })
    }

    /// The bound address (print this so clients can connect).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a shutdown request arrives, then drains: connection
    /// threads are joined, the scheduler finishes every admitted job, and
    /// its dispatcher/executor threads are joined before returning, so a
    /// clean exit means no work is left behind.
    pub fn serve(self) -> std::io::Result<()> {
        let dispatcher = {
            let sched = Arc::clone(&self.scheduler);
            thread::spawn(move || sched.dispatch_loop())
        };
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let conn_id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(registered) = stream.try_clone() {
                self.shared
                    .conns
                    .lock()
                    .unwrap()
                    .insert(conn_id, registered);
            }
            let scheduler = Arc::clone(&self.scheduler);
            let shared = Arc::clone(&self.shared);
            connections.push(thread::spawn(move || {
                handle_connection(stream, &scheduler, &shared);
                shared.conns.lock().unwrap().remove(&conn_id);
            }));
        }
        for handle in connections {
            let _ = handle.join();
        }
        self.scheduler.begin_drain();
        let _ = dispatcher.join();
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, scheduler: &Arc<Scheduler>, shared: &Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));

    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(msg) => {
                respond(
                    &writer,
                    error_response(None, "parse", &format!("bad request: {msg}")),
                );
                continue;
            }
        };
        if request.get("shutdown").and_then(Json::as_bool) == Some(true) {
            respond(
                &writer,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("shutdown".into(), Json::Bool(true)),
                ]),
            );
            // Wakes the accept loop and every parked reader (the response
            // above is already flushed; queued bytes still reach the client).
            shared.begin_shutdown();
            break;
        }
        if let Some(id) = request.get("cancel").and_then(Json::as_str) {
            let token = {
                let mut map = shared.inflight.lock().unwrap();
                map.entry(id.to_string()).or_default().clone()
            };
            token.cancel();
            respond(
                &writer,
                Json::Obj(vec![
                    ("cancel".into(), Json::Str(id.to_string())),
                    ("ok".into(), Json::Bool(true)),
                ]),
            );
            continue;
        }
        // Queries go through the scheduler: admission (validation, NaN
        // rejection, cache lookup) happens here on the connection thread;
        // execution happens on the scheduler's worker threads and the
        // response is written whenever the job completes.
        scheduler.admit(&request, &writer);
    }
}

pub(crate) fn error_for(id: Option<&str>, err: &Error) -> Json {
    error_response(id, err.code(), &err.to_string())
}

pub(crate) fn error_response(id: Option<&str>, code: &str, message: &str) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".into(), Json::Str(id.to_string())));
    }
    fields.push(("ok".into(), Json::Bool(false)));
    fields.push((
        "error".into(),
        Json::Obj(vec![
            ("code".into(), Json::Str(code.to_string())),
            ("message".into(), Json::Str(message.to_string())),
        ]),
    ));
    Json::Obj(fields)
}

pub(crate) fn respond(writer: &Arc<Mutex<TcpStream>>, response: Json) {
    let mut w = writer.lock().unwrap();
    let _ = writeln!(w, "{}", response.to_json());
    let _ = w.flush();
}

/// A minimal blocking client for the protocol: one connection, correlated
/// request/response pairs. The CLI `query` subcommand and the tests use
/// this; any language that can speak line-delimited JSON works the same.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving address.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream })
    }

    /// Sends one request object (no newline) and returns without waiting.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        self.send_raw(&request.to_json())
    }

    /// Sends one raw protocol line verbatim (tests use this to exercise the
    /// server's parse-error path).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.stream, "{line}")?;
        self.stream.flush()
    }

    /// Reads the next response line. Responses to concurrent queries
    /// arrive in completion order; correlate by `id`.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Sends a request and waits for the next response (single-query use).
    pub fn roundtrip(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()
    }
}

/// Builds a query request object.
pub fn query_request(
    id: &str,
    algo: &str,
    params: &[(&str, &str)],
    timeout_ms: Option<u64>,
    stats: bool,
) -> Json {
    let mut fields = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("algo".to_string(), Json::Str(algo.to_string())),
    ];
    if !params.is_empty() {
        fields.push((
            "params".to_string(),
            Json::Obj(
                params
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Str(v.to_string())))
                    .collect(),
            ),
        ));
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".to_string(), Json::Num(ms as f64)));
    }
    if stats {
        fields.push(("stats".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields)
}
