//! `julienne serve`: one loaded graph, many concurrent queries.
//!
//! The server owns a [`Session`] over an immutable [`GraphStore`] (either
//! backend) and answers line-delimited JSON requests on a local TCP
//! socket. Every request line is one JSON object; every response is one
//! JSON object on one line. Three request shapes exist:
//!
//! * **Query** — `{"id": "q1", "algo": "kcore", "params": {"top": "5"},
//!   "timeout_ms": 250, "stats": false}`. Runs the algorithm through the
//!   workspace [`Registry`] under a fresh [`QueryCtx`] carrying the
//!   deadline and a cancellation token. Responds
//!   `{"id": "q1", "ok": true, "output": "..."}` or
//!   `{"id": "q1", "ok": false, "error": {"code": "...", "message": "..."}}`
//!   where `code` is the wire class of the workspace error enum
//!   (`usage`, `input`, `io`, `parse`, `cancelled`, `deadline`).
//! * **Cancel** — `{"cancel": "q1"}`. Trips q1's token; the query returns
//!   at its next round boundary with code `cancelled`. Query ids live in
//!   one server-wide namespace, so a cancel works from any connection —
//!   including a fresh `julienne query cancel=q1` process. Cancelling an
//!   id that is not yet inflight pre-cancels it: a later query reusing the
//!   id starts cancelled (this closes the submit/cancel race for clients
//!   that pipeline both on one connection). Acknowledged with
//!   `{"cancel": "q1", "ok": true}`.
//! * **Shutdown** — `{"shutdown": true}`. Acknowledged, then the whole
//!   server drains: in-flight queries finish (or cancel), connection
//!   threads join, and [`Server::serve`] returns.
//!
//! Queries run on their own OS threads and share the process-wide rayon
//! pool for their parallel sections; a cancelled or expired query unwinds
//! at a round boundary, dropping its buckets, and the session keeps
//! serving. The graph itself is behind an [`Arc`] and never copied per
//! query.

pub mod json;

use json::Json;
use julienne::prelude::{CancelToken, Engine, QueryCtx, Session};
use julienne::Error;
use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// State every connection shares with the accept loop: the stop flag, a
/// registry of live sockets (so shutdown can unblock readers that are
/// parked in `read` waiting for a client's next request), and the
/// server-wide map of query ids to cancellation tokens.
struct Shared {
    addr: SocketAddr,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    inflight: Mutex<HashMap<String, CancelToken>>,
}

impl Shared {
    /// Flags shutdown, closes every registered connection (their reader
    /// threads wake with EOF and drain), and pokes the accept loop.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for stream in self.conns.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // A throwaway connection unblocks the blocking accept.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The query server: a bound listener plus the shared graph session.
pub struct Server {
    listener: TcpListener,
    session: Session<GraphStore>,
    shared: Arc<Shared>,
}

/// Stops a running [`Server`] from another thread (used by in-process
/// tests; wire clients send `{"shutdown": true}` instead).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests shutdown: in-flight queries finish, connections drain, and
    /// [`Server::serve`] returns once everything is joined.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and
    /// prepares a session sharing `store` under `engine`'s options.
    pub fn bind(addr: &str, engine: &Engine, store: GraphStore) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            session: engine.session(Arc::new(store)),
            shared: Arc::new(Shared {
                addr,
                shutdown: AtomicBool::new(false),
                next_conn: AtomicU64::new(0),
                conns: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (print this so clients can connect).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a shutdown request arrives, then drains: all
    /// connection threads (and their query workers) are joined before
    /// returning, so a clean exit means no work is left behind.
    pub fn serve(self) -> std::io::Result<()> {
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let conn_id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(registered) = stream.try_clone() {
                self.shared
                    .conns
                    .lock()
                    .unwrap()
                    .insert(conn_id, registered);
            }
            let session = self.session.clone();
            let shared = Arc::clone(&self.shared);
            connections.push(thread::spawn(move || {
                handle_connection(stream, session, &shared);
                shared.conns.lock().unwrap().remove(&conn_id);
            }));
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, session: Session<GraphStore>, shared: &Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut workers = Vec::new();

    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(msg) => {
                respond(
                    &writer,
                    error_response(None, "parse", &format!("bad request: {msg}")),
                );
                continue;
            }
        };
        if request.get("shutdown").and_then(Json::as_bool) == Some(true) {
            respond(
                &writer,
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("shutdown".into(), Json::Bool(true)),
                ]),
            );
            // Wakes the accept loop and every parked reader (the response
            // above is already flushed; queued bytes still reach the client).
            shared.begin_shutdown();
            break;
        }
        if let Some(id) = request.get("cancel").and_then(Json::as_str) {
            let token = {
                let mut map = shared.inflight.lock().unwrap();
                map.entry(id.to_string()).or_default().clone()
            };
            token.cancel();
            respond(
                &writer,
                Json::Obj(vec![
                    ("cancel".into(), Json::Str(id.to_string())),
                    ("ok".into(), Json::Bool(true)),
                ]),
            );
            continue;
        }
        let writer = Arc::clone(&writer);
        let session = session.clone();
        let shared = Arc::clone(shared);
        workers.push(thread::spawn(move || {
            let response = answer_query(&request, &session, &shared);
            respond(&writer, response);
        }));
    }

    for worker in workers {
        let _ = worker.join();
    }
}

/// Runs one query request to a response object.
fn answer_query(request: &Json, session: &Session<GraphStore>, shared: &Shared) -> Json {
    let id = request.get("id").and_then(Json::as_str).map(str::to_string);
    let Some(algo) = request.get("algo").and_then(Json::as_str) else {
        return error_response(id.as_deref(), "usage", "request has no \"algo\" field");
    };
    let params = match request.get("params") {
        None => ParamMap::default(),
        Some(Json::Obj(fields)) => ParamMap::from_pairs(fields.iter().map(|(k, v)| {
            let value = match v {
                Json::Str(s) => s.clone(),
                other => other.to_json(),
            };
            (k.clone(), value)
        })),
        Some(_) => {
            return error_response(id.as_deref(), "usage", "\"params\" must be an object");
        }
    };

    // Register (or adopt a pre-cancelled) token under the query id.
    let token = match &id {
        Some(id) => shared
            .inflight
            .lock()
            .unwrap()
            .entry(id.clone())
            .or_default()
            .clone(),
        None => CancelToken::new(),
    };

    let mut ctx: QueryCtx = session.query().with_cancel_token(token);
    if let Some(ms) = request.get("timeout_ms").and_then(Json::as_u64) {
        ctx = ctx.with_deadline(Duration::from_millis(ms));
    }
    if request.get("stats").and_then(Json::as_bool) == Some(true) {
        ctx = ctx.with_stats(true);
    }

    let result = Registry::standard().run(algo, session.graph(), &params, &ctx);

    if let Some(id) = &id {
        shared.inflight.lock().unwrap().remove(id);
    }

    match result {
        Ok(output) => {
            let mut fields = Vec::new();
            if let Some(id) = id {
                fields.push(("id".into(), Json::Str(id)));
            }
            fields.push(("ok".into(), Json::Bool(true)));
            fields.push(("output".into(), Json::Str(output)));
            Json::Obj(fields)
        }
        Err(err) => error_for(id.as_deref(), &err),
    }
}

fn error_for(id: Option<&str>, err: &Error) -> Json {
    error_response(id, err.code(), &err.to_string())
}

fn error_response(id: Option<&str>, code: &str, message: &str) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".into(), Json::Str(id.to_string())));
    }
    fields.push(("ok".into(), Json::Bool(false)));
    fields.push((
        "error".into(),
        Json::Obj(vec![
            ("code".into(), Json::Str(code.to_string())),
            ("message".into(), Json::Str(message.to_string())),
        ]),
    ));
    Json::Obj(fields)
}

fn respond(writer: &Arc<Mutex<TcpStream>>, response: Json) {
    let mut w = writer.lock().unwrap();
    let _ = writeln!(w, "{}", response.to_json());
    let _ = w.flush();
}

/// A minimal blocking client for the protocol: one connection, correlated
/// request/response pairs. The CLI `query` subcommand and the tests use
/// this; any language that can speak line-delimited JSON works the same.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving address.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream })
    }

    /// Sends one request object (no newline) and returns without waiting.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        self.send_raw(&request.to_json())
    }

    /// Sends one raw protocol line verbatim (tests use this to exercise the
    /// server's parse-error path).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.stream, "{line}")?;
        self.stream.flush()
    }

    /// Reads the next response line. Responses to concurrent queries
    /// arrive in completion order; correlate by `id`.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Sends a request and waits for the next response (single-query use).
    pub fn roundtrip(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()
    }
}

/// Builds a query request object.
pub fn query_request(
    id: &str,
    algo: &str,
    params: &[(&str, &str)],
    timeout_ms: Option<u64>,
    stats: bool,
) -> Json {
    let mut fields = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("algo".to_string(), Json::Str(algo.to_string())),
    ];
    if !params.is_empty() {
        fields.push((
            "params".to_string(),
            Json::Obj(
                params
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Str(v.to_string())))
                    .collect(),
            ),
        ));
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".to_string(), Json::Num(ms as f64)));
    }
    if stats {
        fields.push(("stats".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields)
}
