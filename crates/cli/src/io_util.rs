//! Format-dispatching graph load/save for the CLI.

use julienne::Error;
use julienne_graph::csr::{Csr, Weight};
use julienne_graph::io;
use std::path::Path;

/// Supported on-disk formats, inferred from the file extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Ligra `AdjacencyGraph` text (`.adj`).
    Adjacency,
    /// Whitespace edge list (`.el`, `.txt`).
    EdgeList,
    /// DIMACS shortest-path (`.gr`) — weighted only.
    Dimacs,
    /// Fast binary (`.bin`).
    Binary,
    /// METIS (`.metis`, `.graph`) — undirected only.
    Metis,
}

/// Infers the format from a path's extension. An unknown extension is a
/// usage error: the invocation named a file this tool cannot interpret.
pub fn infer_format(path: &Path) -> Result<Format, Error> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("adj") => Ok(Format::Adjacency),
        Some("el") | Some("txt") => Ok(Format::EdgeList),
        Some("gr") => Ok(Format::Dimacs),
        Some("bin") => Ok(Format::Binary),
        Some("metis") | Some("graph") => Ok(Format::Metis),
        other => Err(Error::usage(format!(
            "cannot infer graph format from extension {other:?} (use .adj/.el/.gr/.bin/.metis)"
        ))),
    }
}

/// Loads a graph with weight type `W` from `path`. Errors come back typed:
/// [`Error::Io`]/[`Error::Parse`] carry the path (and line) themselves.
pub fn load<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    match infer_format(path)? {
        Format::Adjacency => io::read_adjacency_graph(path),
        Format::EdgeList => io::read_edge_list(path, None, false),
        Format::Binary => io::read_binary(path),
        Format::Metis => io::read_metis(path),
        Format::Dimacs => {
            if W::IS_UNIT {
                return Err(Error::usage(
                    "DIMACS files are weighted; use a weighted command",
                ));
            }
            // Round-trip through u64 encoding to reuse the typed reader.
            io::read_dimacs(path).map(|g| {
                Csr::from_parts(
                    g.offsets().to_vec(),
                    g.targets().to_vec(),
                    g.weights().iter().map(|&w| W::from_u64(w as u64)).collect(),
                    g.is_symmetric(),
                )
            })
        }
    }
}

/// Saves a graph to `path` in the extension-inferred format.
pub fn save<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    match infer_format(path)? {
        Format::Adjacency => io::write_adjacency_graph(g, path),
        Format::EdgeList => io::write_edge_list(g, path),
        Format::Binary => io::write_binary(g, path),
        Format::Metis => io::write_metis(g, path),
        Format::Dimacs => {
            if W::IS_UNIT {
                return Err(Error::usage("DIMACS output requires a weighted graph"));
            }
            let wg: Csr<u32> = Csr::from_parts(
                g.offsets().to_vec(),
                g.targets().to_vec(),
                g.weights().iter().map(|w| w.to_u64() as u32).collect(),
                g.is_symmetric(),
            );
            io::write_dimacs(&wg, path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::generators::erdos_renyi;
    use julienne_graph::transform::assign_weights;

    #[test]
    fn format_inference() {
        assert_eq!(infer_format(Path::new("a.adj")).unwrap(), Format::Adjacency);
        assert_eq!(infer_format(Path::new("a.el")).unwrap(), Format::EdgeList);
        assert_eq!(infer_format(Path::new("a.gr")).unwrap(), Format::Dimacs);
        assert_eq!(infer_format(Path::new("a.bin")).unwrap(), Format::Binary);
        assert_eq!(infer_format(Path::new("a.metis")).unwrap(), Format::Metis);
        assert_eq!(infer_format(Path::new("a.graph")).unwrap(), Format::Metis);
        let err = infer_format(Path::new("a.xyz")).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }

    #[test]
    fn load_save_roundtrip_every_format() {
        let dir = std::env::temp_dir().join(format!("julienne-cli-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = erdos_renyi(100, 500, 1, false);
        for name in ["g.adj", "g.el", "g.bin"] {
            let p = dir.join(name);
            save(&g, &p).unwrap();
            let h: Csr<()> = load(&p).unwrap();
            assert_eq!(h.num_edges(), g.num_edges(), "{name}");
        }
        let wg = assign_weights(&g, 1, 9, 2);
        let p = dir.join("g.gr");
        save(&wg, &p).unwrap();
        let h: Csr<u32> = load(&p).unwrap();
        assert_eq!(h.weights(), wg.weights());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metis_roundtrip_via_dispatch() {
        let dir = std::env::temp_dir().join(format!("julienne-cli-metis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = erdos_renyi(80, 400, 2, true);
        let p = dir.join("g.metis");
        save(&g, &p).unwrap();
        let h: Csr<()> = load(&p).unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_error_names_the_path() {
        let err = load::<()>(Path::new("/definitely/not/here.adj")).unwrap_err();
        assert_eq!(err.code(), "io");
        assert!(err.to_string().contains("here.adj"), "{err}");
    }

    #[test]
    fn dimacs_rejects_unweighted() {
        let g = erdos_renyi(10, 30, 1, false);
        let err = save(&g, Path::new("/tmp/x.gr")).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }
}
