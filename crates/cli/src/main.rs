//! `julienne` — command-line front-end for the SPAA'17 reproduction:
//! generate/convert/analyze graphs and run the bucketing-based algorithms.
//!
//! Run `julienne help` for usage.

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", commands::usage());
        std::process::exit(2);
    }
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(report) => print!("{report}"),
        // Usage errors (exit 2) mean the invocation was wrong; runtime
        // errors (exit 1) mean the work failed. Both append the usage text
        // so a failing run always shows the correct invocation forms.
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(e.exit_code());
        }
    }
}
