//! CLI subcommand implementations. Each returns its report as a `String`
//! so commands are unit-testable without capturing stdout.

use crate::args::{ArgError, Args};
use crate::io_util::{load, save};
use julienne::prelude::{Backend, Engine};
use julienne_algorithms::clustering::{local_clustering, transitivity};
use julienne_algorithms::components::{connected_components, num_components};
use julienne_algorithms::degeneracy::densest_subgraph;
use julienne_algorithms::kcore;
use julienne_algorithms::ktruss::ktruss_julienne;
use julienne_algorithms::pagerank::pagerank;
use julienne_algorithms::setcover::verify_cover;
use julienne_algorithms::stats::graph_stats;
use julienne_algorithms::triangles::{triangle_count, EdgeIndex};
use julienne_algorithms::{bellman_ford, delta_stepping, dijkstra};
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::generators::{chung_lu, erdos_renyi, grid2d, random_regular, rmat, RmatParams};
use julienne_graph::transform::{assign_weights, symmetrize, wbfs_weight_range};
use julienne_graph::{Csr, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Why a command failed — the class decides the exit code and whether the
/// usage text is appended. [`CmdError::Usage`] means the *invocation* was
/// wrong (bad option value, unknown command): exit 2. [`CmdError::Runtime`]
/// means the invocation was fine but the work failed (unreadable file,
/// empty graph, asymmetric input): exit 1. Both print usage so a failing
/// run always shows the correct invocation forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmdError {
    Usage(String),
    Runtime(String),
}

impl CmdError {
    /// Exit code for this error class (2 = usage, 1 = runtime).
    pub fn exit_code(&self) -> i32 {
        match self {
            CmdError::Usage(_) => 2,
            CmdError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Usage(m) | CmdError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Usage(e.to_string())
    }
}

fn usage_err(msg: impl Into<String>) -> CmdError {
    CmdError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CmdError {
    CmdError::Runtime(msg.into())
}

pub type CmdResult = Result<String, CmdError>;

/// Reads the global `backend=<csr|compressed>` option. Validated once in
/// [`dispatch`]; the graph commands re-read it here to route their loads.
fn backend_opt(a: &Args) -> Result<Backend, CmdError> {
    Backend::parse(&a.string_or("backend", "csr")).map_err(usage_err)
}

/// Rejects 0-vertex graphs before running an algorithm on them: every
/// algorithm command needs at least one vertex (sources, peeling, and
/// telemetry traces are all meaningless on nothing).
fn require_nonempty<W: julienne_graph::csr::Weight>(g: &Csr<W>) -> Result<(), CmdError> {
    if g.num_vertices() == 0 {
        Err(runtime_err(
            "graph is empty (0 vertices); nothing to compute",
        ))
    } else {
        Ok(())
    }
}

/// Runs `$body` with `$gr` bound to the selected backend's view of `$g`:
/// the CSR itself, or a byte-compressed copy built with `$compress`. The
/// algorithms are generic over the graph traits, so the same call works
/// against either representation and must produce identical output.
macro_rules! with_backend {
    ($backend:expr, $g:expr, $compress:path, |$gr:ident| $body:expr) => {
        match $backend {
            Backend::Csr => {
                let $gr = &$g;
                $body
            }
            Backend::Compressed => {
                let compressed = $compress(&$g);
                let $gr = &compressed;
                $body
            }
        }
    };
}

/// Parses the `stats=<none|json>` option shared by the algorithm commands
/// and returns an [`Engine`] with telemetry enabled iff JSON traces were
/// requested (plus the flag itself).
fn stats_engine(a: &Args) -> Result<(Engine, bool), CmdError> {
    let stats = a.string_or("stats", "none");
    match stats.as_str() {
        "none" => Ok((Engine::default(), false)),
        "json" => Ok((Engine::builder().telemetry(true).build(), true)),
        other => Err(usage_err(format!(
            "unknown stats mode {other:?} (expected none|json)"
        ))),
    }
}

/// `julienne gen kind=<rmat|er|chunglu|grid|regular> out=<file> [scale=14]
/// [edge_factor=16] [seed=1] [symmetric=true] [weights=none|log|heavy]`
pub fn cmd_gen(a: &Args) -> CmdResult {
    let kind = a.require("kind")?;
    let out = PathBuf::from(a.require("out")?);
    let scale: u32 = a.get_or("scale", 14)?;
    let ef: usize = a.get_or("edge_factor", 16)?;
    let seed: u64 = a.get_or("seed", 1)?;
    let symmetric: bool = a.get_or("symmetric", true)?;
    let weights = a.string_or("weights", "none");
    a.finish()?;

    if scale >= usize::BITS {
        return Err(usage_err(format!(
            "scale={scale} is too large (2^scale vertices must fit in usize; max scale is {})",
            usize::BITS - 1
        )));
    }
    let n = 1usize << scale;
    let g: Graph = match kind.as_str() {
        "rmat" => rmat(scale, ef, RmatParams::default(), seed, symmetric),
        "er" => erdos_renyi(n, ef * n, seed, symmetric),
        "chunglu" => chung_lu(n, ef * n, 2.2, seed, symmetric),
        "regular" => random_regular(n, ef, seed, symmetric),
        "grid" => {
            let side = (n as f64).sqrt() as usize;
            grid2d(side, side)
        }
        other => return Err(usage_err(format!("unknown generator {other:?}"))),
    };
    let mut report = format!(
        "generated {kind}: n={} m={} symmetric={}\n",
        g.num_vertices(),
        g.num_edges(),
        g.is_symmetric()
    );
    match weights.as_str() {
        "none" => save(&g, &out).map_err(runtime_err)?,
        "log" => {
            let (lo, hi) = wbfs_weight_range(g.num_vertices());
            save(&assign_weights(&g, lo, hi, seed ^ 0xF00D), &out).map_err(runtime_err)?;
            let _ = writeln!(report, "weights: uniform [{lo}, {hi})");
        }
        "heavy" => {
            save(&assign_weights(&g, 1, 100_000, seed ^ 0xF00D), &out).map_err(runtime_err)?;
            let _ = writeln!(report, "weights: uniform [1, 100000)");
        }
        other => return Err(usage_err(format!("unknown weights mode {other:?}"))),
    }
    let _ = writeln!(report, "wrote {}", out.display());
    Ok(report)
}

/// `julienne stats in=<file> [weighted=false]`
///
/// Besides the Table 2 statistics, reports the memory footprint of both
/// backends: raw CSR bytes and byte-compressed bytes, each per edge, plus
/// the compression ratio.
pub fn cmd_stats(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let weighted: bool = a.get_or("weighted", false)?;
    a.finish()?;
    let (s, csr_bytes, compressed_bytes) = if weighted {
        let g: Csr<u32> = load(&input).map_err(runtime_err)?;
        require_nonempty(&g)?;
        let c = CompressedWGraph::from_csr(&g);
        (graph_stats(&g), g.footprint_bytes(), c.footprint_bytes())
    } else {
        let g: Graph = load(&input).map_err(runtime_err)?;
        require_nonempty(&g)?;
        let c = CompressedGraph::from_csr(&g);
        (graph_stats(&g), g.footprint_bytes(), c.footprint_bytes())
    };
    let m = s.num_edges.max(1) as f64;
    let mut out = format!(
        "n={} m={} rho={} k_max={} max_degree={} ecc(0)={}\n",
        s.num_vertices,
        s.num_edges,
        s.rho.map(|x| x.to_string()).unwrap_or("-".into()),
        s.k_max.map(|x| x.to_string()).unwrap_or("-".into()),
        s.max_degree,
        s.eccentricity_from_zero
    );
    let _ = writeln!(
        out,
        "memory: csr={csr_bytes}B ({:.2} B/edge) compressed={compressed_bytes}B ({:.2} B/edge) ratio={:.2}x",
        csr_bytes as f64 / m,
        compressed_bytes as f64 / m,
        csr_bytes as f64 / compressed_bytes.max(1) as f64
    );
    Ok(out)
}

/// `julienne convert in=<file> out=<file> [weighted=false] [symmetrize=false]`
pub fn cmd_convert(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let out = PathBuf::from(a.require("out")?);
    let weighted: bool = a.get_or("weighted", false)?;
    let make_sym: bool = a.get_or("symmetrize", false)?;
    a.finish()?;
    if weighted {
        let mut g: Csr<u32> = load(&input).map_err(runtime_err)?;
        if make_sym {
            g = symmetrize(&g);
        }
        save(&g, &out).map_err(runtime_err)?;
        Ok(format!(
            "converted {} -> {} (weighted, m={})\n",
            input.display(),
            out.display(),
            g.num_edges()
        ))
    } else {
        let mut g: Graph = load(&input).map_err(runtime_err)?;
        if make_sym {
            g = symmetrize(&g);
        }
        save(&g, &out).map_err(runtime_err)?;
        Ok(format!(
            "converted {} -> {} (m={})\n",
            input.display(),
            out.display(),
            g.num_edges()
        ))
    }
}

/// `julienne kcore in=<file> [top=10] [stats=none|json]`
pub fn cmd_kcore(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let top: usize = a.get_or("top", 10)?;
    let backend = backend_opt(a)?;
    let (engine, emit_json) = stats_engine(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err(
            "k-core requires a symmetric graph (use convert symmetrize=true)",
        ));
    }
    let r = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        kcore::coreness_julienne_with(gr, &engine)
    });
    let k_max = r.coreness.iter().copied().max().unwrap_or(0);
    let mut by_core: Vec<(u32, u32)> = r
        .coreness
        .iter()
        .enumerate()
        .map(|(v, &c)| (c, v as u32))
        .collect();
    by_core.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = format!(
        "k_max={k_max} rounds={} moves={}\n",
        r.rounds, r.identifiers_moved
    );
    let _ = writeln!(out, "top vertices by coreness:");
    for (c, v) in by_core.into_iter().take(top) {
        let _ = writeln!(out, "  v{v}: coreness {c}");
    }
    if emit_json {
        let _ = writeln!(out, "{}", engine.snapshot().to_json("kcore"));
    }
    Ok(out)
}

/// `julienne sssp in=<weighted file> [src=0] [delta=32768]
/// [algo=delta|wbfs|bellman|dijkstra] [stats=none|json]`
pub fn cmd_sssp(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let src: u32 = a.get_or("src", 0)?;
    let delta: u64 = a.get_or("delta", 32768)?;
    if delta == 0 {
        return Err(usage_err(
            "delta=0 is invalid; the bucket width must be >= 1",
        ));
    }
    let algo = a.string_or("algo", "delta");
    let backend = backend_opt(a)?;
    let (engine, emit_json) = stats_engine(a)?;
    a.finish()?;
    let g: Csr<u32> = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if src as usize >= g.num_vertices() {
        return Err(runtime_err(format!(
            "src {src} out of range (n = {})",
            g.num_vertices()
        )));
    }
    let (dist, rounds) = with_backend!(backend, g, CompressedWGraph::from_csr, |gr| {
        match algo.as_str() {
            "delta" => {
                let r = delta_stepping::delta_stepping_with(gr, src, delta, &engine);
                (r.dist, r.rounds)
            }
            "wbfs" => {
                let r = delta_stepping::delta_stepping_with(gr, src, 1, &engine);
                (r.dist, r.rounds)
            }
            "bellman" => {
                let r = bellman_ford::bellman_ford(gr, src);
                (r.dist, r.rounds)
            }
            "dijkstra" => (dijkstra::dijkstra(gr, src), 0),
            other => return Err(usage_err(format!("unknown algo {other:?}"))),
        }
    });
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count();
    let max = dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut out = format!(
        "algo={algo} src={src} reached={reached}/{} max_dist={max} rounds={rounds}\n",
        g.num_vertices()
    );
    if emit_json {
        let _ = writeln!(
            out,
            "{}",
            engine.snapshot().to_json(&format!("sssp_{algo}"))
        );
    }
    Ok(out)
}

/// `julienne components in=<file>`
pub fn cmd_components(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err("components requires a symmetric graph"));
    }
    let r = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        connected_components(gr)
    });
    Ok(format!(
        "components={} rounds={}\n",
        num_components(&r.label),
        r.rounds
    ))
}

/// `julienne densest in=<file>`
pub fn cmd_densest(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err("densest requires a symmetric graph"));
    }
    let ds = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        densest_subgraph(gr)
    });
    Ok(format!(
        "densest subgraph: {} vertices, density {:.3}\n",
        ds.vertices.len(),
        ds.density
    ))
}

/// `julienne triangles in=<file>`
pub fn cmd_triangles(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err("triangle counting requires a symmetric graph"));
    }
    let t = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        triangle_count(gr)
    });
    Ok(format!("triangles={t}\n"))
}

/// `julienne truss in=<file> [top=5]`
pub fn cmd_truss(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let top: usize = a.get_or("top", 5)?;
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err("k-truss requires a symmetric graph"));
    }
    let (idx, r) = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        (EdgeIndex::new(gr), ktruss_julienne(gr))
    });
    let mut out = format!(
        "edges={} max_truss={} rounds={}\n",
        r.trussness.len(),
        r.max_truss,
        r.rounds
    );
    let mut by_truss: Vec<(u32, usize)> = r
        .trussness
        .iter()
        .copied()
        .map(|t| (t, 1))
        .fold(
            std::collections::BTreeMap::new(),
            |mut m: std::collections::BTreeMap<u32, usize>, (t, c)| {
                *m.entry(t).or_default() += c;
                m
            },
        )
        .into_iter()
        .collect();
    by_truss.reverse();
    let _ = writeln!(out, "edges per trussness (top {top} levels):");
    for (t, c) in by_truss.into_iter().take(top) {
        let _ = writeln!(out, "  trussness {t}: {c} edges");
    }
    let _ = idx;
    Ok(out)
}

/// `julienne clustering in=<file>`
pub fn cmd_clustering(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    if !g.is_symmetric() {
        return Err(runtime_err("clustering requires a symmetric graph"));
    }
    let (local, trans) = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        (local_clustering(gr), transitivity(gr))
    });
    let avg = local.iter().sum::<f64>() / local.len().max(1) as f64;
    Ok(format!(
        "transitivity={trans:.6} avg_local_clustering={avg:.6}\n"
    ))
}

/// `julienne pagerank in=<file> [damping=0.85] [iters=100]`
pub fn cmd_pagerank(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let damping: f64 = a.get_or("damping", 0.85)?;
    if !(0.0..=1.0).contains(&damping) {
        return Err(usage_err(format!(
            "damping={damping} out of range (expected 0 <= damping <= 1)"
        )));
    }
    let iters: u32 = a.get_or("iters", 100)?;
    let backend = backend_opt(a)?;
    a.finish()?;
    let g: Graph = load(&input).map_err(runtime_err)?;
    require_nonempty(&g)?;
    let r = with_backend!(backend, g, CompressedGraph::from_csr, |gr| {
        pagerank(gr, damping, 1e-9, iters)
    });
    let mut top: Vec<(usize, f64)> = r.rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = format!("iterations={}\n", r.iterations);
    let _ = writeln!(out, "top vertices by rank:");
    for (v, score) in top.into_iter().take(5) {
        let _ = writeln!(out, "  v{v}: {score:.6}");
    }
    Ok(out)
}

/// `julienne setcover sets=<n> elements=<n> [mult=4] [eps=0.01] [seed=1]
/// [stats=none|json]`
pub fn cmd_setcover(a: &Args) -> CmdResult {
    let sets: usize = a.get_or("sets", 256)?;
    let elements: usize = a.get_or("elements", 16_384)?;
    let mult: usize = a.get_or("mult", 4)?;
    let eps: f64 = a.get_or("eps", 0.01)?;
    let seed: u64 = a.get_or("seed", 1)?;
    let backend = backend_opt(a)?;
    let (engine, emit_json) = stats_engine(a)?;
    a.finish()?;
    let mut inst = julienne_graph::generators::set_cover_instance(sets, elements, mult, seed);
    if backend == Backend::Compressed {
        // Set cover peels a packed (mutable) copy of the membership graph,
        // so the compressed backend routes the instance through a
        // compress/decompress round trip — same adjacency, proving the
        // byte-coded form carries the full structure.
        inst.graph = CompressedGraph::from_csr(&inst.graph).to_csr();
    }
    let r = julienne_algorithms::setcover::set_cover_julienne_with(&inst, eps, &engine);
    if !verify_cover(&inst, &r.cover) {
        return Err(runtime_err("internal error: produced cover is invalid"));
    }
    let mut out = format!(
        "cover: {}/{sets} sets over {elements} elements, rounds={}, valid=yes\n",
        r.cover.len(),
        r.rounds
    );
    if emit_json {
        let _ = writeln!(out, "{}", engine.snapshot().to_json("setcover"));
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "julienne — work-efficient bucketing for parallel graph algorithms (SPAA'17 reproduction)

USAGE: julienne <command> [key=value ...]

COMMANDS:
  gen         kind=<rmat|er|chunglu|grid|regular> out=<file.{adj,el,gr,bin}>
              [scale=14] [edge_factor=16] [seed=1] [symmetric=true] [weights=none|log|heavy]
  stats       in=<file> [weighted=false]
  convert     in=<file> out=<file> [weighted=false] [symmetrize=false]
  kcore       in=<file> [top=10] [stats=none|json]
  sssp        in=<weighted file> [src=0] [delta=32768] [algo=delta|wbfs|bellman|dijkstra]
              [stats=none|json]
  components  in=<file>
  densest     in=<file>
  triangles   in=<file>
  truss       in=<file> [top=5]
  clustering  in=<file>
  pagerank    in=<file> [damping=0.85] [iters=100]
  setcover    [sets=256] [elements=16384] [mult=4] [eps=0.01] [seed=1] [stats=none|json]
  help

Options may be written key=value, --key=value, or --key value.
threads=<n> (any command) sets the process-wide worker-thread count, like
the JULIENNE_NUM_THREADS environment variable; outputs are identical at
every thread count.
backend=<csr|compressed> (graph commands) selects the in-memory graph
representation: raw CSR arrays (default) or the Ligra+-style byte-coded
form built after loading. Outputs are identical for both backends.
stats=json appends one JSON object per run: accumulated counters plus a
per-round trace (round, bucket, frontier, edges scanned/relaxed,
sparse-vs-dense choice, elapsed microseconds).
"
    .to_string()
}

/// Dispatches a parsed command.
///
/// Two options are global. `threads=` is consumed here (before the
/// subcommand runs) and sets the process-wide worker-thread count, the same
/// knob as `JULIENNE_NUM_THREADS`. `backend=` is validated here and
/// re-read by the graph commands to pick the in-memory representation
/// (raw CSR vs byte-compressed). Neither affects any output, only speed
/// and space.
pub fn dispatch(a: &Args) -> CmdResult {
    let threads: usize = a.get_or("threads", 0)?;
    if threads > 0 {
        rayon::set_num_threads(threads);
    }
    backend_opt(a)?;
    match a.command.as_str() {
        "gen" => cmd_gen(a),
        "stats" => cmd_stats(a),
        "convert" => cmd_convert(a),
        "kcore" => cmd_kcore(a),
        "sssp" => cmd_sssp(a),
        "components" => cmd_components(a),
        "densest" => cmd_densest(a),
        "triangles" => cmd_triangles(a),
        "truss" => cmd_truss(a),
        "clustering" => cmd_clustering(a),
        "pagerank" => cmd_pagerank(a),
        "setcover" => cmd_setcover(a),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_classed(line: &str) -> CmdResult {
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let a = Args::parse(argv)?;
        dispatch(&a)
    }

    fn run(line: &str) -> Result<String, String> {
        run_classed(line).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("julienne-cli-{}-{name}", std::process::id()))
            .display()
            .to_string()
    }

    #[test]
    fn gen_stats_kcore_pipeline() {
        let f = tmp("a.bin");
        let r = run(&format!("gen kind=rmat scale=10 out={f}")).unwrap();
        assert!(r.contains("generated rmat"));
        let s = run(&format!("stats in={f}")).unwrap();
        assert!(s.contains("n=1024"));
        let k = run(&format!("kcore in={f} top=3")).unwrap();
        assert!(k.contains("k_max="));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn weighted_sssp_pipeline() {
        let f = tmp("w.bin");
        run(&format!(
            "gen kind=er scale=9 edge_factor=8 weights=log out={f}"
        ))
        .unwrap();
        for algo in ["delta", "wbfs", "bellman", "dijkstra"] {
            let out = run(&format!("sssp in={f} algo={algo} weighted=x"));
            // weighted=x is an unknown option: must be rejected.
            assert!(out.is_err(), "{algo}");
            let out = run(&format!("sssp in={f} algo={algo}")).unwrap();
            assert!(out.contains("reached="), "{algo}");
        }
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn components_and_densest() {
        let f = tmp("c.bin");
        run(&format!("gen kind=grid scale=10 out={f}")).unwrap();
        let c = run(&format!("components in={f}")).unwrap();
        assert!(c.contains("components=1"));
        let d = run(&format!("densest in={f}")).unwrap();
        assert!(d.contains("density"));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn setcover_runs_standalone() {
        let out = run("setcover sets=32 elements=1000 seed=3").unwrap();
        assert!(out.contains("valid=yes"));
    }

    #[test]
    fn stats_json_traces_for_all_bucketed_algorithms() {
        let f = tmp("j.bin");
        let fw = tmp("jw.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        run(&format!("gen kind=rmat scale=9 weights=log out={fw}")).unwrap();
        let k = run(&format!("kcore in={f} --stats json")).unwrap();
        assert!(k.contains("\"algorithm\":\"kcore\""), "{k}");
        assert!(k.contains("\"rounds\":["), "{k}");
        let s = run(&format!("sssp in={fw} algo=delta --stats=json")).unwrap();
        assert!(s.contains("\"algorithm\":\"sssp_delta\""), "{s}");
        let c = run("setcover sets=32 elements=1000 seed=3 stats=json").unwrap();
        assert!(c.contains("\"algorithm\":\"setcover\""), "{c}");
        // Per-round trace contents exist only when telemetry is compiled in;
        // a no-default-features build still emits the (empty) JSON envelope.
        #[cfg(feature = "telemetry")]
        {
            assert!(k.contains("\"edges_scanned\""), "{k}");
            assert!(s.contains("\"mode\":\"sparse\""), "{s}");
            assert!(c.contains("\"elapsed_us\""), "{c}");
        }
        // stats=none (default) emits no JSON.
        let plain = run(&format!("kcore in={f}")).unwrap();
        assert!(!plain.contains("\"algorithm\""));
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn convert_symmetrize() {
        let f1 = tmp("d.bin");
        let f2 = tmp("d.adj");
        run(&format!("gen kind=rmat scale=8 symmetric=false out={f1}")).unwrap();
        let out = run(&format!("convert in={f1} out={f2} symmetrize=true")).unwrap();
        assert!(out.contains("converted"));
        std::fs::remove_file(f1).ok();
        std::fs::remove_file(f2).ok();
    }

    #[test]
    fn triangles_truss_pagerank_pipeline() {
        let f = tmp("t.bin");
        run(&format!("gen kind=rmat scale=9 edge_factor=12 out={f}")).unwrap();
        let t = run(&format!("triangles in={f}")).unwrap();
        assert!(t.contains("triangles="));
        let k = run(&format!("truss in={f}")).unwrap();
        assert!(k.contains("max_truss="));
        let p = run(&format!("pagerank in={f}")).unwrap();
        assert!(p.contains("iterations="));
        let c = run(&format!("clustering in={f}")).unwrap();
        assert!(c.contains("transitivity="));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let e = run_classed("frobnicate").unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn error_classes_pick_the_right_exit_code() {
        // Invocation mistakes are usage errors (exit 2): bad option values
        // are knowable from argv alone.
        for bad in [
            "components in=x.bin backend=zip",
            "components in=x.bin threads=zzz",
            "sssp in=x.gr delta=0",
            "gen kind=nope out=x.bin",
        ] {
            let e = run_classed(bad).unwrap_err();
            assert!(matches!(e, CmdError::Usage(_)), "{bad}: {e:?}");
        }
        // Failures that depend on the filesystem or file contents are
        // runtime errors (exit 1).
        let e = run_classed("components in=/nonexistent/julienne-no-such.bin").unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn empty_graph_is_a_runtime_error() {
        let f = tmp("empty0.bin");
        let fw = tmp("empty0w.bin");
        let g = julienne_graph::builder::from_pairs(0, &[]);
        julienne_graph::io::write_binary(&g, std::path::Path::new(&f)).unwrap();
        let gw: Csr<u32> = julienne_graph::builder::EdgeList::new(0).build(false);
        julienne_graph::io::write_binary(&gw, std::path::Path::new(&fw)).unwrap();
        // With telemetry requested (the ISSUE's `--stats json` case) and
        // without: the guard fires before any algorithm runs.
        for line in [
            format!("kcore in={f} --stats json"),
            format!("sssp in={fw} --stats json"),
            format!("components in={f}"),
            format!("pagerank in={f}"),
        ] {
            let e = run_classed(&line).unwrap_err();
            assert!(matches!(e, CmdError::Runtime(_)), "{line}: {e:?}");
            assert!(e.to_string().contains("empty"), "{line}: {e}");
        }
        let e = run_classed(&format!("stats in={f}")).unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn help_works() {
        assert!(run("help").unwrap().contains("COMMANDS"));
    }

    #[test]
    fn oversized_scale_is_a_usage_error_not_a_panic() {
        let f = tmp("huge.bin");
        let e = run(&format!("gen kind=rmat scale=99 out={f}")).unwrap_err();
        assert!(e.contains("scale=99"), "{e}");
        assert!(e.contains("too large"), "{e}");
    }

    #[test]
    fn zero_delta_is_a_usage_error_not_a_panic() {
        let f = tmp("zd.bin");
        run(&format!("gen kind=rmat scale=8 weights=log out={f}")).unwrap();
        let e = run(&format!("sssp in={f} delta=0")).unwrap_err();
        assert!(e.contains("delta=0"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn bad_damping_is_a_usage_error_not_a_panic() {
        let f = tmp("bd.bin");
        run(&format!("gen kind=rmat scale=8 out={f}")).unwrap();
        for bad in ["damping=1.5", "damping=-0.1", "damping=NaN"] {
            let e = run(&format!("pagerank in={f} {bad}")).unwrap_err();
            assert!(e.contains("damping"), "{bad}: {e}");
        }
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn non_numeric_value_names_the_offending_token() {
        let e = run("gen kind=rmat scale=abc out=x.bin").unwrap_err();
        assert!(e.contains("scale"), "{e}");
        assert!(e.contains("abc"), "{e}");
    }

    #[test]
    fn compressed_backend_output_is_byte_identical() {
        let f = tmp("be.bin");
        let fw = tmp("bew.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        run(&format!("gen kind=rmat scale=9 weights=log out={fw}")).unwrap();
        // The four paper applications, at 1 and 4 threads: identical output
        // on both representations.
        for threads in [1usize, 4] {
            for cmd in [
                format!("kcore in={f}"),
                format!("sssp in={fw} algo=wbfs"),
                format!("sssp in={fw} algo=delta"),
                "setcover sets=64 elements=2000 seed=5".to_string(),
            ] {
                let csr = run(&format!("{cmd} threads={threads}")).unwrap();
                let comp = run(&format!("{cmd} threads={threads} backend=compressed")).unwrap();
                assert_eq!(csr, comp, "{cmd} threads={threads}");
            }
        }
        // The remaining graph commands accept the option too.
        for cmd in [
            format!("components in={f}"),
            format!("triangles in={f}"),
            format!("pagerank in={f}"),
        ] {
            let csr = run(&cmd).unwrap();
            let comp = run(&format!("{cmd} backend=compressed")).unwrap();
            assert_eq!(csr, comp, "{cmd}");
        }
        // A typo is rejected by every command, even ones that ignore it.
        let e = run(&format!("stats in={f} backend=zip")).unwrap_err();
        assert!(e.contains("backend"), "{e}");
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn stats_reports_memory_footprint() {
        let f = tmp("mf.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        let s = run(&format!("stats in={f}")).unwrap();
        assert!(s.contains("memory: csr="), "{s}");
        assert!(s.contains("B/edge"), "{s}");
        assert!(s.contains("ratio="), "{s}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn global_threads_option_is_accepted_by_any_command() {
        let f = tmp("th.bin");
        run(&format!("gen kind=rmat scale=8 out={f} threads=2")).unwrap();
        let out = run(&format!("components in={f} threads=1")).unwrap();
        assert!(out.contains("components="), "{out}");
        let e = run(&format!("components in={f} threads=zzz")).unwrap_err();
        assert!(e.contains("threads"), "{e}");
        std::fs::remove_file(f).ok();
    }
}
