//! CLI subcommand implementations. Each returns its report as a `String`
//! so commands are unit-testable without capturing stdout.
//!
//! The algorithm subcommands all route through the workspace
//! [`Registry`]: the CLI's job is only to load the graph representation
//! the algorithm needs, translate leftover `key=value` options into a
//! typed [`ParamMap`], and map the typed [`Error`] classes onto exit
//! codes. `julienne serve` exposes the same table over a local socket and
//! `julienne query` is its line-protocol client, so a query answered
//! directly and one answered by a server are byte-identical.

use crate::args::{ArgError, Args};
use julienne::prelude::{Backend, Engine, QueryCtx};
use julienne::Error;
use julienne_algorithms::registry::{GraphNeeds, GraphStore, ParamMap, Registry};
use julienne_algorithms::stats::graph_stats;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::container::MappedGraph;
use julienne_graph::generators::{chung_lu, erdos_renyi, grid2d, random_regular, rmat, RmatParams};
use julienne_graph::io::{Format, GraphIo, IoOptions};
use julienne_graph::transform::{assign_weights, symmetrize, wbfs_weight_range};
use julienne_graph::{Csr, Graph};
use julienne_server::json::Json;
use julienne_server::{query_request, Client, SchedPolicy, SchedulerConfig, Server};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Why a command failed — the class decides the exit code and whether the
/// usage text is appended. [`CmdError::Usage`] means the *invocation* was
/// wrong (bad option value, unknown command): exit 2. [`CmdError::Runtime`]
/// means the invocation was fine but the work failed (unreadable file,
/// empty graph, asymmetric input, expired deadline): exit 1. Both print
/// usage so a failing run always shows the correct invocation forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmdError {
    Usage(String),
    Runtime(String),
}

impl CmdError {
    /// Exit code for this error class (2 = usage, 1 = runtime).
    pub fn exit_code(&self) -> i32 {
        match self {
            CmdError::Usage(_) => 2,
            CmdError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Usage(m) | CmdError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Usage(e.to_string())
    }
}

impl From<Error> for CmdError {
    /// The workspace error enum maps onto the CLI's two exit classes by
    /// its wire code: `usage` → exit 2, everything else (io, parse, input,
    /// cancelled, deadline) → exit 1.
    fn from(e: Error) -> Self {
        if e.is_usage() {
            CmdError::Usage(e.to_string())
        } else {
            CmdError::Runtime(e.to_string())
        }
    }
}

fn usage_err(msg: impl Into<String>) -> CmdError {
    CmdError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CmdError {
    CmdError::Runtime(msg.into())
}

pub type CmdResult = Result<String, CmdError>;

/// Reads the global `backend=<csr|compressed|mapped>` option. Validated
/// once in [`dispatch`]; the graph commands re-read it here to route their
/// loads through [`GraphStore::open`].
fn backend_opt(a: &Args) -> Result<Backend, CmdError> {
    Ok(Backend::parse(&a.string_or("backend", "csr"))?)
}

/// Loads with format auto-detection (extension, then magic bytes).
fn load<W: julienne_graph::csr::Weight>(path: &Path) -> Result<Csr<W>, Error> {
    GraphIo::read(path, &IoOptions::default())
}

/// Saves in the extension-selected format.
fn save<W: julienne_graph::csr::Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    GraphIo::write(g, path, &IoOptions::default())
}

/// Rejects 0-vertex graphs before computing statistics on them.
fn require_nonempty<W: julienne_graph::csr::Weight>(g: &Csr<W>) -> Result<(), CmdError> {
    if g.num_vertices() == 0 {
        Err(runtime_err(
            "graph is empty (0 vertices); nothing to compute",
        ))
    } else {
        Ok(())
    }
}

/// Builds the per-invocation [`QueryCtx`] from the global options:
/// `stats=<none|json>` selects the telemetry scope and JSON trace, and
/// `timeout_ms=<n>` arms a deadline (a run past it exits with a runtime
/// error, the same `deadline` class a served query reports).
fn query_ctx(a: &Args) -> Result<QueryCtx, CmdError> {
    let stats = a.string_or("stats", "none");
    let mut ctx = match stats.as_str() {
        "none" => QueryCtx::default(),
        "json" => {
            QueryCtx::from_engine(&Engine::builder().telemetry(true).build()).with_stats(true)
        }
        other => {
            return Err(usage_err(format!(
                "unknown stats mode {other:?} (expected none|json)"
            )))
        }
    };
    if let Some(ms) = a.optional::<u64>("timeout_ms")? {
        ctx = ctx.with_deadline(Duration::from_millis(ms));
    }
    Ok(ctx)
}

/// Runs any registered algorithm: loads the representation its spec needs,
/// forwards every option the global getters didn't consume as typed
/// parameters, and dispatches through the same [`Registry`] table the
/// query server uses.
fn cmd_algo(a: &Args) -> CmdResult {
    let id = a.command.clone();
    let spec = Registry::standard()
        .get(&id)
        .expect("dispatch routes only registered ids here");
    let backend = backend_opt(a)?;
    let ctx = query_ctx(a)?;
    let loaded: Result<GraphStore, Error> = match spec.needs {
        GraphNeeds::None => Ok(GraphStore::Empty { backend }),
        GraphNeeds::Unweighted => {
            let input = PathBuf::from(a.require("in")?);
            GraphStore::open(&input, false, backend)
        }
        GraphNeeds::Weighted => {
            let input = PathBuf::from(a.require("in")?);
            GraphStore::open(&input, true, backend)
        }
    };
    let params = ParamMap::from_pairs(a.remaining());
    let store = match loaded {
        Ok(s) => s,
        Err(load_err) => {
            // Parameter mistakes are knowable from argv alone; report them
            // ahead of filesystem failures by probing against an empty
            // store (the registry validates params before touching the
            // graph, so nothing actually runs).
            let probe =
                Registry::standard().run(&id, &GraphStore::Empty { backend }, &params, &ctx);
            return match probe {
                Err(e) if e.is_usage() => Err(e.into()),
                _ => Err(load_err.into()),
            };
        }
    };
    Ok(Registry::standard().run(&id, &store, &params, &ctx)?)
}

/// `julienne gen kind=<rmat|er|chunglu|grid|regular> out=<file> [scale=14]
/// [edge_factor=16] [seed=1] [symmetric=true] [weights=none|log|heavy]`
pub fn cmd_gen(a: &Args) -> CmdResult {
    let kind = a.require("kind")?;
    let out = PathBuf::from(a.require("out")?);
    let scale: u32 = a.get_or("scale", 14)?;
    let ef: usize = a.get_or("edge_factor", 16)?;
    let seed: u64 = a.get_or("seed", 1)?;
    let symmetric: bool = a.get_or("symmetric", true)?;
    let weights = a.string_or("weights", "none");
    a.finish()?;

    if scale >= usize::BITS {
        return Err(usage_err(format!(
            "scale={scale} is too large (2^scale vertices must fit in usize; max scale is {})",
            usize::BITS - 1
        )));
    }
    let n = 1usize << scale;
    let g: Graph = match kind.as_str() {
        "rmat" => rmat(scale, ef, RmatParams::default(), seed, symmetric),
        "er" => erdos_renyi(n, ef * n, seed, symmetric),
        "chunglu" => chung_lu(n, ef * n, 2.2, seed, symmetric),
        "regular" => random_regular(n, ef, seed, symmetric),
        "grid" => {
            let side = (n as f64).sqrt() as usize;
            grid2d(side, side)
        }
        other => return Err(usage_err(format!("unknown generator {other:?}"))),
    };
    let mut report = format!(
        "generated {kind}: n={} m={} symmetric={}\n",
        g.num_vertices(),
        g.num_edges(),
        g.is_symmetric()
    );
    match weights.as_str() {
        "none" => save(&g, &out)?,
        "log" => {
            let (lo, hi) = wbfs_weight_range(g.num_vertices());
            save(&assign_weights(&g, lo, hi, seed ^ 0xF00D), &out)?;
            let _ = writeln!(report, "weights: uniform [{lo}, {hi})");
        }
        "heavy" => {
            save(&assign_weights(&g, 1, 100_000, seed ^ 0xF00D), &out)?;
            let _ = writeln!(report, "weights: uniform [1, 100000)");
        }
        other => return Err(usage_err(format!("unknown weights mode {other:?}"))),
    }
    let _ = writeln!(report, "wrote {}", out.display());
    Ok(report)
}

/// `julienne stats in=<file> [weighted=false]`
///
/// Besides the Table 2 statistics, reports the memory footprint of both
/// backends: raw CSR bytes and byte-compressed bytes, each per edge, plus
/// the compression ratio.
pub fn cmd_stats(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let weighted: bool = a.get_or("weighted", false)?;
    a.finish()?;
    let (s, csr_bytes, compressed_bytes) = if weighted {
        let g: Csr<u32> = load(&input)?;
        require_nonempty(&g)?;
        let c = CompressedWGraph::from_csr(&g);
        (graph_stats(&g), g.footprint_bytes(), c.footprint_bytes())
    } else {
        let g: Graph = load(&input)?;
        require_nonempty(&g)?;
        let c = CompressedGraph::from_csr(&g);
        (graph_stats(&g), g.footprint_bytes(), c.footprint_bytes())
    };
    let m = s.num_edges.max(1) as f64;
    let mut out = format!(
        "n={} m={} rho={} k_max={} max_degree={} ecc(0)={}\n",
        s.num_vertices,
        s.num_edges,
        s.rho.map(|x| x.to_string()).unwrap_or("-".into()),
        s.k_max.map(|x| x.to_string()).unwrap_or("-".into()),
        s.max_degree,
        s.eccentricity_from_zero
    );
    let _ = writeln!(
        out,
        "memory: csr={csr_bytes}B ({:.2} B/edge) compressed={compressed_bytes}B ({:.2} B/edge) ratio={:.2}x",
        csr_bytes as f64 / m,
        compressed_bytes as f64 / m,
        csr_bytes as f64 / compressed_bytes.max(1) as f64
    );
    Ok(out)
}

/// `julienne convert in=<file> out=<file> [weighted=false] [symmetrize=false]
/// [compressed_payload=false] [verify=false]`
///
/// Converts between any two supported formats (the output format comes
/// from the output extension). Writing a `.jgr` container with
/// `compressed_payload=true` embeds the Ligra+-style byte-compressed
/// adjacency next to the CSR sections, so `backend=compressed` later loads
/// the pre-encoded blocks verbatim. `verify=true` re-reads the written
/// file — for containers this checks every section checksum and validates
/// offsets/targets, the O(file) counterpart of the O(1) open.
pub fn cmd_convert(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let out = PathBuf::from(a.require("out")?);
    let weighted: bool = a.get_or("weighted", false)?;
    let make_sym: bool = a.get_or("symmetrize", false)?;
    let compressed_payload: bool = a.get_or("compressed_payload", false)?;
    let verify: bool = a.get_or("verify", false)?;
    a.finish()?;
    let out_fmt = Format::from_extension(&out).ok_or_else(|| {
        usage_err(format!(
            "cannot infer output format from {:?} (use .adj/.el/.gr/.bin/.metis/.jgr)",
            out.display()
        ))
    })?;
    if compressed_payload && out_fmt != Format::Container {
        return Err(usage_err(
            "compressed_payload=true only applies to .jgr container output",
        ));
    }
    let write_opts = IoOptions {
        format: Some(out_fmt),
        compressed_payload,
        ..Default::default()
    };
    let (m, kind) = if weighted {
        let mut g: Csr<u32> = load(&input)?;
        if make_sym {
            g = symmetrize(&g);
        }
        GraphIo::write(&g, &out, &write_opts)?;
        if verify {
            verify_written::<u32>(&out, out_fmt)?;
        }
        (g.num_edges(), "weighted, ")
    } else {
        let mut g: Graph = load(&input)?;
        if make_sym {
            g = symmetrize(&g);
        }
        GraphIo::write(&g, &out, &write_opts)?;
        if verify {
            verify_written::<()>(&out, out_fmt)?;
        }
        (g.num_edges(), "")
    };
    let mut report = format!(
        "converted {} -> {} ({kind}format={out_fmt}, m={m})\n",
        input.display(),
        out.display(),
    );
    if compressed_payload {
        let _ = writeln!(report, "embedded byte-compressed payload sections");
    }
    if verify {
        let _ = writeln!(report, "verified: output reads back clean");
    }
    Ok(report)
}

/// Re-reads a just-written file. Containers get the full checksum +
/// structure pass; other formats are simply parsed back.
fn verify_written<W: julienne_graph::csr::Weight>(
    out: &Path,
    out_fmt: Format,
) -> Result<(), Error> {
    if out_fmt == Format::Container {
        MappedGraph::<W>::open(out)?.verify(out)
    } else {
        load::<W>(out).map(|_| ())
    }
}

/// `julienne serve in=<file> [weighted=true] [addr=127.0.0.1:0]
/// [open_buckets=128] [backend=csr|compressed|mapped]
/// [batch_window_ms=0] [cache_bytes=0] [scheduler=fifo|priority]`
///
/// Loads the graph once, prints `listening on <addr>`, and answers
/// line-delimited JSON queries until a `{"shutdown": true}` request
/// arrives (see `julienne query`). All queries share the one immutable
/// in-memory graph; each carries its own deadline and cancellation token.
/// With `backend=mapped` and a `.jgr` input the graph is served straight
/// from the memory-mapped file — the server is listening within
/// milliseconds regardless of graph size.
///
/// `batch_window_ms` holds compatible queries for coalescing into one
/// fused run (responses gain `"batched": true`), `cache_bytes` arms the
/// result cache (hits answer with `"cached": true`), and `scheduler`
/// picks the dispatch order (`priority` runs cheap algorithms ahead of
/// expensive ones). The defaults keep all three features off.
pub fn cmd_serve(a: &Args) -> CmdResult {
    let input = PathBuf::from(a.require("in")?);
    let weighted: bool = a.get_or("weighted", true)?;
    let addr = a.string_or("addr", "127.0.0.1:0");
    let open_buckets: usize = a.get_or("open_buckets", 0)?;
    let backend = backend_opt(a)?;
    let batch_window_ms: u64 = a.get_or("batch_window_ms", 0)?;
    let cache_bytes: usize = a.get_or("cache_bytes", 0)?;
    let policy_name = a.string_or("scheduler", "fifo");
    let Some(policy) = SchedPolicy::parse(&policy_name) else {
        return Err(usage_err(format!(
            "unknown scheduler {policy_name:?} (expected fifo|priority)"
        )));
    };
    a.finish()?;
    let config = SchedulerConfig {
        batch_window: Duration::from_millis(batch_window_ms),
        cache_bytes,
        policy,
    };
    let store = GraphStore::open(&input, weighted, backend)?;
    if store.num_vertices() == 0 {
        return Err(runtime_err("graph is empty (0 vertices); nothing to serve"));
    }
    let engine = if open_buckets > 0 {
        Engine::builder().open_buckets(open_buckets).build()
    } else {
        Engine::default()
    };
    let (n, m) = (store.num_vertices(), store.num_edges());
    let server = Server::bind_with(&addr, &engine, store, config)
        .map_err(|e| runtime_err(format!("cannot bind {addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| runtime_err(e.to_string()))?;
    // Printed (and flushed) before blocking so clients can scrape the
    // bound address even when addr=127.0.0.1:0 picked a free port.
    println!(
        "listening on {local} (n={n} m={m} weighted={weighted} backend={})",
        backend.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .serve()
        .map_err(|e| runtime_err(format!("serve: {e}")))?;
    Ok("server stopped\n".to_string())
}

/// `julienne query addr=<host:port> algo=<id> [id=q0] [timeout_ms=<n>]
/// [stats=false] [algorithm params...]`, or `query addr=... cancel=<id>`,
/// or `query addr=... shutdown=true`.
///
/// One-shot client for `julienne serve`: sends a single request line and
/// prints the response. Server-side errors keep their class — a usage
/// error on the server is a usage error (exit 2) here.
pub fn cmd_query(a: &Args) -> CmdResult {
    let addr = a.require("addr")?;
    let connect =
        |addr: &str| Client::connect(addr).map_err(|e| runtime_err(format!("connect {addr}: {e}")));
    let wire = |e: std::io::Error| runtime_err(format!("query {addr}: {e}"));

    if a.get_or("shutdown", false)? {
        a.finish()?;
        let resp = connect(&addr)?
            .roundtrip(&Json::Obj(vec![("shutdown".into(), Json::Bool(true))]))
            .map_err(wire)?;
        return if resp.get("shutdown").and_then(Json::as_bool) == Some(true) {
            Ok("server acknowledged shutdown\n".to_string())
        } else {
            Err(runtime_err(format!(
                "unexpected shutdown response: {}",
                resp.to_json()
            )))
        };
    }

    let cancel = a.string_or("cancel", "");
    if !cancel.is_empty() {
        a.finish()?;
        let resp = connect(&addr)?
            .roundtrip(&Json::Obj(vec![(
                "cancel".into(),
                Json::Str(cancel.clone()),
            )]))
            .map_err(wire)?;
        return if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(format!("cancel acknowledged for {cancel}\n"))
        } else {
            Err(runtime_err(format!(
                "unexpected cancel response: {}",
                resp.to_json()
            )))
        };
    }

    let algo = a.require("algo")?;
    let id = a.string_or("id", "q0");
    let timeout: Option<u64> = a.optional("timeout_ms")?;
    let stats: bool = a.get_or("stats", false)?;
    // An algorithm parameter whose name collides with one of this
    // subcommand's own options (sssp's `algo=`, say) can be spelled with a
    // `param.` prefix; the prefix is stripped before the pair goes on the
    // wire.
    let params: Vec<(String, String)> = a
        .remaining()
        .into_iter()
        .map(|(k, v)| match k.strip_prefix("param.") {
            Some(stripped) => (stripped.to_string(), v),
            None => (k, v),
        })
        .collect();
    let param_refs: Vec<(&str, &str)> = params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let request = query_request(&id, &algo, &param_refs, timeout, stats);

    let resp = connect(&addr)?.roundtrip(&request).map_err(wire)?;
    match resp.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(resp
            .get("output")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()),
        _ => {
            let code = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let message = resp
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("unrecognized server response");
            let text = format!("server error ({code}): {message}");
            if code == "usage" {
                Err(usage_err(text))
            } else {
                Err(runtime_err(text))
            }
        }
    }
}

/// Usage text.
pub fn usage() -> String {
    "julienne — work-efficient bucketing for parallel graph algorithms (SPAA'17 reproduction)

USAGE: julienne <command> [key=value ...]

COMMANDS:
  gen         kind=<rmat|er|chunglu|grid|regular> out=<file.{adj,el,gr,bin,jgr}>
              [scale=14] [edge_factor=16] [seed=1] [symmetric=true] [weights=none|log|heavy]
  stats       in=<file> [weighted=false]
  convert     in=<file> out=<file> [weighted=false] [symmetrize=false]
              [compressed_payload=false] [verify=false]
              output format follows the output extension; out=<file.jgr>
              writes the mmap-ready container (compressed_payload=true
              embeds the byte-compressed adjacency; verify=true re-reads
              the output and checks every section checksum)
  kcore       in=<file> [top=10] [stats=none|json]
  sssp        in=<weighted file> [src=0] [delta=32768] [algo=delta|wbfs|bellman|dijkstra]
              [stats=none|json]
  components  in=<file>
  densest     in=<file>
  triangles   in=<file>
  truss       in=<file> [top=5]
  clustering  in=<file>
  pagerank    in=<file> [damping=0.85] [iters=100]
  setcover    [sets=256] [elements=16384] [mult=4] [eps=0.01] [seed=1] [stats=none|json]
  serve       in=<file> [weighted=true] [addr=127.0.0.1:0] [open_buckets=128]
              [batch_window_ms=0] [cache_bytes=0] [scheduler=fifo|priority]
              loads the graph once and answers concurrent queries over a local
              socket (line-delimited JSON; see `query`); batch_window_ms>0
              coalesces compatible queries into one fused run (multi-source
              sssp lanes, whole-graph fan-out; responses gain \"batched\":true),
              cache_bytes>0 arms an LRU result cache (hits answer with
              \"cached\":true), scheduler=priority dispatches cheap algorithms
              ahead of expensive ones
  query       addr=<host:port> algo=<id> [id=q0] [timeout_ms=<n>] [stats=false]
              [params...] — or addr=... cancel=<id>, or addr=... shutdown=true
              (prefix a param with `param.` if its name collides with an
              option above, e.g. algo=sssp param.algo=wbfs)
  help

Options may be written key=value, --key=value, or --key value.
threads=<n> (any command) sets the process-wide worker-thread count, like
the JULIENNE_NUM_THREADS environment variable; outputs are identical at
every thread count.
backend=<csr|compressed|mapped> (graph commands) selects the graph
representation: raw CSR arrays (default), the Ligra+-style byte-coded form
(loaded verbatim from a .jgr compressed payload when present, else built
after loading), or zero-copy memory-mapping (requires a .jgr input; opening
does no per-edge work). Outputs are identical for every backend.
Graph files are detected by extension (.adj/.el/.txt/.gr/.metis/.graph/
.bin/.jgr), falling back to magic-byte sniffing for unknown extensions.
stats=json appends one JSON object per run: accumulated counters plus a
per-round trace (round, bucket, frontier, edges scanned/relaxed,
sparse-vs-dense choice, elapsed microseconds).
timeout_ms=<n> (algorithm commands) arms a deadline; a run that passes it
stops at the next round boundary with a `deadline` error (exit 1).
"
    .to_string()
}

/// Dispatches a parsed command.
///
/// Two options are global. `threads=` is consumed here (before the
/// subcommand runs) and sets the process-wide worker-thread count, the same
/// knob as `JULIENNE_NUM_THREADS`. `backend=` is validated here and
/// re-read by the graph commands to pick the graph representation (raw
/// CSR, byte-compressed, or mmap'd container). Neither affects any
/// output, only speed and space. Algorithm ids resolve through [`Registry::standard`], the
/// same table `julienne serve` dispatches from.
pub fn dispatch(a: &Args) -> CmdResult {
    let threads: usize = a.get_or("threads", 0)?;
    if threads > 0 {
        rayon::set_num_threads(threads);
    }
    backend_opt(a)?;
    match a.command.as_str() {
        "gen" => cmd_gen(a),
        "stats" => cmd_stats(a),
        "convert" => cmd_convert(a),
        "serve" => cmd_serve(a),
        "query" => cmd_query(a),
        "help" | "--help" | "-h" => Ok(usage()),
        id if Registry::standard().get(id).is_some() => cmd_algo(a),
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_classed(line: &str) -> CmdResult {
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let a = Args::parse(argv)?;
        dispatch(&a)
    }

    fn run(line: &str) -> Result<String, String> {
        run_classed(line).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("julienne-cli-{}-{name}", std::process::id()))
            .display()
            .to_string()
    }

    #[test]
    fn gen_stats_kcore_pipeline() {
        let f = tmp("a.bin");
        let r = run(&format!("gen kind=rmat scale=10 out={f}")).unwrap();
        assert!(r.contains("generated rmat"));
        let s = run(&format!("stats in={f}")).unwrap();
        assert!(s.contains("n=1024"));
        let k = run(&format!("kcore in={f} top=3")).unwrap();
        assert!(k.contains("k_max="));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn weighted_sssp_pipeline() {
        let f = tmp("w.bin");
        run(&format!(
            "gen kind=er scale=9 edge_factor=8 weights=log out={f}"
        ))
        .unwrap();
        for algo in ["delta", "wbfs", "bellman", "dijkstra"] {
            let out = run(&format!("sssp in={f} algo={algo} weighted=x"));
            // weighted=x is an unknown option: must be rejected.
            assert!(out.is_err(), "{algo}");
            let out = run(&format!("sssp in={f} algo={algo}")).unwrap();
            assert!(out.contains("reached="), "{algo}");
        }
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn components_and_densest() {
        let f = tmp("c.bin");
        run(&format!("gen kind=grid scale=10 out={f}")).unwrap();
        let c = run(&format!("components in={f}")).unwrap();
        assert!(c.contains("components=1"));
        let d = run(&format!("densest in={f}")).unwrap();
        assert!(d.contains("density"));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn setcover_runs_standalone() {
        let out = run("setcover sets=32 elements=1000 seed=3").unwrap();
        assert!(out.contains("valid=yes"));
    }

    #[test]
    fn stats_json_traces_for_all_bucketed_algorithms() {
        let f = tmp("j.bin");
        let fw = tmp("jw.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        run(&format!("gen kind=rmat scale=9 weights=log out={fw}")).unwrap();
        let k = run(&format!("kcore in={f} --stats json")).unwrap();
        assert!(k.contains("\"algorithm\":\"kcore\""), "{k}");
        assert!(k.contains("\"rounds\":["), "{k}");
        let s = run(&format!("sssp in={fw} algo=delta --stats=json")).unwrap();
        assert!(s.contains("\"algorithm\":\"sssp_delta\""), "{s}");
        let c = run("setcover sets=32 elements=1000 seed=3 stats=json").unwrap();
        assert!(c.contains("\"algorithm\":\"setcover\""), "{c}");
        // Per-round trace contents exist only when telemetry is compiled in;
        // a no-default-features build still emits the (empty) JSON envelope.
        #[cfg(feature = "telemetry")]
        {
            assert!(k.contains("\"edges_scanned\""), "{k}");
            assert!(s.contains("\"mode\":\"sparse\""), "{s}");
            assert!(c.contains("\"elapsed_us\""), "{c}");
        }
        // stats=none (default) emits no JSON.
        let plain = run(&format!("kcore in={f}")).unwrap();
        assert!(!plain.contains("\"algorithm\""));
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn convert_symmetrize() {
        let f1 = tmp("d.bin");
        let f2 = tmp("d.adj");
        run(&format!("gen kind=rmat scale=8 symmetric=false out={f1}")).unwrap();
        let out = run(&format!("convert in={f1} out={f2} symmetrize=true")).unwrap();
        assert!(out.contains("converted"));
        std::fs::remove_file(f1).ok();
        std::fs::remove_file(f2).ok();
    }

    #[test]
    fn triangles_truss_pagerank_pipeline() {
        let f = tmp("t.bin");
        run(&format!("gen kind=rmat scale=9 edge_factor=12 out={f}")).unwrap();
        let t = run(&format!("triangles in={f}")).unwrap();
        assert!(t.contains("triangles="));
        let k = run(&format!("truss in={f}")).unwrap();
        assert!(k.contains("max_truss="));
        let p = run(&format!("pagerank in={f}")).unwrap();
        assert!(p.contains("iterations="));
        let c = run(&format!("clustering in={f}")).unwrap();
        assert!(c.contains("transitivity="));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let e = run_classed("frobnicate").unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn error_classes_pick_the_right_exit_code() {
        // Invocation mistakes are usage errors (exit 2): bad option values
        // are knowable from argv alone — even when the input file is also
        // missing, the parameter mistake is reported first.
        for bad in [
            "components in=x.bin backend=zip",
            "components in=x.bin threads=zzz",
            "sssp in=x.gr delta=0",
            "gen kind=nope out=x.bin",
        ] {
            let e = run_classed(bad).unwrap_err();
            assert!(matches!(e, CmdError::Usage(_)), "{bad}: {e:?}");
        }
        // Failures that depend on the filesystem or file contents are
        // runtime errors (exit 1).
        let e = run_classed("components in=/nonexistent/julienne-no-such.bin").unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn empty_graph_is_a_runtime_error() {
        let f = tmp("empty0.bin");
        let fw = tmp("empty0w.bin");
        let g = julienne_graph::builder::from_pairs(0, &[]);
        save(&g, Path::new(&f)).unwrap();
        let gw: Csr<u32> = julienne_graph::builder::EdgeList::new(0).build(false);
        save(&gw, Path::new(&fw)).unwrap();
        // With telemetry requested (the ISSUE's `--stats json` case) and
        // without: the guard fires before any algorithm runs.
        for line in [
            format!("kcore in={f} --stats json"),
            format!("sssp in={fw} --stats json"),
            format!("components in={f}"),
            format!("pagerank in={f}"),
        ] {
            let e = run_classed(&line).unwrap_err();
            assert!(matches!(e, CmdError::Runtime(_)), "{line}: {e:?}");
            assert!(e.to_string().contains("empty"), "{line}: {e}");
        }
        let e = run_classed(&format!("stats in={f}")).unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn help_works() {
        assert!(run("help").unwrap().contains("COMMANDS"));
    }

    #[test]
    fn oversized_scale_is_a_usage_error_not_a_panic() {
        let f = tmp("huge.bin");
        let e = run(&format!("gen kind=rmat scale=99 out={f}")).unwrap_err();
        assert!(e.contains("scale=99"), "{e}");
        assert!(e.contains("too large"), "{e}");
    }

    #[test]
    fn zero_delta_is_a_usage_error_not_a_panic() {
        let f = tmp("zd.bin");
        run(&format!("gen kind=rmat scale=8 weights=log out={f}")).unwrap();
        let e = run(&format!("sssp in={f} delta=0")).unwrap_err();
        assert!(e.contains("delta=0"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn bad_damping_is_a_usage_error_not_a_panic() {
        let f = tmp("bd.bin");
        run(&format!("gen kind=rmat scale=8 out={f}")).unwrap();
        for bad in ["damping=1.5", "damping=-0.1", "damping=NaN"] {
            let e = run(&format!("pagerank in={f} {bad}")).unwrap_err();
            assert!(e.contains("damping"), "{bad}: {e}");
        }
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn non_numeric_value_names_the_offending_token() {
        let e = run("gen kind=rmat scale=abc out=x.bin").unwrap_err();
        assert!(e.contains("scale"), "{e}");
        assert!(e.contains("abc"), "{e}");
    }

    #[test]
    fn unknown_algorithm_param_names_the_algorithm() {
        let f = tmp("up.bin");
        run(&format!("gen kind=rmat scale=8 out={f}")).unwrap();
        let e = run_classed(&format!("kcore in={f} bogus=1")).unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert!(e.to_string().contains("kcore"), "{e}");
        assert!(e.to_string().contains("bogus"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn expired_cli_deadline_is_a_runtime_error() {
        let f = tmp("ddl.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        // timeout_ms=0 is an already-expired deadline: deterministic.
        let e = run_classed(&format!("kcore in={f} timeout_ms=0")).unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        assert!(e.to_string().contains("deadline"), "{e}");
        // Without the option the same invocation succeeds.
        run(&format!("kcore in={f}")).unwrap();
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn compressed_backend_output_is_byte_identical() {
        let f = tmp("be.bin");
        let fw = tmp("bew.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        run(&format!("gen kind=rmat scale=9 weights=log out={fw}")).unwrap();
        // The four paper applications, at 1 and 4 threads: identical output
        // on both representations.
        for threads in [1usize, 4] {
            for cmd in [
                format!("kcore in={f}"),
                format!("sssp in={fw} algo=wbfs"),
                format!("sssp in={fw} algo=delta"),
                "setcover sets=64 elements=2000 seed=5".to_string(),
            ] {
                let csr = run(&format!("{cmd} threads={threads}")).unwrap();
                let comp = run(&format!("{cmd} threads={threads} backend=compressed")).unwrap();
                assert_eq!(csr, comp, "{cmd} threads={threads}");
            }
        }
        // The remaining graph commands accept the option too.
        for cmd in [
            format!("components in={f}"),
            format!("triangles in={f}"),
            format!("pagerank in={f}"),
        ] {
            let csr = run(&cmd).unwrap();
            let comp = run(&format!("{cmd} backend=compressed")).unwrap();
            assert_eq!(csr, comp, "{cmd}");
        }
        // A typo is rejected by every command, even ones that ignore it.
        let e = run(&format!("stats in={f} backend=zip")).unwrap_err();
        assert!(e.contains("backend"), "{e}");
        std::fs::remove_file(f).ok();
        std::fs::remove_file(fw).ok();
    }

    #[test]
    fn convert_text_to_container_and_back_is_identity() {
        let f = tmp("cc.el");
        let j = tmp("cc.jgr");
        let back = tmp("cc-back.el");
        run(&format!("gen kind=rmat scale=8 out={f}")).unwrap();
        let r = run(&format!("convert in={f} out={j} verify=true")).unwrap();
        assert!(r.contains("format=jgr"), "{r}");
        assert!(r.contains("verified"), "{r}");
        run(&format!("convert in={j} out={back}")).unwrap();
        assert_eq!(
            std::fs::read_to_string(&f).unwrap(),
            std::fs::read_to_string(&back).unwrap(),
            "text -> .jgr -> text must be the identity"
        );
        for p in [f, j, back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn convert_options_are_validated() {
        let f = tmp("cv.el");
        run(&format!("gen kind=rmat scale=7 out={f}")).unwrap();
        // compressed_payload only makes sense for container output.
        let e = run(&format!(
            "convert in={f} out=/tmp/x.bin compressed_payload=true"
        ))
        .unwrap_err();
        assert!(e.contains("compressed_payload"), "{e}");
        // Unknown output extension is a usage error naming the options.
        let e = run_classed(&format!("convert in={f} out=/tmp/x.xyz")).unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert!(e.to_string().contains(".jgr"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn mapped_backend_requires_a_container() {
        let f = tmp("mpreq.bin");
        run(&format!("gen kind=rmat scale=7 out={f}")).unwrap();
        let e = run_classed(&format!("kcore in={f} backend=mapped")).unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert!(e.to_string().contains("convert"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn mapped_backend_output_is_byte_identical() {
        let f = tmp("mb.bin");
        let j = tmp("mb.jgr");
        let fw = tmp("mbw.bin");
        let jw = tmp("mbw.jgr");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        run(&format!("gen kind=rmat scale=9 weights=log out={fw}")).unwrap();
        run(&format!("convert in={f} out={j} compressed_payload=true")).unwrap();
        run(&format!(
            "convert in={fw} out={jw} weighted=true compressed_payload=true"
        ))
        .unwrap();
        for (csr_cmd, jgr_cmd) in [
            (format!("kcore in={f}"), format!("kcore in={j}")),
            (format!("components in={f}"), format!("components in={j}")),
            (format!("pagerank in={f}"), format!("pagerank in={j}")),
            (
                format!("sssp in={fw} algo=delta"),
                format!("sssp in={jw} algo=delta"),
            ),
        ] {
            let base = run(&csr_cmd).unwrap();
            // The same container answers all three backends identically:
            // CSR (materialized), compressed (payload loaded verbatim),
            // and mapped (zero-copy).
            for backend in ["csr", "compressed", "mapped"] {
                let got = run(&format!("{jgr_cmd} backend={backend}")).unwrap();
                assert_eq!(base, got, "{jgr_cmd} backend={backend}");
            }
        }
        for p in [f, j, fw, jw] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn stats_reports_memory_footprint() {
        let f = tmp("mf.bin");
        run(&format!("gen kind=rmat scale=9 out={f}")).unwrap();
        let s = run(&format!("stats in={f}")).unwrap();
        assert!(s.contains("memory: csr="), "{s}");
        assert!(s.contains("B/edge"), "{s}");
        assert!(s.contains("ratio="), "{s}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn global_threads_option_is_accepted_by_any_command() {
        let f = tmp("th.bin");
        run(&format!("gen kind=rmat scale=8 out={f} threads=2")).unwrap();
        let out = run(&format!("components in={f} threads=1")).unwrap();
        assert!(out.contains("components="), "{out}");
        let e = run(&format!("components in={f} threads=zzz")).unwrap_err();
        assert!(e.contains("threads"), "{e}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn serve_requires_an_existing_input() {
        let e = run_classed("serve in=/nonexistent/julienne-no-such.bin").unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
    }

    #[test]
    fn query_subcommand_talks_to_a_live_server() {
        use julienne_graph::generators::rmat;
        use julienne_graph::transform::assign_weights;
        let g = assign_weights(&rmat(7, 8, RmatParams::default(), 5, true), 1, 64, 9);
        let store = GraphStore::from_weighted(g, Backend::Csr);
        let server = Server::bind("127.0.0.1:0", &Engine::default(), store).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let join = std::thread::spawn(move || server.serve().unwrap());

        // A served answer is byte-identical to the direct command's report
        // body (same registry entry on both paths).
        let out = run(&format!("query addr={addr} algo=kcore top=2")).unwrap();
        assert!(out.contains("k_max="), "{out}");

        // `param.` prefix escapes collisions with the subcommand's own
        // options: sssp's variant selector is also spelled `algo=`.
        let out = run(&format!(
            "query addr={addr} algo=sssp param.algo=wbfs src=2"
        ))
        .unwrap();
        assert!(out.contains("reached="), "{out}");

        // Server-side error classes survive the wire: usage stays exit 2...
        let e = run_classed(&format!("query addr={addr} algo=frobnicate")).unwrap_err();
        assert!(matches!(e, CmdError::Usage(_)), "{e:?}");
        assert_eq!(e.exit_code(), 2);

        // ...and an expired deadline is a runtime error naming the class.
        let e = run_classed(&format!("query addr={addr} algo=kcore timeout_ms=0")).unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
        assert!(e.to_string().contains("deadline"), "{e}");

        let ack = run(&format!("query addr={addr} cancel=q7")).unwrap();
        assert!(ack.contains("q7"), "{ack}");

        let bye = run(&format!("query addr={addr} shutdown=true")).unwrap();
        assert!(bye.contains("shutdown"), "{bye}");
        join.join().unwrap();

        // With the server gone, queries are runtime (connection) errors.
        let e = run_classed(&format!("query addr={addr} algo=kcore")).unwrap_err();
        assert!(matches!(e, CmdError::Runtime(_)), "{e:?}");
    }
}
