//! Minimal dependency-free argument parsing: `key=value`, `--key=value`,
//! and `--key value` options after a subcommand, with typed getters and
//! unknown-key detection.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `key=value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    opts: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors produced while parsing or validating arguments.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An argument was not of the form `key=value`.
    Malformed(String),
    /// A required option was absent.
    MissingOption(String),
    /// An option failed to parse as the requested type.
    BadValue(String, String),
    /// Options that no getter consumed (typo protection).
    UnknownOptions(Vec<String>),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::Malformed(a) => write!(f, "malformed argument {a:?}; expected key=value"),
            ArgError::MissingOption(k) => write!(f, "missing required option {k}="),
            ArgError::BadValue(k, v) => write!(f, "option {k}={v:?} has the wrong type"),
            ArgError::UnknownOptions(ks) => write!(f, "unknown options: {}", ks.join(", ")),
        }
    }
}

impl Args {
    /// Parses `argv` (without the program name). Options may be spelled
    /// `key=value`, `--key=value`, or `--key value`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut opts = BTreeMap::new();
        while let Some(raw) = it.next() {
            if let Some(flag) = raw.strip_prefix("--") {
                if let Some((k, v)) = flag.split_once('=') {
                    opts.insert(k.to_string(), v.to_string());
                } else {
                    let v = it.next().ok_or_else(|| ArgError::Malformed(raw.clone()))?;
                    opts.insert(flag.to_string(), v);
                }
            } else {
                let (k, v) = raw
                    .split_once('=')
                    .ok_or_else(|| ArgError::Malformed(raw.clone()))?;
                opts.insert(k.to_string(), v.to_string());
            }
        }
        Ok(Args {
            command,
            opts,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn raw(&self, key: &str) -> Option<&str> {
        let v = self.opts.get(key).map(String::as_str);
        if v.is_some() {
            self.consumed.borrow_mut().push(key.to_string());
        }
        v
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<String, ArgError> {
        self.raw(key)
            .map(str::to_string)
            .ok_or_else(|| ArgError::MissingOption(key.to_string()))
    }

    /// An optional string option with default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    /// An optional typed option: `Ok(None)` when absent (unlike
    /// [`get_or`](Self::get_or), absence and an explicit default value are
    /// distinguishable — `timeout_ms=0` means "already expired", no
    /// `timeout_ms=` means "no deadline").
    pub fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.raw(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError::BadValue(key.to_string(), v.to_string())),
        }
    }

    /// An optional typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(key.to_string(), v.to_string())),
        }
    }

    /// Hands over every option no getter touched, marking them consumed.
    /// The caller forwards them as an algorithm parameter map; unknown keys
    /// are then rejected by the registry with the algorithm's name attached
    /// instead of by [`finish`](Self::finish).
    pub fn remaining(&self) -> Vec<(String, String)> {
        let rest: Vec<(String, String)> = {
            let consumed = self.consumed.borrow();
            self.opts
                .iter()
                .filter(|(k, _)| !consumed.contains(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        self.consumed
            .borrow_mut()
            .extend(rest.iter().map(|(k, _)| k.clone()));
        rest
    }

    /// Rejects any options no getter touched.
    pub fn finish(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .opts
            .keys()
            .filter(|k| !consumed.contains(k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::UnknownOptions(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(argv("gen kind=rmat scale=10")).unwrap();
        assert_eq!(a.command, "gen");
        assert_eq!(a.require("kind").unwrap(), "rmat");
        assert_eq!(a.get_or("scale", 0u32).unwrap(), 10);
        a.finish().unwrap();
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(argv("stats")).unwrap();
        assert_eq!(a.get_or("scale", 14u32).unwrap(), 14);
        assert_eq!(a.string_or("out", "-"), "-");
        a.finish().unwrap();
    }

    #[test]
    fn missing_command() {
        assert_eq!(
            Args::parse(Vec::new()).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn malformed_option() {
        let e = Args::parse(argv("gen oops")).unwrap_err();
        assert!(matches!(e, ArgError::Malformed(_)));
    }

    #[test]
    fn double_dash_forms() {
        let a = Args::parse(argv("kcore --in g.bin --stats=json --top 3")).unwrap();
        assert_eq!(a.require("in").unwrap(), "g.bin");
        assert_eq!(a.string_or("stats", "none"), "json");
        assert_eq!(a.get_or("top", 0usize).unwrap(), 3);
        a.finish().unwrap();
    }

    #[test]
    fn dangling_flag_rejected() {
        let e = Args::parse(argv("kcore --stats")).unwrap_err();
        assert!(matches!(e, ArgError::Malformed(_)));
    }

    #[test]
    fn missing_required() {
        let a = Args::parse(argv("gen")).unwrap();
        assert!(matches!(a.require("kind"), Err(ArgError::MissingOption(_))));
    }

    #[test]
    fn bad_typed_value() {
        let a = Args::parse(argv("gen scale=abc")).unwrap();
        assert!(matches!(
            a.get_or("scale", 1u32),
            Err(ArgError::BadValue(_, _))
        ));
    }

    #[test]
    fn remaining_hands_over_untouched_options_once() {
        let a = Args::parse(argv("sssp in=g.bin src=3 delta=16")).unwrap();
        let _ = a.require("in");
        let rest = a.remaining();
        assert_eq!(
            rest,
            vec![
                ("delta".to_string(), "16".to_string()),
                ("src".to_string(), "3".to_string())
            ]
        );
        // remaining() consumed them: finish() no longer complains and a
        // second call hands over nothing.
        a.finish().unwrap();
        assert!(a.remaining().is_empty());
    }

    #[test]
    fn unknown_options_rejected() {
        let a = Args::parse(argv("gen kind=er tpyo=1")).unwrap();
        let _ = a.require("kind");
        assert!(matches!(a.finish(), Err(ArgError::UnknownOptions(_))));
    }
}
