//! End-to-end error-path tests against the real `julienne` binary: every
//! failure must exit non-zero with a usage message on stderr, with the exit
//! code distinguishing usage mistakes (2) from runtime failures (1).

use julienne_graph::builder::{from_pairs, EdgeList};
use julienne_graph::io::{GraphIo, IoOptions};
use julienne_graph::Csr;
use std::path::PathBuf;
use std::process::{Command, Output};

fn julienne(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_julienne"))
        .args(args)
        .output()
        .expect("failed to spawn julienne binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("julienne-e2e-{}-{name}", std::process::id()))
}

/// Asserts a failing invocation's contract: the given exit code, an
/// `error:` line mentioning `needle`, and the usage text on stderr.
fn assert_fails(args: &[&str], code: i32, needle: &str) {
    let out = julienne(args);
    let err = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(code),
        "{args:?}: expected exit {code}\nstderr: {err}"
    );
    assert!(err.contains("error:"), "{args:?}: no error line\n{err}");
    assert!(err.contains(needle), "{args:?}: missing {needle:?}\n{err}");
    assert!(err.contains("USAGE"), "{args:?}: no usage message\n{err}");
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = julienne(&[]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout).into_owned() + &stderr_of(&out);
    assert!(text.contains("USAGE"), "{text}");
}

#[test]
fn unknown_command_exits_2_with_usage() {
    assert_fails(&["frobnicate"], 2, "unknown command");
}

#[test]
fn bad_backend_value_exits_2_with_usage() {
    assert_fails(&["components", "in=x.bin", "backend=zip"], 2, "backend");
}

#[test]
fn bad_threads_value_exits_2_with_usage() {
    assert_fails(&["components", "in=x.bin", "threads=zzz"], 2, "threads");
    assert_fails(&["kcore", "in=x.bin", "--threads", "-3"], 2, "threads");
}

#[test]
fn malformed_and_unknown_options_exit_2_with_usage() {
    assert_fails(&["kcore", "novalue"], 2, "malformed");
    assert_fails(&["setcover", "bogus=1"], 2, "unknown options");
    assert_fails(&["sssp"], 2, "in=");
}

#[test]
fn unreadable_graph_file_exits_1_with_usage() {
    assert_fails(
        &["kcore", "in=/nonexistent/julienne-no-such-file.bin"],
        1,
        "julienne-no-such-file.bin",
    );
    // Unknown extension on a real file whose contents sniff to nothing
    // either: a usage-class error (this tool cannot interpret the file).
    let p = tmp("mystery.xyz");
    std::fs::write(&p, b"0 1\n1 2\n").unwrap();
    assert_fails(&["components", &format!("in={}", p.display())], 2, "format");
    std::fs::remove_file(p).ok();
}

#[test]
fn corrupt_graph_file_exits_1_with_usage() {
    let p = tmp("corrupt.bin");
    std::fs::write(&p, b"this is not a graph").unwrap();
    assert_fails(&["components", &format!("in={}", p.display())], 1, "magic");
    std::fs::remove_file(p).ok();
}

#[test]
fn corrupt_container_exits_1_with_usage() {
    let p = tmp("corrupt.jgr");
    // Valid magic, then garbage: header validation must catch it.
    let mut bytes = b"JGR!\r\n\x1a\n".to_vec();
    bytes.extend_from_slice(&[0xEE; 8]);
    std::fs::write(&p, &bytes).unwrap();
    assert_fails(
        &["components", &format!("in={}", p.display())],
        1,
        "corrupt.jgr",
    );
    std::fs::remove_file(p).ok();
}

#[test]
fn stats_json_on_empty_graph_exits_1_with_usage() {
    let p = tmp("empty.bin");
    GraphIo::write(&from_pairs(0, &[]), &p, &IoOptions::default()).unwrap();
    let pw = tmp("emptyw.bin");
    let wg: Csr<u32> = EdgeList::new(0).build(false);
    GraphIo::write(&wg, &pw, &IoOptions::default()).unwrap();
    let (f, fw) = (
        format!("in={}", p.display()),
        format!("in={}", pw.display()),
    );
    assert_fails(&["kcore", &f, "--stats", "json"], 1, "empty");
    assert_fails(&["sssp", &fw, "--stats", "json"], 1, "empty");
    assert_fails(&["stats", &f], 1, "empty");
    std::fs::remove_file(p).ok();
    std::fs::remove_file(pw).ok();
}

#[test]
fn successful_run_exits_0_and_stays_quiet_on_stderr() {
    let p = tmp("ok.bin");
    let out = julienne(&[
        "gen",
        "kind=rmat",
        "scale=8",
        &format!("out={}", p.display()),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(stderr_of(&out).is_empty());
    let out = julienne(&["kcore", &format!("in={}", p.display())]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("k_max="));
    std::fs::remove_file(p).ok();
}
