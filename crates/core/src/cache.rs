//! The serve-path result cache: completed query outputs keyed by
//! `(algorithm, canonical params, graph epoch)` with LRU eviction under a
//! byte budget.
//!
//! The scheduler consults the cache **before admission** — a hit answers
//! the query without queueing a traversal — and populates it when a query
//! (or a fused batch member) completes successfully. Three properties make
//! that sound:
//!
//! * **Canonical keys.** The params component is the canonical rendering
//!   produced by the registry (floats parsed and re-rendered, keys sorted),
//!   so `damping=0.85` and `damping=0.850` share one entry.
//! * **Epoch stamping.** Every key embeds the [`Session`] graph epoch at
//!   admission time. Mutating the graph bumps the epoch
//!   ([`Session::advance_epoch`](crate::query::Session::advance_epoch)),
//!   which makes every cached entry
//!   unreachable without a stop-the-world flush; stale entries age out of
//!   the LRU under insert pressure.
//! * **Determinism.** Outputs are bit-identical across runs (the workspace
//!   determinism contract), so serving a cached body is indistinguishable
//!   from re-running the traversal — modulo the wire-visible `cached` flag.
//!
//! Only successful, stats-free outputs are cached: error responses are
//! cheap to recompute and per-query stats traces embed timings that are not
//! reproducible.
//!
//! [`Session`]: crate::query::Session

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Free-slot / list-end sentinel for the intrusive LRU links.
const NIL: usize = usize::MAX;

/// Fixed per-entry accounting overhead (slab slot, map entry, and the two
/// `String` headers), charged on top of the key and value bytes.
const ENTRY_OVERHEAD: usize = 96;

/// A cache key: algorithm id, canonical parameter rendering, and the graph
/// epoch the result was computed against.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry algorithm id (`"kcore"`, `"sssp"`, …).
    pub algo: String,
    /// Canonical `key=value` rendering of the full parameter map (sorted
    /// keys, floats re-rendered), as produced by the registry.
    pub params: String,
    /// The session graph epoch at admission time.
    pub epoch: u64,
}

impl CacheKey {
    /// Builds a key.
    pub fn new(algo: &str, params: &str, epoch: u64) -> Self {
        CacheKey {
            algo: algo.to_string(),
            params: params.to_string(),
            epoch,
        }
    }

    fn cost(&self) -> usize {
        self.algo.len() + self.params.len()
    }
}

struct Slot {
    key: CacheKey,
    value: Arc<String>,
    bytes: usize,
    prev: usize,
    next: usize,
}

struct Inner {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (eviction end).
    tail: usize,
    bytes: usize,
}

/// Point-in-time cache counters (monotonic except `entries`/`bytes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Accounted bytes of the live entries.
    pub bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe LRU result cache under a byte budget. See the module docs
/// for the keying and epoch contract.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity_bytes` of accounted entry bytes
    /// (key + value + fixed per-entry overhead).
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                bytes: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Looks `key` up, refreshing its recency on a hit. The value comes
    /// back behind an `Arc` so serving it never copies the body under the
    /// lock.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap();
        let Some(&slot) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        inner.unlink(slot);
        inner.push_front(slot);
        Some(Arc::clone(&inner.slots[slot].value))
    }

    /// Inserts (or refreshes) `key → value`, evicting least-recently-used
    /// entries until the budget holds. A single entry larger than the whole
    /// budget is not cached at all.
    pub fn put(&self, key: CacheKey, value: String) {
        let bytes = key.cost() + value.len() + ENTRY_OVERHEAD;
        if bytes > self.capacity_bytes {
            return;
        }
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        if let Some(&slot) = inner.map.get(&key) {
            // Refresh: replace the body and re-front the entry.
            inner.bytes = inner.bytes - inner.slots[slot].bytes + bytes;
            inner.slots[slot].value = value;
            inner.slots[slot].bytes = bytes;
            inner.unlink(slot);
            inner.push_front(slot);
        } else {
            let slot = inner.alloc(key.clone(), value, bytes);
            inner.map.insert(key, slot);
            inner.push_front(slot);
            inner.bytes += bytes;
        }
        while inner.bytes > self.capacity_bytes {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL, "over budget with no entries");
            inner.unlink(victim);
            let Slot { key, bytes, .. } = inner.release(victim);
            inner.map.remove(&key);
            inner.bytes -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

impl Inner {
    fn alloc(&mut self, key: CacheKey, value: Arc<String>, bytes: usize) -> usize {
        let slot = Slot {
            key,
            value,
            bytes,
            prev: NIL,
            next: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    fn release(&mut self, slot: usize) -> Slot {
        self.free.push(slot);
        std::mem::replace(
            &mut self.slots[slot],
            Slot {
                key: CacheKey::new("", "", 0),
                value: Arc::new(String::new()),
                bytes: 0,
                prev: NIL,
                next: NIL,
            },
        )
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            if self.head == slot {
                self.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            if self.tail == slot {
                self.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize, epoch: u64) -> CacheKey {
        CacheKey::new("algo", &format!("k={i}"), epoch)
    }

    #[test]
    fn hit_returns_the_stored_body_and_counts() {
        let c = ResultCache::new(1 << 20);
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(1, 0), "one".into());
        assert_eq!(c.get(&key(1, 0)).unwrap().as_str(), "one");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = ResultCache::new(1 << 20);
        c.put(key(1, 0), "old".into());
        assert!(c.get(&key(1, 1)).is_none(), "bumped epoch must miss");
        c.put(key(1, 1), "new".into());
        assert_eq!(c.get(&key(1, 0)).unwrap().as_str(), "old");
        assert_eq!(c.get(&key(1, 1)).unwrap().as_str(), "new");
    }

    #[test]
    fn lru_evicts_the_coldest_under_byte_pressure() {
        // Three entries fit, the fourth evicts the least recently touched.
        let per = key(0, 0).cost() + 3 + ENTRY_OVERHEAD;
        let c = ResultCache::new(3 * per);
        for i in 0..3 {
            c.put(key(i, 0), format!("v{i:02}"));
        }
        // Touch 0 so 1 is the coldest.
        assert!(c.get(&key(0, 0)).is_some());
        c.put(key(3, 0), "v03".into());
        assert!(c.get(&key(1, 0)).is_none(), "coldest entry must be evicted");
        for i in [0usize, 2, 3] {
            assert!(c.get(&key(i, 0)).is_some(), "entry {i} must survive");
        }
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 3);
        assert_eq!(s.bytes, 3 * per);
    }

    #[test]
    fn refresh_replaces_the_body_and_reaccounts() {
        let c = ResultCache::new(1 << 20);
        c.put(key(1, 0), "short".into());
        let before = c.stats().bytes;
        c.put(key(1, 0), "a considerably longer body".into());
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(
            s.bytes,
            before - "short".len() + "a considerably longer body".len()
        );
        assert_eq!(
            c.get(&key(1, 0)).unwrap().as_str(),
            "a considerably longer body"
        );
    }

    #[test]
    fn oversize_entries_are_not_cached() {
        let c = ResultCache::new(64);
        c.put(key(1, 0), "x".repeat(1024));
        assert!(c.get(&key(1, 0)).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn eviction_churn_keeps_the_list_consistent() {
        let per = key(0, 0).cost() + 4 + ENTRY_OVERHEAD;
        let c = ResultCache::new(4 * per);
        for round in 0..200usize {
            c.put(key(round % 13, 0), format!("v{round:03}"));
            let _ = c.get(&key((round * 7) % 13, 0));
        }
        let s = c.stats();
        assert!(s.entries <= 4);
        assert!(s.bytes <= 4 * per);
    }
}
