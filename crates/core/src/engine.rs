//! The unified framework entry point.
//!
//! Historically the framework surface was a pile of free functions
//! (`edge_map`, `edge_map_data`, …) plus magic constants (the 128-bucket
//! open window, the `m/20` dense threshold) that every algorithm re-spelled
//! at each call site. [`Engine`] centralizes those knobs — edge-map options,
//! the open-bucket window size, and the telemetry sink — behind one
//! builder, and hands out pre-configured [`EdgeMap`] and [`Buckets`]
//! instances that share the sink.
//!
//! ```
//! use julienne::prelude::*;
//!
//! let engine = Engine::builder()
//!     .open_buckets(64)
//!     .telemetry(true)
//!     .build();
//!
//! let g = julienne_graph::builder::from_pairs(3, &[(0, 1), (1, 2)]);
//! let frontier = VertexSubset::from_vertices(3, vec![0]);
//! let next = engine.edge_map(&g).run(&frontier, |_, _, _| true, |_| true);
//! assert_eq!(next.to_vertices(), vec![1]);
//!
//! let stats = engine.snapshot(); // counters + per-round records
//! assert!(stats.counters.iter().any(|&(name, _)| name == "edges_scanned"));
//! ```
//!
//! Telemetry is off by default and compiled out entirely when the crate's
//! `telemetry` feature is disabled (the sink becomes a ZST whose methods are
//! empty `#[inline(always)]` bodies).

use crate::bucket::{BucketId, Buckets, BucketsBuilder, Identifier, Order, DEFAULT_OPEN_BUCKETS};
use julienne_ligra::traits::OutEdges;
use julienne_ligra::{EdgeMap, EdgeMapOptions, Mode};
use julienne_primitives::error::Error;
use julienne_primitives::telemetry::{Telemetry, TelemetrySnapshot};

/// Which physical graph representation the driver should run on.
///
/// Traversals themselves are generic over the
/// [`julienne_ligra::OutEdges`] / [`julienne_ligra::InEdges`] /
/// [`julienne_ligra::GraphRef`] hierarchy; this enum is the
/// *selection* knob drivers (CLI, benches) thread from user input down to
/// the load path that picks a concrete backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Plain CSR adjacency arrays (`Csr<W>`).
    #[default]
    Csr,
    /// Ligra+-style byte-compressed adjacency (`CompressedGraph` /
    /// `CompressedWGraph`), built by compressing the CSR after load.
    Compressed,
    /// Zero-copy memory-mapped `.jgr` container (`MappedGraph<W>`): the
    /// graph is served straight from the mapped file, so opening does no
    /// per-edge work. Requires the input to be a `.jgr` container; graphs
    /// from other sources (generators, text files) fall back to CSR.
    Mapped,
}

impl Backend {
    /// Parses the CLI spelling (`csr`, `compressed`, or `mapped`).
    ///
    /// An unknown spelling is an [`Error::Usage`]: the request named a
    /// backend that does not exist, so the CLI exits 2 and the server
    /// answers with wire code `"usage"`.
    pub fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "csr" => Ok(Backend::Csr),
            "compressed" => Ok(Backend::Compressed),
            "mapped" => Ok(Backend::Mapped),
            other => Err(Error::usage(format!(
                "unknown backend '{other}' (expected csr, compressed, or mapped)"
            ))),
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Csr => "csr",
            Backend::Compressed => "compressed",
            Backend::Mapped => "mapped",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration + telemetry hub shared by the traversal engine and the
/// bucket structure. Construct with [`Engine::builder`].
#[derive(Clone)]
pub struct Engine {
    edge_map_opts: EdgeMapOptions,
    open_buckets: usize,
    num_threads: Option<usize>,
    backend: Backend,
    telemetry: Telemetry,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts an [`EngineBuilder`] with the paper's defaults: `Mode::Auto`
    /// edge maps with duplicate removal, a 128-bucket open window, and
    /// telemetry disabled.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            edge_map_opts: EdgeMapOptions::default(),
            open_buckets: DEFAULT_OPEN_BUCKETS,
            num_threads: None,
            backend: Backend::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// An [`EdgeMap`] over `g` pre-configured with this engine's options and
    /// telemetry sink.
    pub fn edge_map<'g, G: OutEdges>(&self, g: &'g G) -> EdgeMap<'g, G> {
        EdgeMap::new(g)
            .options(self.edge_map_opts)
            .telemetry(&self.telemetry)
    }

    /// A [`Buckets`] structure over `n` identifiers pre-configured with this
    /// engine's open-bucket window and telemetry sink.
    pub fn buckets<D>(&self, n: usize, d: D, order: Order) -> Buckets<D>
    where
        D: Fn(Identifier) -> BucketId + Sync,
    {
        BucketsBuilder::new(n, d, order)
            .open_buckets(self.open_buckets)
            .telemetry(&self.telemetry)
            .build()
    }

    /// The engine's edge-map options.
    pub fn edge_map_options(&self) -> EdgeMapOptions {
        self.edge_map_opts
    }

    /// The engine's open-bucket window size.
    pub fn open_buckets(&self) -> usize {
        self.open_buckets
    }

    /// The worker-thread count requested at build time, if any. `None`
    /// means the process-wide default (`JULIENNE_NUM_THREADS` or the
    /// hardware parallelism) was left in place.
    pub fn num_threads(&self) -> Option<usize> {
        self.num_threads
    }

    /// The graph backend the driver should load/convert to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The shared telemetry sink (a no-op sink unless enabled via the
    /// builder and the `telemetry` feature).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshots accumulated counters and per-round records.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// A clone of this engine whose telemetry sink is a **fresh scope** —
    /// enabled iff `enabled`, sharing no counters or round records with
    /// this engine's sink.
    ///
    /// This is how [`Session::query`](crate::query::Session::query) gives
    /// each concurrent query its own round trace instead of interleaving
    /// everything into one engine-global snapshot.
    pub fn with_telemetry_scope(&self, enabled: bool) -> Engine {
        let mut scoped = self.clone();
        scoped.telemetry = if enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        scoped
    }

    /// Clears accumulated counters and per-round records (e.g. between
    /// algorithms sharing one engine).
    pub fn reset_telemetry(&self) {
        self.telemetry.reset();
    }
}

/// Builder for [`Engine`]; see the module docs for an example.
pub struct EngineBuilder {
    edge_map_opts: EdgeMapOptions,
    open_buckets: usize,
    num_threads: Option<usize>,
    backend: Backend,
    telemetry: Telemetry,
}

impl EngineBuilder {
    /// Replaces the whole edge-map option block.
    pub fn edge_map_options(mut self, opts: EdgeMapOptions) -> Self {
        self.edge_map_opts = opts;
        self
    }

    /// Forces sparse/dense/auto traversal for all edge maps.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.edge_map_opts.mode = mode;
        self
    }

    /// Whether sparse edge maps deduplicate their output frontier.
    pub fn remove_duplicates(mut self, yes: bool) -> Self {
        self.edge_map_opts.remove_duplicates = yes;
        self
    }

    /// Sets the dense-traversal threshold divisor `k` in the
    /// `|frontier| + outDegrees > m/k` switching rule (Ligra uses 20).
    pub fn dense_threshold_div(mut self, div: usize) -> Self {
        self.edge_map_opts.dense_threshold_div = div;
        self
    }

    /// Sets the open-bucket window size `nB` (the paper's default is 128).
    pub fn open_buckets(mut self, num_open: usize) -> Self {
        self.open_buckets = num_open;
        self
    }

    /// Enables or disables telemetry collection. With the `telemetry`
    /// cargo feature off this is a no-op and the sink stays zero-cost.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = if enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        self
    }

    /// Shares an existing telemetry sink (e.g. one owned by a harness that
    /// aggregates across engines).
    pub fn telemetry_sink(mut self, sink: &Telemetry) -> Self {
        self.telemetry = sink.clone();
        self
    }

    /// Sets the worker-thread count for all parallel primitives.
    ///
    /// This configures the *process-wide* runtime (the same knob as the
    /// `JULIENNE_NUM_THREADS` environment variable), applied when
    /// [`build`](Self::build) runs; it is not scoped to one engine. `0` is
    /// treated as 1. Outputs are bit-identical at every thread count — see
    /// the runtime's determinism contract — so this only affects speed.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Selects the graph backend drivers should load/convert to (default
    /// [`Backend::Csr`]). Algorithms are backend-generic; this only steers
    /// the load path.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> Engine {
        if let Some(n) = self.num_threads {
            rayon::set_num_threads(n);
        }
        Engine {
            edge_map_opts: self.edge_map_opts,
            open_buckets: self.open_buckets,
            num_threads: self.num_threads,
            backend: self.backend,
            telemetry: self.telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::NULL_BKT;
    use julienne_ligra::VertexSubset;
    use julienne_primitives::telemetry::Counter;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

    #[test]
    fn engine_hands_out_configured_components() {
        let engine = Engine::builder().mode(Mode::Sparse).open_buckets(4).build();
        assert_eq!(engine.open_buckets(), 4);
        assert_eq!(engine.edge_map_options().mode, Mode::Sparse);

        let g = julienne_graph::builder::from_pairs(3, &[(0, 1), (0, 2)]);
        let frontier = VertexSubset::from_vertices(3, vec![0]);
        let next = engine.edge_map(&g).run(&frontier, |_, _, _| true, |_| true);
        assert_eq!(next.to_vertices(), vec![1, 2]);

        let d: Vec<AtomicU32> = [1u32, 0, NULL_BKT]
            .into_iter()
            .map(AtomicU32::new)
            .collect();
        let mut b = engine.buckets(
            3,
            |i| d[i as usize].load(AtomicOrdering::SeqCst),
            Order::Increasing,
        );
        assert_eq!(b.next_bucket(), Some((0, vec![1])));
        assert_eq!(b.next_bucket(), Some((1, vec![0])));
        assert_eq!(b.next_bucket(), None);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn engine_telemetry_flows_through_components() {
        let engine = Engine::builder().telemetry(true).build();
        let g = julienne_graph::builder::from_pairs(3, &[(0, 1), (1, 2)]);
        let frontier = VertexSubset::from_vertices(3, vec![0]);
        let _ = engine.edge_map(&g).run(&frontier, |_, _, _| true, |_| true);

        let d: Vec<AtomicU32> = [0u32, 1].into_iter().map(AtomicU32::new).collect();
        let mut b = engine.buckets(
            2,
            |i| d[i as usize].load(AtomicOrdering::SeqCst),
            Order::Increasing,
        );
        while b.next_bucket().is_some() {}

        let t = engine.telemetry();
        assert!(t.get(Counter::EdgesScanned) >= 1);
        assert_eq!(t.get(Counter::BucketsExtracted), 2);
        assert_eq!(t.get(Counter::IdentifiersExtracted), 2);

        engine.reset_telemetry();
        assert_eq!(engine.telemetry().get(Counter::EdgesScanned), 0);
    }

    #[test]
    fn backend_selection_round_trips() {
        assert_eq!(Engine::default().backend(), Backend::Csr);
        let e = Engine::builder().backend(Backend::Compressed).build();
        assert_eq!(e.backend(), Backend::Compressed);
        assert_eq!(Backend::parse("csr").unwrap(), Backend::Csr);
        assert_eq!(Backend::parse("compressed").unwrap(), Backend::Compressed);
        assert_eq!(Backend::parse("mapped").unwrap(), Backend::Mapped);
        let err = Backend::parse("mmap").unwrap_err();
        assert!(err.is_usage(), "bad backend spelling is a usage error");
        assert!(err.to_string().contains("mmap"));
        assert_eq!(Backend::Compressed.to_string(), "compressed");
        assert_eq!(Backend::Mapped.to_string(), "mapped");
    }

    #[test]
    fn disabled_telemetry_reads_zero() {
        let engine = Engine::default();
        assert!(!engine.telemetry().is_enabled());
        assert_eq!(engine.telemetry().get(Counter::EdgesScanned), 0);
        assert!(engine.snapshot().rounds.is_empty());
    }
}
