//! Sequential bucketing (Section 3.2) — exact bucket representation.
//!
//! Every bucket is represented by its own dynamic array, updates are lazy
//! (stale copies are filtered at extraction against `D`), and `bucket_dest`
//! coincides with the bucket key. Serves as the oracle for the property
//! tests of the parallel structure and as the sequential baseline in the
//! ablation benchmarks.

use super::{BucketDest, BucketId, Identifier, Order, NULL_BKT};

/// The sequential bucket structure.
pub struct SeqBuckets<D> {
    d: D,
    order: Order,
    /// `flip_base` maps decreasing bucket ids onto increasing keys:
    /// `key = flip_base − bucket_id` (0 and unused for increasing order).
    flip_base: u64,
    /// Bucket arrays indexed by key.
    buckets: Vec<Vec<Identifier>>,
    /// Current key being processed.
    cur: u64,
    /// Total identifiers extracted so far.
    extracted: u64,
}

impl<D: Fn(Identifier) -> BucketId> SeqBuckets<D> {
    /// Creates the structure over identifiers `0..n` with initial buckets
    /// given by `d` (which the structure keeps and re-evaluates lazily).
    pub fn new(n: usize, d: D, order: Order) -> Self {
        let flip_base = match order {
            Order::Increasing => 0,
            Order::Decreasing => (0..n as Identifier)
                .map(&d)
                .filter(|&b| b != NULL_BKT)
                .max()
                .unwrap_or(0) as u64,
        };
        let mut this = SeqBuckets {
            d,
            order,
            flip_base,
            buckets: Vec::new(),
            cur: 0,
            extracted: 0,
        };
        for i in 0..n as Identifier {
            let b = (this.d)(i);
            if b != NULL_BKT {
                let key = this.key_of(b);
                this.insert(i, key);
            }
        }
        this
    }

    #[inline]
    fn key_of(&self, b: BucketId) -> u64 {
        match self.order {
            Order::Increasing => b as u64,
            Order::Decreasing => {
                debug_assert!(
                    (b as u64) <= self.flip_base,
                    "decreasing-order bucket id {b} exceeds initial maximum {}",
                    self.flip_base
                );
                self.flip_base - b as u64
            }
        }
    }

    #[inline]
    fn bucket_of_key(&self, key: u64) -> BucketId {
        match self.order {
            Order::Increasing => key as BucketId,
            Order::Decreasing => (self.flip_base - key) as BucketId,
        }
    }

    fn insert(&mut self, i: Identifier, key: u64) {
        let idx = key as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push(i);
    }

    /// `getBucket(prev, next)`: the destination for an identifier moving
    /// from bucket `prev` (or `NULL_BKT` if not yet bucketed) to `next`.
    pub fn get_bucket(&self, prev: BucketId, next: BucketId) -> BucketDest {
        if next == NULL_BKT {
            return BucketDest::NULL;
        }
        let key_next = self.key_of(next);
        if key_next < self.cur {
            return BucketDest::NULL;
        }
        // Reinsertion into the current bucket is always a physical insert:
        // the identifier was just extracted (see the parallel impl).
        if key_next != self.cur && prev != NULL_BKT && self.key_of(prev) == key_next {
            return BucketDest::NULL;
        }
        BucketDest(key_next as u32)
    }

    /// `updateBuckets`: inserts each identifier at its destination. `NULL`
    /// destinations are ignored without cost.
    pub fn update_buckets(&mut self, moves: &[(Identifier, BucketDest)]) {
        for &(i, dest) in moves {
            if !dest.is_null() {
                self.insert(i, dest.0 as u64);
            }
        }
    }

    /// `nextBucket`: the next non-empty bucket and its live identifiers, or
    /// `None` when the structure is exhausted.
    pub fn next_bucket(&mut self) -> Option<(BucketId, Vec<Identifier>)> {
        while (self.cur as usize) < self.buckets.len() {
            let idx = self.cur as usize;
            if !self.buckets[idx].is_empty() {
                let raw = std::mem::take(&mut self.buckets[idx]);
                let bkt = self.bucket_of_key(self.cur);
                let live: Vec<Identifier> =
                    raw.into_iter().filter(|&i| (self.d)(i) == bkt).collect();
                if !live.is_empty() {
                    self.extracted += live.len() as u64;
                    return Some((bkt, live));
                }
            }
            self.cur += 1;
        }
        None
    }

    /// Total identifiers extracted so far.
    pub fn total_extracted(&self) -> u64 {
        self.extracted
    }

    /// The current bucket id the structure is positioned at.
    pub fn current_bucket(&self) -> BucketId {
        self.bucket_of_key(self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn extracts_in_increasing_order() {
        let d = vec![3u32, 1, 1, 0, NULL_BKT];
        let dd = d.clone();
        let mut b = SeqBuckets::new(5, move |i| dd[i as usize], Order::Increasing);
        let (k0, ids0) = b.next_bucket().unwrap();
        assert_eq!((k0, ids0), (0, vec![3]));
        let (k1, mut ids1) = b.next_bucket().unwrap();
        ids1.sort_unstable();
        assert_eq!((k1, ids1), (1, vec![1, 2]));
        let (k3, ids3) = b.next_bucket().unwrap();
        assert_eq!((k3, ids3), (3, vec![0]));
        assert!(b.next_bucket().is_none());
        assert_eq!(b.total_extracted(), 4);
    }

    #[test]
    fn extracts_in_decreasing_order() {
        let d = vec![3u32, 1, 5];
        let dd = d.clone();
        let mut b = SeqBuckets::new(3, move |i| dd[i as usize], Order::Decreasing);
        assert_eq!(b.next_bucket().unwrap(), (5, vec![2]));
        assert_eq!(b.next_bucket().unwrap(), (3, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (1, vec![1]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn moves_are_lazy_and_stale_copies_filtered() {
        // Identifier 0 starts in bucket 5; we move it to 2 before any
        // extraction. It must come out of bucket 2, once.
        let d = RefCell::new(vec![5u32]);
        let dref = &d;
        let mut b = SeqBuckets::new(1, move |i| dref.borrow()[i as usize], Order::Increasing);
        d.borrow_mut()[0] = 2;
        let dest = b.get_bucket(5, 2);
        assert!(!dest.is_null());
        b.update_buckets(&[(0, dest)]);
        assert_eq!(b.next_bucket().unwrap(), (2, vec![0]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn reinsertion_into_current_bucket() {
        // Extract bucket 1, then push a new identifier back into bucket 1:
        // nextBucket must return bucket 1 again (paper Section 3.1).
        let d = RefCell::new(vec![1u32, NULL_BKT]);
        let dref = &d;
        let mut b = SeqBuckets::new(2, move |i| dref.borrow()[i as usize], Order::Increasing);
        assert_eq!(b.next_bucket().unwrap(), (1, vec![0]));
        d.borrow_mut()[1] = 1;
        let dest = b.get_bucket(NULL_BKT, 1);
        assert!(!dest.is_null());
        b.update_buckets(&[(1, dest)]);
        assert_eq!(b.next_bucket().unwrap(), (1, vec![1]));
    }

    #[test]
    fn null_moves_ignored() {
        let d = vec![0u32, 1];
        let dd = d.clone();
        let mut b = SeqBuckets::new(2, move |i| dd[i as usize], Order::Increasing);
        assert!(b.get_bucket(0, NULL_BKT).is_null());
        assert!(b.get_bucket(3, 3).is_null()); // same bucket
        b.update_buckets(&[(0, BucketDest::NULL)]);
        assert_eq!(b.next_bucket().unwrap(), (0, vec![0]));
    }

    #[test]
    fn moving_behind_cur_returns_null() {
        let d = vec![2u32];
        let dd = d.clone();
        let mut b = SeqBuckets::new(1, move |i| dd[i as usize], Order::Increasing);
        assert_eq!(b.next_bucket().unwrap(), (2, vec![0]));
        // cur is now 2; destination 1 is behind it.
        assert!(b.get_bucket(2, 1).is_null());
    }

    #[test]
    fn empty_structure() {
        let mut b = SeqBuckets::new(3, |_| NULL_BKT, Order::Increasing);
        assert!(b.next_bucket().is_none());
    }
}
