//! The bucketing interface (Section 3.1) and its implementations.
//!
//! ## Interface
//!
//! A bucket structure over `n` identifiers is created with a function
//! `D : identifier → bucket_id` (the *current* logical bucket of each
//! identifier, re-evaluated lazily by the structure) and a traversal
//! [`Order`]. The core loop of every bucketing-based algorithm is:
//!
//! ```text
//! while let Some((bkt, ids)) = B.next_bucket() {
//!     …process ids, mutating the state D reads…
//!     let moved = …(id, B.get_bucket(prev, next)) for affected ids…;
//!     B.update_buckets(&moved);
//! }
//! ```
//!
//! A complete example — drain identifiers in increasing bucket order,
//! moving one forward mid-stream:
//!
//! ```
//! use julienne::bucket::{BucketsBuilder, Order, NULL_BKT};
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! // D: identifier -> bucket (shared state the algorithm mutates).
//! let d: Vec<AtomicU32> = [2u32, 0, 2].into_iter().map(AtomicU32::new).collect();
//! let mut b = BucketsBuilder::new(3, |i: u32| d[i as usize].load(Ordering::SeqCst),
//!                                 Order::Increasing)
//!     .build();
//!
//! assert_eq!(b.next_bucket(), Some((0, vec![1])));
//! // Move identifier 0 from bucket 2 to bucket 1.
//! d[0].store(1, Ordering::SeqCst);
//! let dest = b.get_bucket(2, 1);
//! b.update_buckets(&[(0, dest)]);
//! assert_eq!(b.next_bucket(), Some((1, vec![0])));
//! assert_eq!(b.next_bucket(), Some((2, vec![2])));
//! assert_eq!(b.next_bucket(), None);
//! ```
//!
//! ## Contract
//!
//! * `D` must reflect all state mutations *before* the corresponding
//!   `get_bucket`/`update_buckets`/`next_bucket` calls.
//! * Per identifier, logical bucket ids must move monotonically in the
//!   traversal direction (never behind the current bucket) — true of every
//!   algorithm in the paper, enforced where cheap by `debug_assert!`.
//! * With [`Order::Decreasing`], no bucket id may ever exceed the maximum
//!   present at creation (set-cover degrees only shrink, so this holds).
//! * An identifier may appear at most once per `update_buckets` call.

mod mapped;
mod par;
mod seq;

pub use mapped::MappedBuckets;
pub use par::{BucketStats, Buckets, BucketsBuilder, DEFAULT_OPEN_BUCKETS};
pub use seq::SeqBuckets;

/// A bucketed object's unique integer id (the paper's `identifier`).
pub type Identifier = u32;

/// A bucket's integer id (the paper's `bucket_id`).
pub type BucketId = u32;

/// The distinguished "no bucket" id (the paper's `nullbkt`): identifiers
/// mapped here are not in the structure (or are leaving it).
pub const NULL_BKT: BucketId = u32::MAX;

/// Traversal order over buckets (the paper's `bucket_order`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Lowest bucket first (k-core, wBFS, Δ-stepping).
    Increasing,
    /// Highest bucket first (approximate set cover).
    Decreasing,
}

/// Opaque destination of a moving identifier (the paper's `bucket_dest`),
/// produced by `get_bucket` and consumed by `update_buckets`.
///
/// Internally a slot index into the open-bucket window (or the overflow
/// bucket); `NULL` means "no physical move required".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketDest(pub(crate) u32);

impl BucketDest {
    pub(crate) const NULL_SLOT: u32 = u32::MAX;

    /// The "no move needed" destination.
    pub const NULL: BucketDest = BucketDest(Self::NULL_SLOT);

    /// Whether this destination requires no physical move.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == Self::NULL_SLOT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_dest_is_null() {
        assert!(BucketDest::NULL.is_null());
        assert!(!BucketDest(0).is_null());
    }
}
