//! The internal-mapping alternative the paper rejected (Section 3.3).
//!
//! Instead of asking the user for `prev` in `getBucket`, this variant keeps
//! its own identifier→slot array so moves can be deduplicated internally.
//! The paper: "we found that the cost of maintaining this array of size
//! O(n) was significant (about 30% more expensive) in our applications,
//! due to the cost of an extra random-access read and write per identifier
//! in updateBuckets". [`MappedBuckets`] exists to reproduce that
//! measurement (ablation A1b) — production code should use
//! [`super::Buckets`].

use super::{BucketDest, BucketId, Identifier, Order, NULL_BKT};
use julienne_primitives::filter::filter_map;
use julienne_primitives::histogram::blocked_histogram;
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

const NO_SLOT: u32 = u32::MAX;

/// Bucket structure with an internal identifier→slot map and a single-
/// argument `get_bucket`.
pub struct MappedBuckets<D> {
    d: D,
    order: Order,
    num_open: usize,
    flip_base: u64,
    cur_range: u64,
    cur_local: usize,
    open: Vec<Vec<Identifier>>,
    overflow: Vec<Identifier>,
    /// The extra O(n) state: the physical slot of every identifier
    /// (`NO_SLOT` if absent). Read and written once per moved identifier —
    /// the cost the paper measured.
    location: Vec<AtomicU32>,
    moved: u64,
}

impl<D: Fn(Identifier) -> BucketId + Sync> MappedBuckets<D> {
    /// Creates the structure (cf. `makeBuckets`).
    pub fn new(n: usize, d: D, order: Order) -> Self {
        let num_open = super::DEFAULT_OPEN_BUCKETS;
        let flip_base = match order {
            Order::Increasing => 0,
            Order::Decreasing => julienne_primitives::reduce::max_mapped(n, 0, |i| {
                let b = d(i as Identifier);
                if b == NULL_BKT {
                    0
                } else {
                    b
                }
            }) as u64,
        };
        let mut this = MappedBuckets {
            d,
            order,
            num_open,
            flip_base,
            cur_range: 0,
            cur_local: 0,
            open: (0..num_open).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            location: (0..n).map(|_| AtomicU32::new(NO_SLOT)).collect(),
            moved: 0,
        };
        let slots: Vec<Option<usize>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let b = (this.d)(i as Identifier);
                if b == NULL_BKT {
                    None
                } else {
                    let key = this.key_of(b);
                    let window = key / num_open as u64;
                    Some(if window == 0 {
                        (key % num_open as u64) as usize
                    } else {
                        num_open
                    })
                }
            })
            .collect();
        this.insert_with(n, &|k| slots[k], |k| k as Identifier);
        this
    }

    #[inline]
    fn key_of(&self, b: BucketId) -> u64 {
        match self.order {
            Order::Increasing => b as u64,
            Order::Decreasing => self.flip_base - b as u64,
        }
    }

    #[inline]
    fn bucket_of_key(&self, key: u64) -> BucketId {
        match self.order {
            Order::Increasing => key as BucketId,
            Order::Decreasing => (self.flip_base - key) as BucketId,
        }
    }

    #[inline]
    fn cur_key(&self) -> u64 {
        self.cur_range * self.num_open as u64 + self.cur_local as u64
    }

    /// Single-argument `getBucket`: the internal map supplies `prev` — at
    /// the price of a random read per call.
    pub fn get_bucket(&self, i: Identifier, next: BucketId) -> BucketDest {
        if next == NULL_BKT {
            return BucketDest::NULL;
        }
        let key_next = self.key_of(next);
        if key_next < self.cur_key() {
            return BucketDest::NULL;
        }
        let window = key_next / self.num_open as u64;
        let slot_next = if window == self.cur_range {
            (key_next % self.num_open as u64) as usize
        } else {
            self.num_open
        };
        // The extra random read the two-argument interface avoids:
        let slot_prev = self.location[i as usize].load(AtomicOrdering::SeqCst);
        if key_next != self.cur_key() && slot_prev == slot_next as u32 {
            return BucketDest::NULL;
        }
        BucketDest(slot_next as u32)
    }

    /// `updateBuckets` with internal map maintenance (the extra random
    /// write per identifier).
    pub fn update_buckets(&mut self, moves: &[(Identifier, BucketDest)]) {
        self.moved += moves.par_iter().filter(|(_, dest)| !dest.is_null()).count() as u64;
        // Maintain the map (the measured overhead).
        moves.par_iter().for_each(|&(i, dest)| {
            if !dest.is_null() {
                self.location[i as usize].store(dest.0, AtomicOrdering::SeqCst);
            }
        });
        self.insert_with(
            moves.len(),
            &|k| {
                let (_, dest) = moves[k];
                if dest.is_null() {
                    None
                } else {
                    Some(dest.0 as usize)
                }
            },
            |k| moves[k].0,
        );
    }

    fn insert_with<S, I>(&mut self, len: usize, slot_of: &S, id_of: I)
    where
        S: Fn(usize) -> Option<usize> + Sync,
        I: Fn(usize) -> Identifier + Sync,
    {
        if len == 0 {
            return;
        }
        let num_slots = self.num_open + 1;
        let hist = blocked_histogram(len, num_slots, slot_of);
        let mut old_lens = Vec::with_capacity(num_slots);
        for (s, total) in hist.slot_totals.iter().enumerate() {
            let b = if s == self.num_open {
                &mut self.overflow
            } else {
                &mut self.open[s]
            };
            old_lens.push(b.len());
            b.resize(b.len() + total, 0);
        }
        {
            let mut writers: Vec<DisjointWriter<'_, Identifier>> = Vec::with_capacity(num_slots);
            for (s, b) in self
                .open
                .iter_mut()
                .chain(std::iter::once(&mut self.overflow))
                .enumerate()
            {
                let start = old_lens[s];
                writers.push(DisjointWriter::new(&mut b[start..]));
            }
            hist.scatter(len, slot_of, |slot, pos, k| {
                // SAFETY: unique (slot, pos) per item.
                unsafe { writers[slot].write(pos, id_of(k)) };
            });
        }
    }

    /// `nextBucket` (identical semantics to the two-argument structure).
    pub fn next_bucket(&mut self) -> Option<(BucketId, Vec<Identifier>)> {
        loop {
            while self.cur_local < self.num_open {
                if !self.open[self.cur_local].is_empty() {
                    let raw = std::mem::take(&mut self.open[self.cur_local]);
                    let bkt = self.bucket_of_key(self.cur_key());
                    let d = &self.d;
                    let live: Vec<Identifier> =
                        filter_map(&raw, |&i| if d(i) == bkt { Some(i) } else { None });
                    if !live.is_empty() {
                        return Some((bkt, live));
                    }
                }
                self.cur_local += 1;
            }
            if !self.redistribute_overflow() {
                return None;
            }
        }
    }

    fn redistribute_overflow(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        let over = std::mem::take(&mut self.overflow);
        let window_end = (self.cur_range + 1) * self.num_open as u64;
        let d = &self.d;
        let order = self.order;
        let flip_base = self.flip_base;
        let key_of = |b: BucketId| match order {
            Order::Increasing => b as u64,
            Order::Decreasing => flip_base - b as u64,
        };
        let keyed: Vec<(Identifier, u64)> = filter_map(&over, |&i| {
            let b = d(i);
            if b == NULL_BKT {
                return None;
            }
            let key = key_of(b);
            if key < window_end {
                return None;
            }
            Some((i, key))
        });
        if keyed.is_empty() {
            return false;
        }
        let min_key = keyed
            .par_iter()
            .map(|&(_, k)| k)
            .reduce(|| u64::MAX, u64::min);
        self.cur_range = min_key / self.num_open as u64;
        self.cur_local = (min_key % self.num_open as u64) as usize;
        let slots: Vec<usize> = keyed
            .par_iter()
            .map(|&(_, key)| {
                if key / self.num_open as u64 == self.cur_range {
                    (key % self.num_open as u64) as usize
                } else {
                    self.num_open
                }
            })
            .collect();
        // Map maintenance on redistribution too.
        keyed
            .par_iter()
            .zip(slots.par_iter())
            .for_each(|(&(i, _), &s)| {
                self.location[i as usize].store(s as u32, AtomicOrdering::SeqCst);
            });
        self.insert_with(keyed.len(), &|k| Some(slots[k]), |k| keyed[k].0);
        true
    }

    /// Identifiers moved so far (for throughput accounting).
    pub fn moved(&self) -> u64 {
        self.moved
    }
}

#[cfg(test)]
mod tests {
    use super::super::Order;
    use super::*;

    #[test]
    fn matches_two_argument_structure_on_kcore_like_workload() {
        use julienne_primitives::rng::SplitMix64;
        let n = 5_000usize;
        let mut rng = SplitMix64::new(3);
        let init: Vec<u32> = (0..n).map(|_| rng.next_u32() % 400).collect();
        let a: Vec<AtomicU32> = init.iter().map(|&x| AtomicU32::new(x)).collect();
        let b: Vec<AtomicU32> = init.iter().map(|&x| AtomicU32::new(x)).collect();
        let mut two = crate::bucket::BucketsBuilder::new(
            n,
            |i: u32| a[i as usize].load(AtomicOrdering::SeqCst),
            Order::Increasing,
        )
        .build();
        let mut one = MappedBuckets::new(
            n,
            |i: u32| b[i as usize].load(AtomicOrdering::SeqCst),
            Order::Increasing,
        );
        let mut extracted = vec![false; n];
        loop {
            let x = two.next_bucket();
            let y = one.next_bucket();
            match (x, y) {
                (None, None) => break,
                (Some((kx, mut vx)), Some((ky, mut vy))) => {
                    vx.sort_unstable();
                    vy.sort_unstable();
                    assert_eq!((kx, &vx), (ky, &vy));
                    for &i in &vx {
                        extracted[i as usize] = true;
                    }
                    // Same monotone update stream on both.
                    let cur = kx;
                    let mut mx = Vec::new();
                    let mut my = Vec::new();
                    for i in 0..n as u32 {
                        if extracted[i as usize] || rng.next_range(5) != 0 {
                            continue;
                        }
                        let old = a[i as usize].load(AtomicOrdering::SeqCst);
                        if old <= cur {
                            continue;
                        }
                        let new = cur + rng.next_range((old - cur + 1) as u64) as u32;
                        if new == old {
                            continue;
                        }
                        a[i as usize].store(new, AtomicOrdering::SeqCst);
                        b[i as usize].store(new, AtomicOrdering::SeqCst);
                        mx.push((i, two.get_bucket(old, new)));
                        my.push((i, one.get_bucket(i, new)));
                    }
                    two.update_buckets(&mx);
                    one.update_buckets(&my);
                }
                other => panic!("divergence: {other:?}"),
            }
        }
        assert!(extracted.iter().all(|&e| e));
        assert!(one.moved() > 0);
    }
}
