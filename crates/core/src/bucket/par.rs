//! Work-efficient parallel bucketing (Sections 3.2–3.3).
//!
//! Implements the paper's optimized structure:
//!
//! * only `nB` **open** buckets are physically represented (default 128);
//!   identifiers whose bucket lies beyond the open window live in one
//!   **overflow** bucket;
//! * `getBucket(prev, next)` lets the structure skip physical moves that
//!   start and end in the overflow bucket — the reason the primitive takes
//!   `prev` (the paper measured the internal-map alternative at ~30% more
//!   expensive);
//! * `updateBuckets` writes identifiers directly to their destination
//!   buckets with the blocked-histogram scatter of Section 3.3 (blocks of
//!   M = 2048, strided scan), avoiding the semisort's shuffle — the
//!   semisort route of Section 3.2 is kept as
//!   [`Buckets::update_buckets_semisort`] for the ablation benchmarks;
//! * when the open window is exhausted, the overflow bucket is
//!   redistributed by re-evaluating `D`, jumping `cur` to the window of the
//!   smallest live key.
//!
//! Costs (Lemma 3.2): O(n + T + Σ|Sᵢ|) expected work over K `updateBuckets`
//! calls and O((K + L) log n) depth w.h.p. for L `nextBucket` calls.

use super::{BucketDest, BucketId, Identifier, Order, NULL_BKT};
use julienne_primitives::filter::filter_map;
use julienne_primitives::histogram::blocked_histogram;
use julienne_primitives::semisort::semisort_by_key;
use julienne_primitives::telemetry::{Counter, Telemetry};
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;

/// Default number of open buckets (the paper's default `nB = 128`).
pub const DEFAULT_OPEN_BUCKETS: usize = 128;

/// Operation counters, used by the Figure 1 microbenchmark and the
/// work-efficiency checks of EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Default)]
pub struct BucketStats {
    /// Identifiers returned by `next_bucket`.
    pub identifiers_extracted: u64,
    /// Non-null destinations processed by `update_buckets` (the paper's
    /// throughput metric counts these plus extractions; null requests are
    /// excluded because they are handled without random accesses).
    pub identifiers_moved: u64,
    /// Null destinations received (ignored cheaply).
    pub null_requests: u64,
    /// Non-empty buckets returned.
    pub buckets_extracted: u64,
    /// Times the overflow bucket was redistributed.
    pub overflow_redistributions: u64,
    /// Identifiers reinserted during overflow redistribution.
    pub identifiers_redistributed: u64,
}

/// The parallel bucket structure (the paper's `buckets` object).
///
/// `D` is the user's identifier→bucket map; the structure stores it and
/// re-evaluates it lazily to filter stale copies, exactly as in Julienne.
pub struct Buckets<D> {
    d: D,
    order: Order,
    num_open: usize,
    /// Decreasing order is normalised onto increasing keys:
    /// `key = flip_base − bucket_id`.
    flip_base: u64,
    /// Window index: the open buckets cover keys
    /// `[cur_range·nB, (cur_range+1)·nB)`.
    cur_range: u64,
    /// Position within the window (`0..=num_open`).
    cur_local: usize,
    /// The `nB` open buckets.
    open: Vec<Vec<Identifier>>,
    /// The overflow bucket.
    overflow: Vec<Identifier>,
    stats: BucketStats,
    telemetry: Telemetry,
}

/// Builder for [`Buckets`] — the single construction path.
///
/// ```
/// use julienne::bucket::{BucketsBuilder, Order};
/// let d = vec![2u32, 0, 1];
/// let mut b = BucketsBuilder::new(3, |i| d[i as usize], Order::Increasing)
///     .open_buckets(64)
///     .build();
/// assert_eq!(b.next_bucket().unwrap(), (0, vec![1]));
/// ```
pub struct BucketsBuilder<D> {
    n: usize,
    d: D,
    order: Order,
    num_open: usize,
    telemetry: Telemetry,
}

impl<D: Fn(Identifier) -> BucketId + Sync> BucketsBuilder<D> {
    /// Starts a builder for `makeBuckets(n, D, O)` with the paper's default
    /// window of 128 open buckets and no telemetry.
    pub fn new(n: usize, d: D, order: Order) -> Self {
        BucketsBuilder {
            n,
            d,
            order,
            num_open: DEFAULT_OPEN_BUCKETS,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the open-bucket window size `nB`.
    ///
    /// # Panics
    /// `build` panics if `nB == 0`.
    pub fn open_buckets(mut self, num_open: usize) -> Self {
        self.num_open = num_open;
        self
    }

    /// Attaches a telemetry sink; bucket operations will record moved /
    /// extracted identifier counts and overflow redistributions.
    pub fn telemetry(mut self, sink: &Telemetry) -> Self {
        self.telemetry = sink.clone();
        self
    }

    /// Builds the structure and performs the initial insertion of every
    /// identifier `i in 0..n` with `D(i) != NULL_BKT`.
    pub fn build(self) -> Buckets<D> {
        let BucketsBuilder {
            n,
            d,
            order,
            num_open,
            telemetry,
        } = self;
        assert!(num_open >= 1);
        let flip_base = match order {
            Order::Increasing => 0,
            Order::Decreasing => {
                // Reduce over D, ignoring unbucketed identifiers.
                julienne_primitives::reduce::max_mapped(n, 0, |i| {
                    let b = d(i as Identifier);
                    if b == NULL_BKT {
                        0
                    } else {
                        b
                    }
                }) as u64
            }
        };
        let mut this = Buckets {
            d,
            order,
            num_open,
            flip_base,
            cur_range: 0,
            cur_local: 0,
            open: (0..num_open).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            stats: BucketStats::default(),
            telemetry,
        };
        // Initial insertion of every bucketed identifier, via the same
        // blocked-histogram machinery as updateBuckets. Slots are computed
        // up front (the window starts at 0).
        let slots: Vec<Option<usize>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let b = (this.d)(i as Identifier);
                if b == NULL_BKT {
                    None
                } else {
                    let key = this.key_of(b);
                    let window = key / num_open as u64;
                    Some(if window == 0 {
                        (key % num_open as u64) as usize
                    } else {
                        num_open
                    })
                }
            })
            .collect();
        this.insert_with(n, &|k| slots[k], |k| k as Identifier);
        this
    }
}

impl<D: Fn(Identifier) -> BucketId + Sync> Buckets<D> {
    #[inline]
    fn key_of(&self, b: BucketId) -> u64 {
        match self.order {
            Order::Increasing => b as u64,
            Order::Decreasing => {
                debug_assert!(
                    (b as u64) <= self.flip_base,
                    "decreasing-order bucket id {b} exceeds initial maximum {}",
                    self.flip_base
                );
                self.flip_base - b as u64
            }
        }
    }

    #[inline]
    fn bucket_of_key(&self, key: u64) -> BucketId {
        match self.order {
            Order::Increasing => key as BucketId,
            Order::Decreasing => (self.flip_base - key) as BucketId,
        }
    }

    #[inline]
    fn cur_key(&self) -> u64 {
        self.cur_range * self.num_open as u64 + self.cur_local as u64
    }

    /// Slot (open index or overflow) for a key at-or-beyond the current
    /// window.
    #[inline]
    fn slot_for_key(&self, key: u64) -> usize {
        let window = key / self.num_open as u64;
        debug_assert!(window >= self.cur_range, "key {key} behind current window");
        if window == self.cur_range {
            (key % self.num_open as u64) as usize
        } else {
            self.num_open
        }
    }

    /// `getBucket(prev, next)` (Section 3.1): computes the physical
    /// destination for an identifier whose logical bucket changes from
    /// `prev` (`NULL_BKT` if not yet bucketed) to `next`. Returns
    /// [`BucketDest::NULL`] when no physical move is required — when `next`
    /// is null or behind `cur`, or when source and destination share a slot
    /// (both overflow, or the same open bucket).
    pub fn get_bucket(&self, prev: BucketId, next: BucketId) -> BucketDest {
        if next == NULL_BKT {
            return BucketDest::NULL;
        }
        let key_next = self.key_of(next);
        if key_next < self.cur_key() {
            return BucketDest::NULL;
        }
        let slot_next = self.slot_for_key(key_next);
        // Reinsertion into the *current* bucket: the identifier was just
        // extracted (its physical copy is gone), so it must be inserted even
        // if prev == next. This is what lets nextBucket return cur again
        // (Section 3.1) — e.g. Δ-stepping's intra-annulus re-relaxation and
        // set cover's rebucketing of unchosen sets.
        if key_next == self.cur_key() {
            return BucketDest(slot_next as u32);
        }
        if prev != NULL_BKT {
            let key_prev = self.key_of(prev);
            // A source behind the current window is stale (its copy is dead
            // or extracted); the identifier must be physically (re)inserted.
            if key_prev >= self.cur_range * self.num_open as u64 {
                let slot_prev = if key_prev / self.num_open as u64 == self.cur_range {
                    (key_prev % self.num_open as u64) as usize
                } else {
                    self.num_open
                };
                if slot_prev == slot_next {
                    return BucketDest::NULL;
                }
            }
        }
        BucketDest(slot_next as u32)
    }

    /// `updateBuckets` (Section 3.3): moves `moves.len()` identifiers to
    /// their destinations with the blocked-histogram scatter. Null
    /// destinations are counted but incur no random accesses. An identifier
    /// may appear at most once per call.
    pub fn update_buckets(&mut self, moves: &[(Identifier, BucketDest)]) {
        let nulls = moves.par_iter().filter(|(_, dest)| dest.is_null()).count() as u64;
        self.stats.null_requests += nulls;
        self.stats.identifiers_moved += moves.len() as u64 - nulls;
        self.telemetry
            .add(Counter::IdentifiersMoved, moves.len() as u64 - nulls);
        self.insert_with(
            moves.len(),
            &|k| {
                let (_, dest) = moves[k];
                if dest.is_null() {
                    None
                } else {
                    Some(dest.0 as usize)
                }
            },
            |k| moves[k].0,
        );
    }

    /// Shared insertion kernel: routes item `k in 0..len` to slot
    /// `slot_of(k)` (`None` = skip), writing identifier `id_of(k)`.
    fn insert_with<S, I>(&mut self, len: usize, slot_of: &S, id_of: I)
    where
        S: Fn(usize) -> Option<usize> + Sync,
        I: Fn(usize) -> Identifier + Sync,
    {
        if len == 0 {
            return;
        }
        let num_slots = self.num_open + 1;
        let hist = blocked_histogram(len, num_slots, slot_of);

        // Resize every destination bucket once, then scatter in parallel at
        // unique offsets.
        let mut old_lens = Vec::with_capacity(num_slots);
        for (s, total) in hist.slot_totals.iter().enumerate() {
            let b = if s == self.num_open {
                &mut self.overflow
            } else {
                &mut self.open[s]
            };
            old_lens.push(b.len());
            b.resize(b.len() + total, 0);
        }
        {
            let mut writers: Vec<DisjointWriter<'_, Identifier>> = Vec::with_capacity(num_slots);
            for (s, b) in self
                .open
                .iter_mut()
                .chain(std::iter::once(&mut self.overflow))
                .enumerate()
            {
                let start = old_lens[s];
                writers.push(DisjointWriter::new(&mut b[start..]));
            }
            hist.scatter(len, slot_of, |slot, pos, k| {
                // SAFETY: the histogram hands each (slot, pos) to exactly
                // one item.
                unsafe { writers[slot].write(pos, id_of(k)) };
            });
        }
    }

    /// `nextBucket` (Section 3.1): the id and live identifiers of the next
    /// non-empty bucket, or `None` when the structure is exhausted. The
    /// same bucket id can be returned again if identifiers were reinserted
    /// into `cur`.
    pub fn next_bucket(&mut self) -> Option<(BucketId, Vec<Identifier>)> {
        loop {
            while self.cur_local < self.num_open {
                if !self.open[self.cur_local].is_empty() {
                    let raw = std::mem::take(&mut self.open[self.cur_local]);
                    let bkt = self.bucket_of_key(self.cur_key());
                    let d = &self.d;
                    let live: Vec<Identifier> =
                        filter_map(&raw, |&i| if d(i) == bkt { Some(i) } else { None });
                    if !live.is_empty() {
                        self.stats.identifiers_extracted += live.len() as u64;
                        self.stats.buckets_extracted += 1;
                        self.telemetry
                            .add(Counter::IdentifiersExtracted, live.len() as u64);
                        self.telemetry.incr(Counter::BucketsExtracted);
                        return Some((bkt, live));
                    }
                }
                self.cur_local += 1;
            }
            if !self.redistribute_overflow() {
                return None;
            }
        }
    }

    /// Re-examines the **current** bucket only: if identifiers were
    /// reinserted into it since the last extraction, returns them without
    /// advancing the cursor; otherwise returns `None` (cursor unchanged).
    ///
    /// Used by the light/heavy edge optimization of Δ-stepping (Section
    /// 4.2), which must finish relaxing light edges inside the current
    /// annulus before the heavy relaxations may repopulate *earlier* open
    /// buckets than the next non-empty one.
    pub fn try_next_in_current(&mut self) -> Option<Vec<Identifier>> {
        if self.cur_local >= self.num_open || self.open[self.cur_local].is_empty() {
            return None;
        }
        let raw = std::mem::take(&mut self.open[self.cur_local]);
        let bkt = self.bucket_of_key(self.cur_key());
        let d = &self.d;
        let live: Vec<Identifier> = filter_map(&raw, |&i| if d(i) == bkt { Some(i) } else { None });
        if live.is_empty() {
            return None;
        }
        self.stats.identifiers_extracted += live.len() as u64;
        self.stats.buckets_extracted += 1;
        self.telemetry
            .add(Counter::IdentifiersExtracted, live.len() as u64);
        self.telemetry.incr(Counter::BucketsExtracted);
        Some(live)
    }

    /// Empties the overflow bucket back into the structure. Returns whether
    /// any live identifier remains.
    fn redistribute_overflow(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        self.stats.overflow_redistributions += 1;
        self.telemetry.incr(Counter::OverflowRedistributions);
        let over = std::mem::take(&mut self.overflow);
        let window_end = (self.cur_range + 1) * self.num_open as u64;
        let d = &self.d;
        let order = self.order;
        let flip_base = self.flip_base;
        let key_of = |b: BucketId| -> u64 {
            match order {
                Order::Increasing => b as u64,
                Order::Decreasing => flip_base - b as u64,
            }
        };
        // Re-evaluate D; identifiers that left the structure or whose
        // bucket already passed are dropped.
        let keyed: Vec<(Identifier, u64)> = filter_map(&over, |&i| {
            let b = d(i);
            if b == NULL_BKT {
                return None;
            }
            let key = key_of(b);
            if key < window_end {
                // Processed or finalised while parked in overflow.
                return None;
            }
            Some((i, key))
        });
        if keyed.is_empty() {
            return false;
        }
        let min_key = keyed
            .par_iter()
            .map(|&(_, k)| k)
            .reduce(|| u64::MAX, u64::min);
        self.cur_range = min_key / self.num_open as u64;
        self.cur_local = (min_key % self.num_open as u64) as usize;
        self.stats.identifiers_redistributed += keyed.len() as u64;

        let slots: Vec<usize> = keyed
            .par_iter()
            .map(|&(_, key)| self.slot_for_key(key))
            .collect();
        self.insert_with(keyed.len(), &|k| Some(slots[k]), |k| keyed[k].0);
        true
    }

    /// Semisort-based `updateBuckets` (Section 3.2) — the theoretically
    /// clean variant the paper found slower in practice; kept for the A1
    /// ablation. Semantically identical to [`Buckets::update_buckets`].
    pub fn update_buckets_semisort(&mut self, moves: &[(Identifier, BucketDest)]) {
        let nulls = moves.iter().filter(|(_, d)| d.is_null()).count() as u64;
        self.stats.null_requests += nulls;
        self.stats.identifiers_moved += moves.len() as u64 - nulls;
        self.telemetry
            .add(Counter::IdentifiersMoved, moves.len() as u64 - nulls);

        let mut pairs: Vec<(Identifier, u32)> = filter_map(moves, |&(i, dest)| {
            if dest.is_null() {
                None
            } else {
                Some((i, dest.0))
            }
        });
        if pairs.is_empty() {
            return;
        }
        // Semisort by destination slot, then bulk-append each group.
        let groups = semisort_by_key(&mut pairs, self.num_open as u32, |p| p.1);
        for g in groups {
            let slot = g.key as usize;
            let b = if slot == self.num_open {
                &mut self.overflow
            } else {
                &mut self.open[slot]
            };
            b.extend(pairs[g.start..g.start + g.len].iter().map(|&(i, _)| i));
        }
    }

    /// The operation counters accumulated so far.
    pub fn stats(&self) -> BucketStats {
        self.stats
    }

    /// The number of open buckets (`nB`).
    pub fn num_open_buckets(&self) -> usize {
        self.num_open
    }

    /// The bucket id at the structure's current position.
    pub fn current_bucket(&self) -> BucketId {
        self.bucket_of_key(self.cur_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn atomic_d(init: &[u32]) -> Vec<AtomicU32> {
        init.iter().map(|&x| AtomicU32::new(x)).collect()
    }

    #[test]
    fn increasing_extraction_matches_seq_semantics() {
        let d = atomic_d(&[3, 1, 1, 0, NULL_BKT]);
        let mut b = BucketsBuilder::new(
            5,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        assert_eq!(b.next_bucket().unwrap(), (0, vec![3]));
        let (k, mut ids) = b.next_bucket().unwrap();
        ids.sort_unstable();
        assert_eq!((k, ids), (1, vec![1, 2]));
        assert_eq!(b.next_bucket().unwrap(), (3, vec![0]));
        assert!(b.next_bucket().is_none());
        assert_eq!(b.stats().identifiers_extracted, 4);
        assert_eq!(b.stats().buckets_extracted, 3);
    }

    #[test]
    fn decreasing_extraction() {
        let d = atomic_d(&[3, 1, 5]);
        let mut b = BucketsBuilder::new(
            3,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Decreasing,
        )
        .build();
        assert_eq!(b.next_bucket().unwrap(), (5, vec![2]));
        assert_eq!(b.next_bucket().unwrap(), (3, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (1, vec![1]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn overflow_window_advance() {
        // Identifiers far beyond the first window of 4 open buckets.
        let init: Vec<u32> = vec![1000, 2000, 2, 1001];
        let d = atomic_d(&init);
        let mut b = BucketsBuilder::new(
            4,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .open_buckets(4)
        .build();
        assert_eq!(b.next_bucket().unwrap(), (2, vec![2]));
        assert_eq!(b.next_bucket().unwrap(), (1000, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (1001, vec![3]));
        assert_eq!(b.next_bucket().unwrap(), (2000, vec![1]));
        assert!(b.next_bucket().is_none());
        assert!(b.stats().overflow_redistributions >= 2);
    }

    #[test]
    fn move_between_open_buckets() {
        let d = atomic_d(&[10, 20]);
        let mut b = BucketsBuilder::new(
            2,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        // Move id 1 from 20 to 15 before extraction.
        d[1].store(15, Ordering::Relaxed);
        let dest = b.get_bucket(20, 15);
        assert!(!dest.is_null());
        b.update_buckets(&[(1, dest)]);
        assert_eq!(b.next_bucket().unwrap(), (10, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (15, vec![1]));
        // Stale copy in bucket 20 must be filtered out.
        assert!(b.next_bucket().is_none());
        assert_eq!(b.stats().identifiers_moved, 1);
    }

    #[test]
    fn overflow_to_overflow_is_free() {
        let d = atomic_d(&[500, 900]);
        let mut b = BucketsBuilder::new(
            2,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .open_buckets(8)
        .build();
        // 500 → 600: both in overflow: no physical move.
        d[0].store(600, Ordering::Relaxed);
        let dest = b.get_bucket(500, 600);
        assert!(dest.is_null());
        b.update_buckets(&[(0, dest)]);
        assert_eq!(b.stats().identifiers_moved, 0);
        assert_eq!(b.stats().null_requests, 1);
        // Extraction honours the new D value.
        assert_eq!(b.next_bucket().unwrap(), (600, vec![0]));
        assert_eq!(b.next_bucket().unwrap(), (900, vec![1]));
    }

    #[test]
    fn reinsertion_into_current_bucket() {
        let d = atomic_d(&[1, NULL_BKT]);
        let mut b = BucketsBuilder::new(
            2,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        assert_eq!(b.next_bucket().unwrap(), (1, vec![0]));
        d[1].store(1, Ordering::Relaxed);
        let dest = b.get_bucket(NULL_BKT, 1);
        assert!(!dest.is_null());
        b.update_buckets(&[(1, dest)]);
        assert_eq!(b.next_bucket().unwrap(), (1, vec![1]));
    }

    #[test]
    fn null_and_behind_cur_requests() {
        let d = atomic_d(&[2]);
        let mut b = BucketsBuilder::new(
            1,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        assert!(b.get_bucket(2, NULL_BKT).is_null());
        assert_eq!(b.next_bucket().unwrap(), (2, vec![0]));
        assert!(b.get_bucket(2, 1).is_null(), "behind cur");
        assert!(b.get_bucket(7, 7).is_null(), "same bucket");
    }

    #[test]
    fn semisort_update_agrees_with_histogram_update() {
        let init: Vec<u32> = (0..1000).map(|i| (i * 7) % 300).collect();
        let d1 = atomic_d(&init);
        let d2 = atomic_d(&init);
        let mut b1 = BucketsBuilder::new(
            1000,
            |i| d1[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        let mut b2 = BucketsBuilder::new(
            1000,
            |i| d2[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        // Move every third identifier forward by 50.
        let moves: Vec<u32> = (0..1000).step_by(3).collect();
        let mut m1 = Vec::new();
        let mut m2 = Vec::new();
        for &i in &moves {
            let old = init[i as usize];
            let new = old + 50;
            d1[i as usize].store(new, Ordering::Relaxed);
            d2[i as usize].store(new, Ordering::Relaxed);
            m1.push((i, b1.get_bucket(old, new)));
            m2.push((i, b2.get_bucket(old, new)));
        }
        b1.update_buckets(&m1);
        b2.update_buckets_semisort(&m2);
        loop {
            let x = b1.next_bucket();
            let y = b2.next_bucket();
            match (x, y) {
                (None, None) => break,
                (Some((kx, mut vx)), Some((ky, mut vy))) => {
                    vx.sort_unstable();
                    vy.sort_unstable();
                    assert_eq!(kx, ky);
                    assert_eq!(vx, vy);
                }
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn decreasing_with_shrinking_ids() {
        // Set-cover pattern: ids drop to lower buckets over time.
        let d = atomic_d(&[8, 8, 4]);
        let mut b = BucketsBuilder::new(
            3,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Decreasing,
        )
        .open_buckets(2)
        .build();
        let (k, ids) = b.next_bucket().unwrap();
        assert_eq!(k, 8);
        assert_eq!(ids.len(), 2);
        // id 0 not chosen: degree shrinks to 3 → rebucket.
        d[0].store(3, Ordering::Relaxed);
        let dest = b.get_bucket(8, 3);
        b.update_buckets(&[(0, dest)]);
        assert_eq!(b.next_bucket().unwrap(), (4, vec![2]));
        assert_eq!(b.next_bucket().unwrap(), (3, vec![0]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn empty_structure_none() {
        let mut b = BucketsBuilder::new(10, |_| NULL_BKT, Order::Increasing).build();
        assert!(b.next_bucket().is_none());
        assert_eq!(b.stats().identifiers_extracted, 0);
    }

    #[test]
    fn large_random_drain_extracts_everything_once() {
        use julienne_primitives::rng::SplitMix64;
        let mut rng = SplitMix64::new(42);
        let n = 20_000;
        let init: Vec<u32> = (0..n).map(|_| rng.next_u32() % 5000).collect();
        let d = atomic_d(&init);
        let mut b = BucketsBuilder::new(
            n as usize,
            |i| d[i as usize].load(Ordering::Relaxed),
            Order::Increasing,
        )
        .build();
        let mut seen = vec![false; n as usize];
        let mut last = 0u32;
        while let Some((k, ids)) = b.next_bucket() {
            assert!(k >= last);
            last = k;
            for i in ids {
                assert!(!seen[i as usize], "id {i} extracted twice");
                assert_eq!(init[i as usize], k);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
