//! # Julienne: work-efficient parallel bucketing
//!
//! This crate implements the primary contribution of *"Julienne: A Framework
//! for Parallel Graph Algorithms using Work-efficient Bucketing"* (Dhulipala,
//! Blelloch, Shun — SPAA 2017): a dynamic map from integer **identifiers** to
//! **bucket ids** with efficient inverse access, supporting
//!
//! * [`bucket::Buckets::next_bucket`] — extract the next non-empty bucket in
//!   increasing or decreasing order,
//! * [`bucket::Buckets::get_bucket`] — compute an opaque destination for an
//!   identifier moving between buckets (enabling the overflow-range
//!   optimization of Section 3.3 without an internal id→bucket map),
//! * [`bucket::Buckets::update_buckets`] — move many identifiers at once,
//!   work-efficiently and in low depth.
//!
//! The parallel structure [`bucket::Buckets`] implements the Section 3.3
//! optimizations: only `nB` *open* buckets (default 128) are represented,
//! identifiers logically beyond the open range live in an overflow bucket
//! that is redistributed when the range is exhausted, and `updateBuckets`
//! uses the blocked-histogram scatter (M = 2048) rather than a semisort.
//! The semisort-based variant of Section 3.2 and a sequential reference
//! implementation are also provided, for the ablation benchmarks and as
//! property-test oracles.
//!
//! The `prelude` re-exports the framework surface (Ligra engine + buckets)
//! that the application crate builds on, mirroring how Julienne extends
//! Ligra.

pub mod bucket;
pub mod cache;
pub mod engine;
pub mod query;

/// Counters, spans, and per-round trace records shared by the whole stack
/// (re-exported from `julienne-primitives`; a zero-cost no-op when the
/// `telemetry` feature is off).
pub use julienne_primitives::telemetry;

/// The workspace-wide typed error enum (re-exported from
/// `julienne-primitives`): io / parse-with-line / usage / input plus the
/// query-lifecycle terminations (cancelled, deadline exceeded).
pub use julienne_primitives::error::Error;

pub mod prelude {
    //! Everything an application needs: graph types, the Ligra engine, and
    //! the bucket structure.
    //!
    //! The framework surface is the builder trio: [`Engine`] (shared
    //! options and telemetry sink), [`EdgeMap`] (traversal), and
    //! [`BucketsBuilder`] (bucket structure). Traversals are generic over
    //! the [`OutEdges`] / [`InEdges`] / [`GraphRef`] backend hierarchy.
    pub use crate::bucket::{
        BucketDest, BucketId, BucketStats, Buckets, BucketsBuilder, Identifier, Order, SeqBuckets,
        NULL_BKT,
    };
    pub use crate::cache::{CacheKey, CacheStats, ResultCache};
    pub use crate::engine::{Backend, Engine, EngineBuilder};
    pub use crate::query::{CancelToken, QueryCtx, Session};
    pub use crate::telemetry::{Counter, RoundRecord, Telemetry, TelemetrySnapshot, TraversalKind};
    pub use crate::Error;
    pub use julienne_graph::{Csr, Graph, VertexId, WGraph, Weight};
    pub use julienne_ligra::{
        edge_map_filter_count, edge_map_filter_pack, edge_map_packed, edge_map_sum, vertex_filter,
        vertex_map, vertex_map_data, EdgeMap, EdgeMapOptions, GraphRef, InEdges, Mode, OutEdges,
        VertexSubset, VertexSubsetData,
    };
}
