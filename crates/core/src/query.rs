//! The query lifecycle: sessions, per-query contexts, deadlines, and
//! cooperative cancellation.
//!
//! Julienne (SPAA 2017) is batch-shaped: load a graph, run one algorithm,
//! exit. A serving system instead loads a graph **once** and answers many
//! concurrent queries over it. This module adds the three pieces that
//! lifecycle needs:
//!
//! * [`Session`] — one immutable shared graph (`Arc<G>`, either backend)
//!   plus a template [`Engine`]. [`Session::query`] mints a [`QueryCtx`]
//!   per request, each with its **own telemetry scope**, so concurrent
//!   queries never interleave counters or round records
//!   (`Engine::snapshot` used to be engine-global).
//! * [`QueryCtx`] — everything one query carries through the round loops:
//!   the engine configuration, an optional deadline, and a [`CancelToken`].
//! * [`CancelToken`] — a cheaply-clonable cooperative cancellation flag.
//!   The holder (a server connection, a test) keeps one clone; the query
//!   polls its twin via [`QueryCtx::check`].
//!
//! # The round-boundary contract
//!
//! Algorithms poll [`QueryCtx::check`] **at round boundaries** — once per
//! `next_bucket` / frontier iteration, before any work for that round.
//! Within a round the query runs to completion (rounds are short: one
//! bucket extraction plus one edge map). On cancellation or an expired
//! deadline, `check` returns [`Error::Cancelled`] /
//! [`Error::DeadlineExceeded`], the algorithm propagates the error with
//! `?`, and its buckets, frontiers, and scratch arrays are dropped on the
//! way out. **No partial output escapes** — the caller gets an `Err`, never
//! a half-filled result — and the session stays reusable because queries
//! own all their mutable state.
//!
//! ```
//! use julienne::prelude::*;
//! use std::sync::Arc;
//!
//! let g = Arc::new(julienne_graph::builder::from_pairs(3, &[(0, 1), (1, 2)]));
//! let session = Engine::builder().build().session(g);
//! let ctx = session.query();
//! ctx.check().unwrap(); // not cancelled, no deadline: queries proceed
//!
//! let cancelled = session.query();
//! cancelled.cancel_token().cancel();
//! assert!(cancelled.check().is_err()); // this query is dead ...
//! assert!(session.query().check().is_ok()); // ... the session is not
//! ```

use crate::cache::ResultCache;
use crate::engine::Engine;
use julienne_primitives::error::Error;
use julienne_primitives::telemetry::TelemetrySnapshot;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a query and whoever may
/// cancel it. Clones share the same flag.
///
/// Cancellation is *cooperative*: flipping the flag does nothing by itself;
/// the running query observes it at its next round boundary via
/// [`QueryCtx::check`] and unwinds with [`Error::Cancelled`].
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Deterministic trip wire for tests: when >= 0, each poll decrements
    /// it and the token cancels itself as the count crosses zero. `-1`
    /// means "no budget" (the normal case).
    polls_left: AtomicI64,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                polls_left: AtomicI64::new(-1),
            }),
        }
    }

    /// A token that trips itself on the `n`-th poll (0 = already tripped at
    /// the first poll). Wall-clock-free cancellation for deterministic
    /// lifecycle tests: "cancel exactly at round k" reproduces bit-for-bit
    /// under any scheduler, chaos seeds included.
    pub fn cancel_after_polls(n: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                polls_left: AtomicI64::new(n.min(i64::MAX as u64) as i64),
            }),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the query's next
    /// round boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. Does not consume poll
    /// budget.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// One poll from the round loop: burns poll budget (if armed) and
    /// reports whether the query should stop.
    fn poll(&self) -> bool {
        if self.inner.polls_left.load(Ordering::Relaxed) >= 0
            && self.inner.polls_left.fetch_sub(1, Ordering::AcqRel) <= 0
        {
            self.cancel();
        }
        self.is_cancelled()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Everything one query carries through the round loops: engine
/// configuration (edge-map options, bucket window, telemetry scope), an
/// optional deadline, and a cancellation token.
///
/// Construct via [`Session::query`] for served traffic, or
/// [`QueryCtx::from_engine`] / [`QueryCtx::default`] to run an algorithm
/// directly (the deprecated `foo_with(engine)` wrappers do exactly that).
#[derive(Clone)]
pub struct QueryCtx {
    engine: Engine,
    deadline: Option<Instant>,
    cancel: CancelToken,
    emit_stats: bool,
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::from_engine(&Engine::default())
    }
}

impl QueryCtx {
    /// A context sharing `engine`'s configuration **and telemetry sink** —
    /// the single-query behaviour the pre-session API had. Served queries
    /// should come from [`Session::query`] instead, which scopes telemetry
    /// per query.
    pub fn from_engine(engine: &Engine) -> Self {
        QueryCtx {
            engine: engine.clone(),
            deadline: None,
            cancel: CancelToken::new(),
            emit_stats: false,
        }
    }

    /// Sets a deadline `timeout` from now. [`check`](Self::check) fails
    /// with [`Error::DeadlineExceeded`] at the first round boundary past
    /// it.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a caller-held cancellation token (e.g. one registered in a
    /// server's in-flight table before the query thread starts).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Requests a per-round stats trace in the query's report. Ensures the
    /// telemetry scope is live (a fresh one is minted if this context was
    /// built over a telemetry-less engine).
    pub fn with_stats(mut self, emit: bool) -> Self {
        self.emit_stats = emit;
        if emit && !self.engine.telemetry().is_enabled() {
            self.engine = self.engine.with_telemetry_scope(true);
        }
        self
    }

    /// Whether the query's report should embed the stats trace.
    pub fn emit_stats(&self) -> bool {
        self.emit_stats
    }

    /// A clone of this query's cancellation token, for the party that may
    /// cancel it.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The engine configuration this query runs under.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// This query's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The round-boundary poll: `Err(Cancelled)` if the token tripped,
    /// `Err(DeadlineExceeded)` if the deadline passed, `Ok(())` otherwise.
    ///
    /// Algorithms call this once per round, *before* the round's work, and
    /// propagate the error with `?` so all per-query state (buckets,
    /// frontiers) drops on unwind. Cancellation wins over the deadline when
    /// both apply in the same poll.
    pub fn check(&self) -> Result<(), Error> {
        if self.cancel.poll() {
            return Err(Error::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Error::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Snapshot of this query's telemetry scope (counters + round records).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.engine.snapshot()
    }
}

/// One loaded graph shared across many concurrent queries.
///
/// The graph lives in an `Arc` and is strictly immutable; every query
/// reads it through `&G`, so any number can run at once on the shared
/// worker pool. The session's engine is a *template*: [`Session::query`]
/// clones it with a fresh telemetry scope per query.
pub struct Session<G> {
    engine: Engine,
    graph: Arc<G>,
    /// Graph-version stamp: bumped by [`advance_epoch`](Session::advance_epoch)
    /// whenever the graph logically changes. Cache keys embed it, so a bump
    /// invalidates every cached result without a flush.
    epoch: Arc<AtomicU64>,
    /// Optional shared result cache (see [`crate::cache`]); attached via
    /// [`with_cache`](Session::with_cache).
    cache: Option<Arc<ResultCache>>,
}

impl Engine {
    /// Opens a [`Session`] serving queries over one shared immutable graph.
    /// This engine becomes the per-query template (edge-map options,
    /// bucket window, backend label); its telemetry *enablement* carries
    /// over, but each query records into its own scope.
    pub fn session<G>(&self, graph: Arc<G>) -> Session<G> {
        Session {
            engine: self.clone(),
            graph,
            epoch: Arc::new(AtomicU64::new(0)),
            cache: None,
        }
    }
}

impl<G> Session<G> {
    /// The shared graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// A new reference to the shared graph (e.g. to hand to a query
    /// thread).
    pub fn graph_arc(&self) -> Arc<G> {
        Arc::clone(&self.graph)
    }

    /// The template engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Attaches a result cache with a `capacity_bytes` budget (0 detaches).
    /// Clones of this session share the cache and the epoch counter.
    pub fn with_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache = if capacity_bytes == 0 {
            None
        } else {
            Some(Arc::new(ResultCache::new(capacity_bytes)))
        };
        self
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// The current graph epoch. Cache keys embed this value; results
    /// computed under different epochs never alias.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bumps the graph epoch (returns the new value). Call after any
    /// logical graph mutation: queries admitted afterwards key their cache
    /// entries under the new epoch, so every pre-bump entry becomes
    /// unreachable and ages out of the LRU — no stop-the-world flush.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Mints the context for one query: template configuration, no
    /// deadline, a fresh cancellation token, and — when the template has
    /// telemetry on — a **fresh telemetry scope**, so concurrent queries
    /// never share counters or interleave round records.
    pub fn query(&self) -> QueryCtx {
        let scoped = self
            .engine
            .with_telemetry_scope(self.engine.telemetry().is_enabled());
        QueryCtx {
            engine: scoped,
            deadline: None,
            cancel: CancelToken::new(),
            emit_stats: false,
        }
    }
}

impl<G> Clone for Session<G> {
    fn clone(&self) -> Self {
        Session {
            engine: self.engine.clone(),
            graph: Arc::clone(&self.graph),
            epoch: Arc::clone(&self.epoch),
            cache: self.cache.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctx_passes_checks() {
        let ctx = QueryCtx::default();
        for _ in 0..100 {
            ctx.check().unwrap();
        }
    }

    #[test]
    fn cancel_is_observed_and_sticky() {
        let ctx = QueryCtx::default();
        let token = ctx.cancel_token();
        ctx.check().unwrap();
        token.cancel();
        assert!(matches!(ctx.check(), Err(Error::Cancelled)));
        assert!(matches!(ctx.check(), Err(Error::Cancelled)));
        assert!(token.is_cancelled());
    }

    #[test]
    fn poll_budget_trips_exactly_once_armed() {
        let ctx = QueryCtx::default().with_cancel_token(CancelToken::cancel_after_polls(3));
        ctx.check().unwrap();
        ctx.check().unwrap();
        ctx.check().unwrap();
        assert!(matches!(ctx.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn zero_budget_trips_immediately() {
        let ctx = QueryCtx::default().with_cancel_token(CancelToken::cancel_after_polls(0));
        assert!(matches!(ctx.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn expired_deadline_fails_checks() {
        let ctx = QueryCtx::default().with_deadline(Duration::ZERO);
        assert!(matches!(ctx.check(), Err(Error::DeadlineExceeded)));
        let ctx = QueryCtx::default().with_deadline(Duration::from_secs(3600));
        ctx.check().unwrap();
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let ctx = QueryCtx::default().with_deadline(Duration::ZERO);
        ctx.cancel_token().cancel();
        assert!(matches!(ctx.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn session_queries_are_independent() {
        let engine = Engine::builder().open_buckets(16).build();
        let session = engine.session(Arc::new(42u32));
        assert_eq!(*session.graph(), 42);
        let a = session.query();
        let b = session.query();
        assert_eq!(a.engine().open_buckets(), 16);
        a.cancel_token().cancel();
        assert!(a.check().is_err());
        b.check().unwrap(); // b's token is its own
        session.query().check().unwrap(); // session unaffected
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn session_scopes_telemetry_per_query() {
        use julienne_primitives::telemetry::Counter;
        let engine = Engine::builder().telemetry(true).build();
        let session = engine.session(Arc::new(()));
        let a = session.query();
        let b = session.query();
        a.engine().telemetry().incr(Counter::EdgesScanned);
        assert_eq!(a.engine().telemetry().get(Counter::EdgesScanned), 1);
        // b and the template engine saw nothing: scopes are per query.
        assert_eq!(b.engine().telemetry().get(Counter::EdgesScanned), 0);
        assert_eq!(
            session.engine().telemetry().get(Counter::EdgesScanned),
            0,
            "query counters must not leak into the engine-global sink"
        );
    }

    #[test]
    fn session_epoch_and_cache_are_shared_across_clones() {
        use crate::cache::CacheKey;
        let session = Engine::default().session(Arc::new(())).with_cache(1 << 16);
        let clone = session.clone();
        assert_eq!(session.epoch(), 0);
        assert_eq!(session.advance_epoch(), 1);
        assert_eq!(clone.epoch(), 1, "clones share the epoch counter");

        let cache = session.cache().expect("cache attached");
        cache.put(CacheKey::new("kcore", "top=3", 1), "out".into());
        assert_eq!(
            clone
                .cache()
                .unwrap()
                .get(&CacheKey::new("kcore", "top=3", 1))
                .unwrap()
                .as_str(),
            "out",
            "clones share the cache"
        );
        // A bumped epoch makes the entry unreachable under the new key.
        session.advance_epoch();
        assert!(clone
            .cache()
            .unwrap()
            .get(&CacheKey::new("kcore", "top=3", session.epoch()))
            .is_none());
        // with_cache(0) detaches.
        assert!(Engine::default()
            .session(Arc::new(()))
            .with_cache(0)
            .cache()
            .is_none());
    }

    #[test]
    fn with_stats_mints_a_live_scope() {
        let ctx = QueryCtx::default().with_stats(true);
        assert!(ctx.emit_stats());
        #[cfg(feature = "telemetry")]
        assert!(ctx.engine().telemetry().is_enabled());
    }
}
