//! Shared harness for the paper's tables and figures.
//!
//! * [`micro`] — the Section 3.4 bucket-structure microbenchmark behind
//!   Figure 1,
//! * [`suite`] — the synthetic input suite standing in for Table 2's graphs,
//! * [`sweep`] — thread-count sweeps via per-run Rayon pools (Figures 2–5),
//! * [`timing`] — wall-clock helpers.
//!
//! Binaries (`cargo run -p julienne-bench --release --bin <name>`):
//! `fig1`, `fig2`, `fig3`, `fig4`, `fig5`, `table1_workcheck`, `table2`,
//! `table3` regenerate the corresponding paper artifacts; see EXPERIMENTS.md.

pub mod micro;
pub mod report;
pub mod suite;
pub mod sweep;
pub mod timing;
