//! Thread-count sweeps (Figures 2–5) via per-run Rayon pools.

/// Runs `f` inside a dedicated pool of `threads` workers.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// The thread counts to sweep: powers of two up to the machine's
/// parallelism, always including 1 and the maximum.
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_respects_thread_count() {
        let inside = with_threads(1, rayon::current_num_threads);
        assert_eq!(inside, 1);
    }

    #[test]
    fn sweep_includes_one_and_max() {
        let c = thread_counts();
        assert_eq!(c[0], 1);
        assert!(!c.is_empty());
        let max = std::thread::available_parallelism().unwrap().get();
        assert_eq!(*c.last().unwrap(), max.max(1));
    }

    #[test]
    fn work_completes_in_pool() {
        let sum: u64 = with_threads(1, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }
}
