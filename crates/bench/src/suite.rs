//! The synthetic input suite — laptop-scale stand-ins for Table 2.
//!
//! Each entry mirrors the *shape* that drives the paper's observations:
//! heavy-tailed R-MAT graphs for the social/web inputs (low diameter, large
//! peeling complexity), a grid for road networks (high diameter), and
//! skewed bipartite instances for set cover. Sizes scale with the `scale`
//! knob so the harness can run anywhere from seconds to minutes.

use julienne_graph::generators::{
    chung_lu, grid2d, rmat, set_cover_instance, RmatParams, SetCoverInstance,
};
use julienne_graph::transform::{assign_weights, symmetrize, wbfs_weight_range};
use julienne_graph::{Csr, Graph, WGraph};

/// A named unweighted benchmark graph.
pub struct NamedGraph {
    /// Short name printed in table rows.
    pub name: &'static str,
    /// Which Table 2 input this stands in for.
    pub stands_in_for: &'static str,
    /// The graph.
    pub graph: Graph,
}

/// Default scale for the harness binaries (vertices ≈ 2^scale).
pub const DEFAULT_SCALE: u32 = 14;

/// The symmetric suite used by k-core (Table 3 / Figure 2).
pub fn symmetric_suite(scale: u32) -> Vec<NamedGraph> {
    vec![
        NamedGraph {
            name: "rmat-sym",
            stands_in_for: "com-Orkut / Twitter-Sym",
            graph: rmat(scale, 16, RmatParams::default(), 0xACE1, true),
        },
        NamedGraph {
            name: "chunglu-sym",
            stands_in_for: "Friendster",
            graph: chung_lu(1usize << scale, 12usize << scale, 2.2, 0xACE2, true),
        },
        NamedGraph {
            name: "rmat-dense-sym",
            stands_in_for: "Hyperlink-Host-Sym",
            graph: rmat(
                scale.saturating_sub(1),
                32,
                RmatParams::default(),
                0xACE3,
                true,
            ),
        },
    ]
}

/// The SSSP suite: weighted directed/symmetric graphs. `heavy_weights`
/// picks the `[1, 10^5)` range (Δ-stepping inputs) instead of
/// `[1, ⌈log n⌉)` (wBFS inputs).
pub fn weighted_suite(scale: u32, heavy_weights: bool) -> Vec<(&'static str, WGraph)> {
    let n = 1usize << scale;
    let (lo, hi) = if heavy_weights {
        (1, 100_000)
    } else {
        wbfs_weight_range(n)
    };
    let side = ((n as f64).sqrt() as usize).max(2);
    vec![
        (
            "rmat-sym",
            assign_weights(
                &rmat(scale, 16, RmatParams::default(), 0xBEE1, true),
                lo,
                hi,
                1,
            ),
        ),
        (
            "rmat-dir",
            assign_weights(
                &symmetrize(&rmat(scale, 8, RmatParams::default(), 0xBEE2, false)),
                lo,
                hi,
                2,
            ),
        ),
        ("grid-road", assign_weights(&grid2d(side, side), lo, hi, 3)),
    ]
}

/// The set-cover suite (Table 3 / Figure 5 inputs).
pub fn setcover_suite(scale: u32) -> Vec<(&'static str, SetCoverInstance)> {
    let elems = 1usize << scale;
    vec![
        (
            "cover-skew",
            set_cover_instance(elems / 64, elems, 4, 0xCAFE),
        ),
        (
            "cover-wide",
            set_cover_instance(elems / 16, elems, 2, 0xCAFF),
        ),
    ]
}

/// Unweighted view helper for stats over weighted graphs.
pub fn strip_weights(g: &WGraph) -> Graph {
    Csr::from_parts(
        g.offsets().to_vec(),
        g.targets().to_vec(),
        vec![],
        g.is_symmetric(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_build_and_validate() {
        for g in symmetric_suite(10) {
            assert!(g.graph.validate().is_ok(), "{}", g.name);
            assert!(g.graph.is_symmetric());
        }
        for (name, g) in weighted_suite(10, false) {
            assert!(g.validate().is_ok(), "{name}");
        }
        for (name, inst) in setcover_suite(10) {
            assert!(inst.graph.validate().is_ok(), "{name}");
        }
    }

    #[test]
    fn weight_ranges_differ() {
        let light = weighted_suite(8, false);
        let heavy = weighted_suite(8, true);
        let max_light = light[0].1.weights().iter().max().copied().unwrap();
        let max_heavy = heavy[0].1.weights().iter().max().copied().unwrap();
        assert!(max_light < 20);
        assert!(max_heavy > 1000);
    }
}
