//! The Section 3.4 bucketing microbenchmark (Figure 1).
//!
//! Simulates a bucketing-based application on a degree-8 random graph:
//! identifiers start in uniform random buckets `[0, b)`; each round extracts
//! the next bucket, and every extracted identifier visits 8 random
//! neighbors, moving each neighbor with a bucket above `cur` to
//! `max(cur, D(v)/2)` and retiring (to `nullbkt`) every neighbor at or
//! below `cur` — which guarantees extracted identifiers are never
//! reinserted.
//!
//! Throughput = (identifiers extracted + identifiers moved) / seconds,
//! with `nullbkt` requests excluded, exactly as the paper counts it.

use julienne::bucket::{BucketDest, BucketsBuilder, Order, NULL_BKT};
use julienne_graph::generators::random_regular;
use julienne_ligra::traits::OutEdges;
use julienne_primitives::rng::hash_range;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Outcome of one microbenchmark run.
#[derive(Clone, Copy, Debug)]
pub struct MicroResult {
    /// Initial bucket count `b`.
    pub initial_buckets: u32,
    /// Number of identifiers `n`.
    pub num_identifiers: usize,
    /// Rounds until the structure drained.
    pub rounds: u64,
    /// Identifiers extracted by `nextBucket`.
    pub extracted: u64,
    /// Identifiers moved by `updateBuckets` (null requests excluded).
    pub moved: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl MicroResult {
    /// Identifiers per second (the Figure 1 y-axis).
    pub fn throughput(&self) -> f64 {
        (self.extracted + self.moved) as f64 / self.seconds
    }

    /// Average identifiers processed per round (the Figure 1 x-axis).
    pub fn ids_per_round(&self) -> f64 {
        (self.extracted + self.moved) as f64 / self.rounds.max(1) as f64
    }
}

/// Runs the microbenchmark with `n` identifiers, `b` initial buckets, and
/// `num_open` open buckets in the structure. `use_semisort` switches
/// `updateBuckets` to the Section 3.2 semisort variant (the A1 ablation).
pub fn bucket_microbenchmark(
    n: usize,
    b: u32,
    num_open: usize,
    seed: u64,
    use_semisort: bool,
) -> MicroResult {
    assert!(b >= 1);
    let g = random_regular(n, 8, seed, false);
    let d: Vec<AtomicU32> = (0..n as u64)
        .map(|i| AtomicU32::new(hash_range(seed ^ 0xB0C4, i, b as u64) as u32))
        .collect();

    let start = Instant::now();
    let mut buckets = BucketsBuilder::new(
        n,
        |i: u32| d[i as usize].load(Ordering::SeqCst),
        Order::Increasing,
    )
    .open_buckets(num_open)
    .build();
    let mut rounds = 0u64;
    while let Some((cur, ids)) = buckets.next_bucket() {
        rounds += 1;
        // Visit up to 8 out-neighbors of each extracted identifier. A CAS
        // claims each neighbor's update so one round never emits the same
        // (identifier, destination) twice.
        let per_id: Vec<Vec<(u32, BucketDest)>> = ids
            .par_iter()
            .map(|&i| {
                let mut local = Vec::with_capacity(8);
                g.for_each_out(i, |v, _| {
                    loop {
                        let dv = d[v as usize].load(Ordering::SeqCst);
                        if dv == NULL_BKT {
                            break;
                        }
                        if dv > cur {
                            let new = (dv / 2).max(cur);
                            if d[v as usize]
                                .compare_exchange(dv, new, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok()
                            {
                                local.push((v, buckets.get_bucket(dv, new)));
                                break;
                            }
                            // lost the race: re-read and retry
                        } else {
                            // Retire: never reinserted (null request).
                            if d[v as usize]
                                .compare_exchange(dv, NULL_BKT, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok()
                            {
                                local.push((v, BucketDest::NULL));
                                break;
                            }
                        }
                    }
                });
                local
            })
            .collect();
        let moves: Vec<(u32, BucketDest)> = per_id.into_iter().flatten().collect();
        if use_semisort {
            buckets.update_buckets_semisort(&moves);
        } else {
            buckets.update_buckets(&moves);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = buckets.stats();
    MicroResult {
        initial_buckets: b,
        num_identifiers: n,
        rounds,
        extracted: stats.identifiers_extracted,
        moved: stats.identifiers_moved,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_and_counts() {
        let r = bucket_microbenchmark(10_000, 128, 128, 42, false);
        assert!(r.extracted >= 1);
        assert!(r.rounds >= 1);
        assert!(r.throughput() > 0.0);
        assert!(r.ids_per_round() > 0.0);
        // Everything initially bucketed must eventually be extracted or
        // retired; extracted ≤ n + moved (each move can add one copy).
        assert!(r.extracted <= r.num_identifiers as u64 + r.moved);
    }

    #[test]
    fn semisort_variant_also_drains() {
        let a = bucket_microbenchmark(5_000, 256, 128, 7, false);
        let b = bucket_microbenchmark(5_000, 256, 128, 7, true);
        // Same deterministic workload → identical operation counts.
        assert_eq!(a.extracted, b.extracted);
        assert_eq!(a.moved, b.moved);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn more_buckets_more_rounds() {
        let small = bucket_microbenchmark(20_000, 16, 128, 3, false);
        let large = bucket_microbenchmark(20_000, 1024, 128, 3, false);
        assert!(large.rounds > small.rounds);
    }
}
