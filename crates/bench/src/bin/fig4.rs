//! Figure 4: Δ-stepping running time vs. thread count — Julienne
//! (Δ = 32768, the paper's best setting) vs. Bellman–Ford (Ligra),
//! GAP-style bins, and sequential Dijkstra. Weights uniform in [1, 10^5).
//!
//! Usage: `cargo run -p julienne-bench --release --bin fig4 [scale]`

use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{self, SsspParams};
use julienne_algorithms::{bellman_ford, dijkstra, gap_delta};
use julienne_bench::suite::{weighted_suite, DEFAULT_SCALE};
use julienne_bench::sweep::{thread_counts, with_threads};
use julienne_bench::timing::{scale_arg, time};

const DELTA: u64 = 32768;

fn main() {
    let scale = scale_arg(DEFAULT_SCALE);
    println!(
        "# Figure 4: Δ-stepping (Δ = {DELTA}, weights in [1, 1e5)) time in seconds vs thread count"
    );
    for (name, g) in weighted_suite(scale, true) {
        println!("\n## {}: n={} m={}", name, g.num_vertices(), g.num_edges());
        let (oracle, tseq) = time(|| dijkstra::dijkstra(&g, 0));
        println!(
            "{:>8} {:>16} {:>16} {:>14}",
            "threads", "julienne-delta", "ligra-bellman", "gap-style"
        );
        for t in thread_counts() {
            let (rj, tj) = with_threads(t, || {
                time(|| {
                    delta_stepping::sssp(
                        &g,
                        &SsspParams {
                            src: 0,
                            delta: DELTA,
                        },
                        &QueryCtx::default(),
                    )
                    .unwrap()
                })
            });
            let (rb, tb) = with_threads(t, || time(|| bellman_ford::bellman_ford(&g, 0)));
            let (rg, tg) = with_threads(t, || time(|| gap_delta::gap_delta_stepping(&g, 0, DELTA)));
            assert_eq!(rj.dist, oracle, "delta-stepping wrong");
            assert_eq!(rb.dist, oracle, "bellman-ford wrong");
            assert_eq!(rg.dist, oracle, "gap wrong");
            println!("{:>8} {:>15.3}s {:>15.3}s {:>13.3}s", t, tj, tb, tg);
        }
        println!(
            "{:>8} {:>15.3}s  (sequential Dijkstra / DIMACS stand-in)",
            "seq", tseq
        );
    }
    println!("\n# Expected shape: Julienne ≤ GAP-style (no duplicate bin entries)");
    println!("# and well below Bellman–Ford on heavy-tailed graphs.");
}
