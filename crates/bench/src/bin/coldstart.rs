//! Cold-start benchmark for the `.jgr` container: how long from process
//! start to a queryable graph, per on-disk format.
//!
//! The text loaders and the legacy binary format pay O(m) parse/copy work
//! before the first query can run; `MappedGraph::open` validates only the
//! 64-byte header and section table, so its cost is independent of graph
//! size. This harness times all three on the Table 3 stand-in suite and
//! writes `results/coldstart.{txt,csv}`.
//!
//! ```sh
//! cargo run -p julienne-bench --release --bin coldstart [scale]
//! ```

use julienne_bench::report::Table;
use julienne_bench::suite::symmetric_suite;
use julienne_bench::timing::{scale_arg, time_best};
use julienne_graph::container::MappedGraph;
use julienne_graph::io::{Format, GraphIo, IoOptions};
use julienne_graph::Graph;
use std::path::PathBuf;

const REPS: usize = 5;

fn tmp(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "julienne-coldstart-{}-{name}.{ext}",
        std::process::id()
    ))
}

fn main() {
    let scale = scale_arg(14);
    let mut table = Table::new(
        "coldstart",
        &[
            "graph",
            "n",
            "m",
            "adj_load_s",
            "bin_load_s",
            "jgr_open_s",
            "adj_over_jgr",
            "bin_over_jgr",
        ],
    );
    println!("# Cold start (scale {scale}): file -> first queryable edge, best of {REPS}");
    println!(
        "{:<16} {:>9} {:>10} {:>11} {:>11} {:>11} {:>13} {:>13}",
        "graph", "n", "m", "adj_load_s", "bin_load_s", "jgr_open_s", "adj/jgr", "bin/jgr"
    );
    for input in symmetric_suite(scale) {
        let g = input.graph;
        let (n, m) = (g.num_vertices(), g.num_edges());
        let adj = tmp(input.name, "adj");
        let bin = tmp(input.name, "bin");
        let jgr = tmp(input.name, "jgr");
        let opts = IoOptions::default();
        GraphIo::write(&g, &adj, &opts).unwrap();
        GraphIo::write(&g, &bin, &opts).unwrap();
        GraphIo::write(&g, &jgr, &opts).unwrap();

        // Each timed closure ends at the same milestone: vertex 0's first
        // out-edge is reachable, i.e. the graph can answer a query.
        let touch = |g: &Graph| g.neighbors(0).first().copied().unwrap_or(0);
        let (_, adj_s) = time_best(REPS, || {
            let opts = IoOptions {
                format: Some(Format::Adjacency),
                ..Default::default()
            };
            let g: Graph = GraphIo::read(&adj, &opts).unwrap();
            touch(&g)
        });
        let (_, bin_s) = time_best(REPS, || {
            let g: Graph = GraphIo::read(&bin, &opts).unwrap();
            touch(&g)
        });
        let (_, jgr_s) = time_best(REPS, || {
            let mg: MappedGraph<()> = MappedGraph::open(&jgr).unwrap();
            mg.neighbors(0).first().copied().unwrap_or(0)
        });

        let adj_over = adj_s / jgr_s.max(1e-9);
        let bin_over = bin_s / jgr_s.max(1e-9);
        println!(
            "{:<16} {:>9} {:>10} {:>11.6} {:>11.6} {:>11.6} {:>12.1}x {:>12.1}x",
            input.name, n, m, adj_s, bin_s, jgr_s, adj_over, bin_over
        );
        table.rowf(&[
            &input.name,
            &n,
            &m,
            &format!("{adj_s:.6}"),
            &format!("{bin_s:.6}"),
            &format!("{jgr_s:.6}"),
            &format!("{adj_over:.1}"),
            &format!("{bin_over:.1}"),
        ]);
        for p in [adj, bin, jgr] {
            std::fs::remove_file(p).ok();
        }
    }

    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let txt = dir.join("coldstart.txt");
    if std::fs::write(&txt, table.render()).is_ok() {
        println!("\n(wrote {})", txt.display());
    }
    let csv = dir.join("coldstart.csv");
    if table.write_csv(&csv).is_ok() {
        println!("(wrote {})", csv.display());
    }
}
