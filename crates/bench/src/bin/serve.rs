//! Serve-mode throughput: one loaded graph behind `julienne serve`'s
//! engine, a sweep of concurrent client connections each pipelining the
//! mixed query workload (k-core, Δ-stepping, wBFS, set cover), measured as
//! completed queries per second. Every answer is checked bit-identical to
//! the direct API, so the bench doubles as an end-to-end session test.
//!
//! Usage: `cargo run -p julienne-bench --release --bin serve [scale]`
//!
//! Writes `results/serve.txt` and `results/serve.csv`.

use julienne::prelude::{Backend, Engine, QueryCtx};
use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
use julienne_bench::report::Table;
use julienne_bench::timing::{scale_arg, time};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::assign_weights;
use julienne_server::json::Json;
use julienne_server::{query_request, Client, Server};
use std::collections::HashMap;
use std::thread;

/// The mixed workload; parameters sized so each query does real bucketing
/// work without dwarfing the protocol round-trips being measured.
const MIX: &[(&str, &[(&str, &str)])] = &[
    ("kcore", &[("top", "3")]),
    (
        "sssp",
        &[("algo", "delta"), ("src", "1"), ("delta", "4096")],
    ),
    ("sssp", &[("algo", "wbfs"), ("src", "2")]),
    (
        "setcover",
        &[
            ("sets", "256"),
            ("elements", "16384"),
            ("mult", "2"),
            ("seed", "3"),
        ],
    ),
];

/// Connection counts swept; each connection pipelines this many queries.
const CONNS: [usize; 4] = [1, 2, 4, 8];
const QUERIES_PER_CONN: usize = 16;

fn store(scale: u32, backend: Backend) -> GraphStore {
    let g = assign_weights(&rmat(scale, 8, RmatParams::default(), 5, true), 1, 64, 9);
    GraphStore::from_weighted(g, backend)
}

fn direct_answers(scale: u32, backend: Backend) -> Vec<String> {
    let s = store(scale, backend);
    MIX.iter()
        .map(|(algo, params)| {
            let pm =
                ParamMap::from_pairs(params.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            Registry::standard()
                .run(algo, &s, &pm, &QueryCtx::default())
                .expect("direct baseline run failed")
        })
        .collect()
}

/// Drives `conns` connections × `QUERIES_PER_CONN` pipelined queries and
/// returns wall seconds; panics if any answer deviates from `expect`.
fn drive(addr: &str, conns: usize, expect: &[String]) -> f64 {
    let (_, secs) = time(|| {
        let mut clients = Vec::new();
        for c in 0..conns {
            let addr = addr.to_string();
            let expect = expect.to_vec();
            clients.push(thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for q in 0..QUERIES_PER_CONN {
                    let (algo, params) = MIX[(c + q) % MIX.len()];
                    client
                        .send(&query_request(
                            &format!("q{c}-{q}"),
                            algo,
                            params,
                            None,
                            false,
                        ))
                        .expect("send");
                }
                let mut got: HashMap<String, String> = HashMap::new();
                for _ in 0..QUERIES_PER_CONN {
                    let resp = client.recv().expect("recv");
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "query failed: {}",
                        resp.to_json()
                    );
                    got.insert(
                        resp.get("id").unwrap().as_str().unwrap().to_string(),
                        resp.get("output").unwrap().as_str().unwrap().to_string(),
                    );
                }
                for q in 0..QUERIES_PER_CONN {
                    let idx = (c + q) % MIX.len();
                    assert_eq!(
                        got[&format!("q{c}-{q}")],
                        expect[idx],
                        "served answer diverged from direct API ({})",
                        MIX[idx].0
                    );
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
    });
    secs
}

fn main() {
    let scale = scale_arg(14);
    let mut table = Table::new(
        "serve",
        &[
            "backend",
            "connections",
            "queries",
            "seconds",
            "queries_per_sec",
        ],
    );
    println!("# Serve-mode throughput (scale {scale}): one loaded graph, concurrent mixed queries");
    println!(
        "{:<12} {:>12} {:>9} {:>9} {:>16}",
        "backend", "connections", "queries", "seconds", "queries/sec"
    );
    for backend in [Backend::Csr, Backend::Compressed] {
        let expect = direct_answers(scale, backend);
        let server =
            Server::bind("127.0.0.1:0", &Engine::default(), store(scale, backend)).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.shutdown_handle();
        let join = thread::spawn(move || server.serve());
        let name = backend.name();
        // Warm-up: touch every algorithm once before timing.
        drive(&addr, 1, &expect);
        for conns in CONNS {
            let secs = drive(&addr, conns, &expect);
            let queries = conns * QUERIES_PER_CONN;
            let qps = queries as f64 / secs;
            println!("{name:<12} {conns:>12} {queries:>9} {secs:>9.3} {qps:>16.1}");
            table.rowf(&[
                &name,
                &conns,
                &queries,
                &format!("{secs:.4}"),
                &format!("{qps:.1}"),
            ]);
        }
        handle.stop();
        join.join().unwrap().expect("serve");
    }

    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let txt = dir.join("serve.txt");
    if std::fs::write(&txt, table.render()).is_ok() {
        println!("\n(wrote {})", txt.display());
    }
    let csv = dir.join("serve.csv");
    if table.write_csv(&csv).is_ok() {
        println!("(wrote {})", csv.display());
    }
}
