//! Serve-mode throughput: one loaded graph behind `julienne serve`'s
//! engine, measured as completed queries per second. Three sections:
//!
//! 1. **Mixed sweep** — a sweep of concurrent client connections each
//!    pipelining the mixed query workload (k-core, Δ-stepping, wBFS, set
//!    cover) against the default (unbatched, uncached) pipeline.
//! 2. **Batched vs solo** — a homogeneous 8-connection wBFS burst served
//!    twice: once solo, once with a batch window so the scheduler fuses
//!    the burst into multi-source traversals. Every wire payload is
//!    checked byte-identical to the direct API, and the run asserts the
//!    batched configuration clears 2× solo throughput.
//! 3. **Cached** — the same burst against a result-cache-armed server
//!    after a warming pass, reporting the observed hit share.
//!
//! Every answer is checked bit-identical to the direct API, so the bench
//! doubles as an end-to-end session test.
//!
//! Usage: `cargo run -p julienne-bench --release --bin serve [scale]`
//!
//! Writes `results/serve.txt` and `results/serve.csv`.

use julienne::prelude::{Backend, Engine, QueryCtx};
use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
use julienne_bench::report::Table;
use julienne_bench::timing::{scale_arg, time};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::assign_weights;
use julienne_server::json::Json;
use julienne_server::{query_request, Client, SchedPolicy, SchedulerConfig, Server};
use std::collections::HashMap;
use std::thread;
use std::time::Duration;

/// The mixed workload; parameters sized so each query does real bucketing
/// work without dwarfing the protocol round-trips being measured.
const MIX: &[(&str, &[(&str, &str)])] = &[
    ("kcore", &[("top", "3")]),
    (
        "sssp",
        &[("algo", "delta"), ("src", "1"), ("delta", "4096")],
    ),
    ("sssp", &[("algo", "wbfs"), ("src", "2")]),
    (
        "setcover",
        &[
            ("sets", "256"),
            ("elements", "16384"),
            ("mult", "2"),
            ("seed", "3"),
        ],
    ),
];

/// Connection counts swept; each connection pipelines this many queries.
const CONNS: [usize; 4] = [1, 2, 4, 8];
const QUERIES_PER_CONN: usize = 16;

/// The homogeneous burst: 8 connections of wBFS queries over a small set
/// of popular sources — the shape the batch coalescer exists for.
const HOM_CONNS: usize = 8;
const HOM_SRCS: [u32; 4] = [1, 2, 3, 5];

fn store(scale: u32, backend: Backend) -> GraphStore {
    let g = assign_weights(&rmat(scale, 8, RmatParams::default(), 5, true), 1, 64, 9);
    GraphStore::from_weighted(g, backend)
}

fn direct_answers(scale: u32, backend: Backend) -> Vec<String> {
    let s = store(scale, backend);
    MIX.iter()
        .map(|(algo, params)| {
            let pm =
                ParamMap::from_pairs(params.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            Registry::standard()
                .run(algo, &s, &pm, &QueryCtx::default())
                .expect("direct baseline run failed")
        })
        .collect()
}

fn wbfs_answers(scale: u32, backend: Backend) -> HashMap<u32, String> {
    let s = store(scale, backend);
    HOM_SRCS
        .iter()
        .map(|&src| {
            let pm = ParamMap::from_pairs([
                ("algo".to_string(), "wbfs".to_string()),
                ("src".to_string(), src.to_string()),
            ]);
            let out = Registry::standard()
                .run("sssp", &s, &pm, &QueryCtx::default())
                .expect("direct wbfs run failed");
            (src, out)
        })
        .collect()
}

/// Drives `conns` connections × `QUERIES_PER_CONN` pipelined mixed queries
/// and returns wall seconds; panics if any answer deviates from `expect`.
fn drive(addr: &str, conns: usize, expect: &[String]) -> f64 {
    let (_, secs) = time(|| {
        let mut clients = Vec::new();
        for c in 0..conns {
            let addr = addr.to_string();
            let expect = expect.to_vec();
            clients.push(thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for q in 0..QUERIES_PER_CONN {
                    let (algo, params) = MIX[(c + q) % MIX.len()];
                    client
                        .send(&query_request(
                            &format!("q{c}-{q}"),
                            algo,
                            params,
                            None,
                            false,
                        ))
                        .expect("send");
                }
                let mut got: HashMap<String, String> = HashMap::new();
                for _ in 0..QUERIES_PER_CONN {
                    let resp = client.recv().expect("recv");
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "query failed: {}",
                        resp.to_json()
                    );
                    got.insert(
                        resp.get("id").unwrap().as_str().unwrap().to_string(),
                        resp.get("output").unwrap().as_str().unwrap().to_string(),
                    );
                }
                for q in 0..QUERIES_PER_CONN {
                    let idx = (c + q) % MIX.len();
                    assert_eq!(
                        got[&format!("q{c}-{q}")],
                        expect[idx],
                        "served answer diverged from direct API ({})",
                        MIX[idx].0
                    );
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
    });
    secs
}

/// Drives the homogeneous wBFS burst and returns `(seconds, batched,
/// cached)` — the flag counts across all responses. Every `output`
/// payload is asserted byte-identical to the direct API answer for its
/// source, whatever pipeline configuration served it.
fn drive_homogeneous(addr: &str, expect: &HashMap<u32, String>) -> (f64, usize, usize) {
    let (counts, secs) = time(|| {
        let mut clients = Vec::new();
        for c in 0..HOM_CONNS {
            let addr = addr.to_string();
            let expect = expect.clone();
            clients.push(thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for q in 0..QUERIES_PER_CONN {
                    let src = HOM_SRCS[(c + q) % HOM_SRCS.len()];
                    client
                        .send(&query_request(
                            &format!("h{c}-{q}"),
                            "sssp",
                            &[("algo", "wbfs"), ("src", &src.to_string())],
                            None,
                            false,
                        ))
                        .expect("send");
                }
                let (mut batched, mut cached) = (0usize, 0usize);
                for _ in 0..QUERIES_PER_CONN {
                    let resp = client.recv().expect("recv");
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "query failed: {}",
                        resp.to_json()
                    );
                    let id = resp.get("id").unwrap().as_str().unwrap();
                    let q: usize = id.split('-').nth(1).unwrap().parse().unwrap();
                    let src = HOM_SRCS[(c + q) % HOM_SRCS.len()];
                    assert_eq!(
                        resp.get("output").unwrap().as_str().unwrap(),
                        expect[&src],
                        "served wBFS answer diverged from direct API (src={src})"
                    );
                    batched +=
                        usize::from(resp.get("batched").and_then(Json::as_bool) == Some(true));
                    cached += usize::from(resp.get("cached").and_then(Json::as_bool) == Some(true));
                }
                (batched, cached)
            }));
        }
        clients
            .into_iter()
            .map(|c| c.join().unwrap())
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1))
    });
    (secs, counts.0, counts.1)
}

fn start(scale: u32, backend: Backend, config: SchedulerConfig) -> (String, impl FnOnce()) {
    let server = Server::bind_with(
        "127.0.0.1:0",
        &Engine::default(),
        store(scale, backend),
        config,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.serve());
    (addr, move || {
        handle.stop();
        join.join().unwrap().expect("serve");
    })
}

fn batching(cache_bytes: usize) -> SchedulerConfig {
    SchedulerConfig {
        batch_window: Duration::from_millis(25),
        cache_bytes,
        policy: SchedPolicy::Fifo,
    }
}

fn main() {
    let scale = scale_arg(14);
    let mut table = Table::new(
        "serve",
        &[
            "mode",
            "backend",
            "connections",
            "queries",
            "seconds",
            "queries_per_sec",
            "speedup_vs_solo",
            "batched_share",
            "cached_share",
        ],
    );
    println!("# Serve-mode throughput (scale {scale}): one loaded graph, concurrent queries");
    println!(
        "{:<9} {:<12} {:>5} {:>8} {:>8} {:>12} {:>8} {:>9} {:>9}",
        "mode",
        "backend",
        "conns",
        "queries",
        "seconds",
        "queries/sec",
        "speedup",
        "batched",
        "cached"
    );
    for backend in [Backend::Csr, Backend::Compressed] {
        let name = backend.name();

        // Section 1: mixed sweep on the default pipeline.
        let expect = direct_answers(scale, backend);
        let (addr, stop) = start(scale, backend, SchedulerConfig::default());
        drive(&addr, 1, &expect); // warm-up: touch every algorithm once
        for conns in CONNS {
            let secs = drive(&addr, conns, &expect);
            let queries = conns * QUERIES_PER_CONN;
            let qps = queries as f64 / secs;
            println!(
                "{:<9} {name:<12} {conns:>5} {queries:>8} {secs:>8.3} {qps:>12.1} {:>8} {:>9} {:>9}",
                "mixed", "-", "0.00", "0.00"
            );
            table.rowf(&[
                &"mixed",
                &name,
                &conns,
                &queries,
                &format!("{secs:.4}"),
                &format!("{qps:.1}"),
                &"-",
                &"0.00",
                &"0.00",
            ]);
        }

        // Section 2: the homogeneous wBFS burst, solo vs batched.
        let hom = wbfs_answers(scale, backend);
        let queries = HOM_CONNS * QUERIES_PER_CONN;

        drive_homogeneous(&addr, &hom); // warm-up on the solo server
        let (solo_secs, b, c) = drive_homogeneous(&addr, &hom);
        assert_eq!((b, c), (0, 0), "unbatched server must not set flags");
        let solo_qps = queries as f64 / solo_secs;
        println!(
            "{:<9} {name:<12} {HOM_CONNS:>5} {queries:>8} {solo_secs:>8.3} {solo_qps:>12.1} {:>8} {:>9} {:>9}",
            "wbfs-solo", "1.00", "0.00", "0.00"
        );
        table.rowf(&[
            &"wbfs-solo",
            &name,
            &HOM_CONNS,
            &queries,
            &format!("{solo_secs:.4}"),
            &format!("{solo_qps:.1}"),
            &"1.00",
            &"0.00",
            &"0.00",
        ]);
        stop();

        let (addr, stop) = start(scale, backend, batching(0));
        drive_homogeneous(&addr, &hom); // warm-up
        let (bat_secs, batched, _) = drive_homogeneous(&addr, &hom);
        let bat_qps = queries as f64 / bat_secs;
        let speedup = bat_qps / solo_qps;
        let bshare = batched as f64 / queries as f64;
        println!(
            "{:<9} {name:<12} {HOM_CONNS:>5} {queries:>8} {bat_secs:>8.3} {bat_qps:>12.1} {speedup:>8.2} {bshare:>9.2} {:>9}",
            "wbfs-batch", "0.00"
        );
        table.rowf(&[
            &"wbfs-batch",
            &name,
            &HOM_CONNS,
            &queries,
            &format!("{bat_secs:.4}"),
            &format!("{bat_qps:.1}"),
            &format!("{speedup:.2}"),
            &format!("{bshare:.2}"),
            &"0.00",
        ]);
        assert!(
            speedup >= 2.0,
            "batched serving must clear 2x solo throughput on the homogeneous \
             burst (got {speedup:.2}x on {name})"
        );
        stop();

        // Section 3: cache-armed server, warmed then measured.
        let (addr, stop) = start(scale, backend, batching(64 << 20));
        drive_homogeneous(&addr, &hom); // warming pass populates the cache
        let (cache_secs, _, cached) = drive_homogeneous(&addr, &hom);
        let cache_qps = queries as f64 / cache_secs;
        let cshare = cached as f64 / queries as f64;
        println!(
            "{:<9} {name:<12} {HOM_CONNS:>5} {queries:>8} {cache_secs:>8.3} {cache_qps:>12.1} {:>8.2} {:>9} {cshare:>9.2}",
            "wbfs-cache",
            cache_qps / solo_qps,
            "0.00"
        );
        table.rowf(&[
            &"wbfs-cache",
            &name,
            &HOM_CONNS,
            &queries,
            &format!("{cache_secs:.4}"),
            &format!("{cache_qps:.1}"),
            &format!("{:.2}", cache_qps / solo_qps),
            &"0.00",
            &format!("{cshare:.2}"),
        ]);
        stop();
    }

    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let txt = dir.join("serve.txt");
    if std::fs::write(&txt, table.render()).is_ok() {
        println!("\n(wrote {})", txt.display());
    }
    let csv = dir.join("serve.csv");
    if table.write_csv(&csv).is_ok() {
        println!("(wrote {})", csv.display());
    }
}
