//! Figure 3: wBFS running time vs. thread count — Julienne wBFS vs.
//! Bellman–Ford (Ligra), GAP-style Δ-stepping, and sequential Dijkstra.
//! Weights are uniform in [1, ⌈log n⌉).
//!
//! Usage: `cargo run -p julienne-bench --release --bin fig3 [scale]`

use julienne_algorithms::{bellman_ford, delta_stepping, dijkstra, gap_delta};
use julienne_bench::suite::{weighted_suite, DEFAULT_SCALE};
use julienne_bench::sweep::{thread_counts, with_threads};
use julienne_bench::timing::{scale_arg, time};

fn main() {
    let scale = scale_arg(DEFAULT_SCALE);
    println!("# Figure 3: wBFS (Δ = 1, weights in [1, log n)) time in seconds vs thread count");
    for (name, g) in weighted_suite(scale, false) {
        println!("\n## {}: n={} m={}", name, g.num_vertices(), g.num_edges());
        let (oracle, tseq) = time(|| dijkstra::dijkstra(&g, 0));
        println!(
            "{:>8} {:>14} {:>16} {:>14}",
            "threads", "julienne-wbfs", "ligra-bellman", "gap-style"
        );
        for t in thread_counts() {
            let (rj, tj) = with_threads(t, || time(|| delta_stepping::wbfs(&g, 0)));
            let (rb, tb) = with_threads(t, || time(|| bellman_ford::bellman_ford(&g, 0)));
            let (rg, tg) = with_threads(t, || time(|| gap_delta::gap_delta_stepping(&g, 0, 1)));
            assert_eq!(rj.dist, oracle, "wbfs wrong");
            assert_eq!(rb.dist, oracle, "bellman-ford wrong");
            assert_eq!(rg.dist, oracle, "gap wrong");
            println!("{:>8} {:>13.3}s {:>15.3}s {:>13.3}s", t, tj, tb, tg);
        }
        println!(
            "{:>8} {:>13.3}s  (sequential Dijkstra / DIMACS stand-in)",
            "seq", tseq
        );
    }
    println!("\n# Expected shape: wBFS ≤ Bellman–Ford everywhere (fewer relaxations);");
    println!("# Bellman–Ford suffers most on the high-diameter grid.");
}
