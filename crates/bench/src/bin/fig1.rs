//! Figure 1: bucket-structure throughput vs. average identifiers per round,
//! for b ∈ {128, 256, 512, 1024} initial buckets, plus the application
//! points (k-core, wBFS, Δ-stepping, set cover).
//!
//! Usage: `cargo run -p julienne-bench --release --bin fig1 [scale]`

use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{self, SsspParams};
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_algorithms::setcover::{self, SetCoverParams};
use julienne_bench::micro::bucket_microbenchmark;
use julienne_bench::report::Table;
use julienne_bench::suite;
use julienne_bench::timing::{scale_arg, time};

fn main() {
    let scale = scale_arg(20);
    let mut csv = Table::new(
        "fig1",
        &[
            "series",
            "identifiers",
            "rounds",
            "ids_per_round",
            "throughput",
        ],
    );
    println!("# Figure 1: bucketing microbenchmark (Section 3.4)");
    println!("# throughput = (extracted + moved) identifiers / second; nullbkt requests excluded");
    println!(
        "{:<10} {:>12} {:>10} {:>16} {:>16}",
        "buckets", "identifiers", "rounds", "ids/round", "throughput(id/s)"
    );
    for &b in &[128u32, 256, 512, 1024] {
        // Vary n to generate the x-axis points, as in the paper.
        let mut exp = 12u32;
        while exp <= scale {
            let n = 1usize << exp;
            let r = bucket_microbenchmark(n, b, 128, 0xF161 + b as u64, false);
            println!(
                "{:<10} {:>12} {:>10} {:>16.1} {:>16.3e}",
                b,
                n,
                r.rounds,
                r.ids_per_round(),
                r.throughput()
            );
            csv.rowf(&[
                &format!("{b}-buckets"),
                &n,
                &r.rounds,
                &r.ids_per_round(),
                &r.throughput(),
            ]);
            exp += 2;
        }
    }

    println!("\n# Application points (throughput of the bucket structure inside each app)");
    println!(
        "{:<14} {:>12} {:>10} {:>16} {:>16}",
        "app", "graph-n", "rounds", "ids/round", "throughput(id/s)"
    );
    let app_scale = scale.min(16);

    // k-core on an RMAT graph.
    let g = &suite::symmetric_suite(app_scale)[0].graph;
    let (r, secs) =
        time(|| kcore::coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap());
    let ops = r.vertices_scanned + r.identifiers_moved;
    println!(
        "{:<14} {:>12} {:>10} {:>16.1} {:>16.3e}",
        "k-core",
        g.num_vertices(),
        r.rounds,
        ops as f64 / r.rounds as f64,
        ops as f64 / secs
    );

    // wBFS and Δ-stepping.
    for (name, heavy, delta) in [("w-BFS", false, 1u64), ("delta-step", true, 32768)] {
        let (gname, wg) = &suite::weighted_suite(app_scale, heavy)[0];
        let _ = gname;
        let (r, secs) = time(|| {
            delta_stepping::sssp(wg, &SsspParams { src: 0, delta }, &QueryCtx::default()).unwrap()
        });
        let extracted_plus_moved = r.identifiers_moved + r.rounds; // moves dominate
        let ops = extracted_plus_moved.max(1);
        println!(
            "{:<14} {:>12} {:>10} {:>16.1} {:>16.3e}",
            name,
            wg.num_vertices(),
            r.rounds,
            ops as f64 / r.rounds.max(1) as f64,
            ops as f64 / secs
        );
    }

    // Set cover.
    let (_, inst) = &suite::setcover_suite(app_scale)[0];
    let (r, secs) = time(|| {
        setcover::cover(inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap()
    });
    let ops = r.edges_examined.max(1);
    println!(
        "{:<14} {:>12} {:>10} {:>16.1} {:>16.3e}",
        "setcover",
        inst.num_sets + inst.num_elements,
        r.rounds,
        ops as f64 / r.rounds.max(1) as f64,
        ops as f64 / secs
    );

    println!("\n# Expected shape: throughput rises with ids/round and saturates;");
    println!("# more initial buckets => more rounds => fewer ids/round => lower throughput.");
    let _ = std::fs::create_dir_all("results");
    let out = std::path::Path::new("results/fig1.csv");
    if csv.write_csv(out).is_ok() {
        println!("# (wrote {})", out.display());
    }
}
