//! Figure 2: k-core running time vs. thread count — Julienne
//! (work-efficient) vs. the Ligra-style work-inefficient implementation.
//!
//! Usage: `cargo run -p julienne-bench --release --bin fig2 [scale]`

use julienne::query::QueryCtx;
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_bench::suite::{symmetric_suite, DEFAULT_SCALE};
use julienne_bench::sweep::{thread_counts, with_threads};
use julienne_bench::timing::{scale_arg, time};

fn main() {
    let scale = scale_arg(DEFAULT_SCALE);
    println!("# Figure 2: k-core running time (seconds) vs thread count");
    for named in symmetric_suite(scale) {
        let g = &named.graph;
        println!(
            "\n## {} (stands in for {}): n={} m={}",
            named.name,
            named.stands_in_for,
            g.num_vertices(),
            g.num_edges()
        );
        println!(
            "{:>8} {:>22} {:>24} {:>8}",
            "threads", "julienne(work-eff)", "ligra(work-ineff)", "ratio"
        );
        let mut base_jul = None;
        for t in thread_counts() {
            let (rj, tj) = with_threads(t, || {
                time(|| kcore::coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap())
            });
            let (rl, tl) = with_threads(t, || time(|| kcore::coreness_ligra(g)));
            assert_eq!(rj.coreness, rl.coreness, "implementations disagree");
            if base_jul.is_none() {
                base_jul = Some(tj);
            }
            println!(
                "{:>8} {:>18.3}s SU={:>4.1} {:>20.3}s {:>8.2}x",
                t,
                tj,
                base_jul.unwrap() / tj,
                tl,
                tl / tj
            );
        }
        let (seq, ts) = time(|| kcore::coreness_bz_seq(g));
        let _ = seq;
        println!(
            "{:>8} {:>18.3}s  (sequential Batagelj–Zaversnik baseline)",
            "BZ-seq", ts
        );
    }
    println!("\n# Expected shape: Julienne below Ligra at every thread count;");
    println!("# the gap widens with the graph's peeling complexity.");
}
