//! Table 2: the input-graph inventory — n, m, peeling complexity ρ, k_max,
//! max degree and hop eccentricity for every suite graph.
//!
//! Usage: `cargo run -p julienne-bench --release --bin table2 [scale]`

use julienne_algorithms::stats::graph_stats;
use julienne_bench::suite::{
    setcover_suite, strip_weights, symmetric_suite, weighted_suite, DEFAULT_SCALE,
};
use julienne_bench::timing::scale_arg;

fn main() {
    let scale = scale_arg(DEFAULT_SCALE);
    println!("# Table 2: input graphs (synthetic stand-ins; see DESIGN.md §3)");
    println!(
        "{:<16} {:<26} {:>10} {:>12} {:>8} {:>7} {:>8} {:>6}",
        "name", "stands in for", "vertices", "edges", "rho", "k_max", "max_deg", "ecc"
    );
    for named in symmetric_suite(scale) {
        let s = graph_stats(&named.graph);
        println!(
            "{:<16} {:<26} {:>10} {:>12} {:>8} {:>7} {:>8} {:>6}",
            named.name,
            named.stands_in_for,
            s.num_vertices,
            s.num_edges,
            s.rho.map(|r| r.to_string()).unwrap_or("-".into()),
            s.k_max.map(|k| k.to_string()).unwrap_or("-".into()),
            s.max_degree,
            s.eccentricity_from_zero
        );
    }
    for (name, g) in weighted_suite(scale, true) {
        let s = graph_stats(&strip_weights(&g));
        println!(
            "{:<16} {:<26} {:>10} {:>12} {:>8} {:>7} {:>8} {:>6}",
            name,
            "(weighted SSSP input)",
            s.num_vertices,
            s.num_edges,
            s.rho.map(|r| r.to_string()).unwrap_or("-".into()),
            s.k_max.map(|k| k.to_string()).unwrap_or("-".into()),
            s.max_degree,
            s.eccentricity_from_zero
        );
    }
    for (name, inst) in setcover_suite(scale) {
        println!(
            "{:<16} {:<26} {:>10} {:>12} {:>8} {:>7} {:>8} {:>6}",
            name,
            "(bipartite cover instance)",
            inst.num_sets + inst.num_elements,
            inst.graph.num_edges(),
            "-",
            "-",
            (0..inst.num_sets as u32)
                .map(|s| inst.graph.degree(s))
                .max()
                .unwrap_or(0),
            "-"
        );
    }
}
