//! Thread-count scaling of the Julienne implementations on the Table 3
//! inputs: times each application at 1, 2, 4, and 8 worker threads and
//! checks that every run's output is identical to the 1-thread run — the
//! runtime's determinism contract, witnessed end to end while measuring
//! self-relative speedup.
//!
//! Usage: `cargo run -p julienne-bench --release --bin scaling [scale] [kcore|wbfs|delta|setcover|all]`
//!
//! Note: speedup is only meaningful on a machine whose hardware parallelism
//! covers the sweep; on fewer cores the higher thread counts still run (and
//! still produce identical output) but cannot run faster.

use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{self, SsspParams};
use julienne_algorithms::dijkstra;
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_bench::report::Table;
use julienne_bench::suite::{setcover_suite, symmetric_suite, weighted_suite, DEFAULT_SCALE};
use julienne_bench::sweep::with_threads;
use julienne_bench::timing::time;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use std::sync::Mutex;

/// The sweep: powers of two, matching the paper's scaling figures.
const THREADS: [usize; 4] = [1, 2, 4, 8];

// Collected (application, graph, threads, seconds) rows for the artifacts.
static CSV: Mutex<Vec<(String, String, usize, f64)>> = Mutex::new(Vec::new());

fn header() {
    print!("{:<22} {:<14}", "application", "graph");
    for t in THREADS {
        print!(" {:>8}", format!("T({t})"));
    }
    println!(" {:>7}", "SU(max)");
}

fn row(app: &str, graph: &str, secs: &[f64]) {
    print!("{app:<22} {graph:<14}");
    for (&t, &s) in THREADS.iter().zip(secs) {
        print!(" {s:>8.3}");
        CSV.lock()
            .unwrap()
            .push((app.to_string(), graph.to_string(), t, s));
    }
    println!(" {:>7.2}", secs[0] / secs.last().unwrap());
}

/// Times `run()` at each thread count and checks each result against the
/// 1-thread result with `same`.
fn sweep<R: Send>(run: impl Fn() -> R + Sync, same: impl Fn(&R, &R) -> bool) -> Vec<f64> {
    let mut secs = Vec::with_capacity(THREADS.len());
    let mut reference: Option<R> = None;
    for t in THREADS {
        let (r, s) = with_threads(t, || time(&run));
        match &reference {
            None => reference = Some(r),
            Some(r1) => assert!(same(r1, &r), "output diverged at {t} threads"),
        }
        secs.push(s);
    }
    secs
}

fn run_kcore(scale: u32) {
    println!("\n## k-core (coreness)");
    header();
    for named in symmetric_suite(scale) {
        let g = &named.graph;
        let reference = kcore::coreness(g, &KcoreParams::default(), &QueryCtx::default())
            .unwrap()
            .coreness;
        let secs = sweep(
            || kcore::coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap(),
            |a, b| a.coreness == b.coreness,
        );
        row("k-core (Julienne)", named.name, &secs);
        // The byte-compressed backend must match the CSR result at every
        // thread count.
        let cg = CompressedGraph::from_csr(g);
        let secs = sweep(
            || {
                let r =
                    kcore::coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
                assert_eq!(r.coreness, reference, "backend diverged on {}", named.name);
                r
            },
            |a, b| a.coreness == b.coreness,
        );
        row("k-core (byte)", named.name, &secs);
    }
}

fn run_sssp(scale: u32, heavy: bool) {
    let (title, app, delta) = if heavy {
        (
            "Δ-stepping (weights [1,1e5), Δ=32768)",
            "Δ-stepping",
            32768u64,
        )
    } else {
        ("wBFS (weights [1,log n), Δ=1)", "wBFS", 1u64)
    };
    println!("\n## {title}");
    header();
    for (name, g) in weighted_suite(scale, heavy) {
        let oracle = dijkstra::dijkstra(&g, 0);
        let secs = sweep(
            || {
                let r =
                    delta_stepping::sssp(&g, &SsspParams { src: 0, delta }, &QueryCtx::default())
                        .unwrap();
                assert_eq!(r.dist, oracle, "{app} wrong on {name}");
                r
            },
            |a, b| a.dist == b.dist && a.rounds == b.rounds,
        );
        row(app, name, &secs);
        let cg = CompressedWGraph::from_csr(&g);
        let secs = sweep(
            || {
                let r =
                    delta_stepping::sssp(&cg, &SsspParams { src: 0, delta }, &QueryCtx::default())
                        .unwrap();
                assert_eq!(r.dist, oracle, "{app} (byte) wrong on {name}");
                r
            },
            |a, b| a.dist == b.dist && a.rounds == b.rounds,
        );
        row(&format!("{app} (byte)"), name, &secs);
    }
}

fn run_setcover(scale: u32) {
    println!("\n## Approximate set cover (ε = 0.01)");
    header();
    for (name, inst) in setcover_suite(scale) {
        let secs = sweep(
            || {
                let r = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
                assert!(verify_cover(&inst, &r.cover), "invalid cover on {name}");
                r
            },
            |a, b| a.cover == b.cover && a.rounds == b.rounds,
        );
        row("Set Cover (Julienne)", name, &secs);
    }
}

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let which = std::env::args().nth(2).unwrap_or_else(|| "all".into());
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("# Thread scaling (scale = {scale}, hardware parallelism = {hw})");
    if hw < *THREADS.last().unwrap() {
        println!("# warning: sweep exceeds hardware parallelism; speedups above {hw} threads are not meaningful");
    }
    match which.as_str() {
        "kcore" => run_kcore(scale),
        "wbfs" => run_sssp(scale, false),
        "delta" => run_sssp(scale, true),
        "setcover" => run_setcover(scale),
        _ => {
            run_kcore(scale);
            run_sssp(scale, false);
            run_sssp(scale, true);
            run_setcover(scale);
        }
    }
    println!("\nall outputs identical across thread counts");
    let mut table = Table::new("scaling", &["application", "graph", "threads", "seconds"]);
    for (app, graph, t, s) in CSV.lock().unwrap().iter() {
        table.rowf(&[app, graph, t, s]);
    }
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let out = dir.join("scaling.csv");
    if table.write_csv(&out).is_ok() {
        println!("(wrote {})", out.display());
    }
    let json_out = dir.join("scaling.json");
    if table.write_json(&json_out).is_ok() {
        println!("(wrote {})", json_out.display());
    }
}
