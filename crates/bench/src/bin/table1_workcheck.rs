//! Table 1: empirical validation of the cost bounds via doubling
//! experiments — the hardware-independent work counters must scale
//! linearly with the input, not with n·k_max or n·r_src.
//!
//! Usage: `cargo run -p julienne-bench --release --bin table1_workcheck [scale]`

use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping;
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_algorithms::setcover::{self, SetCoverParams};
use julienne_bench::timing::scale_arg;
use julienne_graph::generators::{rmat, set_cover_instance, RmatParams};
use julienne_graph::transform::{assign_weights, wbfs_weight_range};

fn main() {
    let max_scale = scale_arg(16);
    println!("# Table 1 work-bound check: counters under input doubling");

    println!("\n## k-core: O(m + n) — (edges traversed + moves) / (m + n) must stay flat");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "scale", "n", "m", "edges+moves", "rho", "ratio"
    );
    for scale in (max_scale - 4)..=max_scale {
        let g = rmat(scale, 8, RmatParams::default(), 0x7AB1E, true);
        let r = kcore::coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
        let work = r.edges_traversed + r.identifiers_moved;
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>12} {:>10.3}",
            scale,
            g.num_vertices(),
            g.num_edges(),
            work,
            r.rounds,
            work as f64 / (g.num_edges() + g.num_vertices()) as f64
        );
    }

    println!("\n## wBFS: O(r_src + m) — (relaxations + moves) / m must stay flat");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "scale", "n", "m", "relax+moves", "rounds", "ratio"
    );
    for scale in (max_scale - 4)..=max_scale {
        let base = rmat(scale, 8, RmatParams::default(), 0x7AB1F, true);
        let (lo, hi) = wbfs_weight_range(base.num_vertices());
        let g = assign_weights(&base, lo, hi, 5);
        let r = delta_stepping::wbfs(&g, 0);
        let work = r.relaxations + r.identifiers_moved;
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>10} {:>10.3}",
            scale,
            g.num_vertices(),
            g.num_edges(),
            work,
            r.rounds,
            work as f64 / g.num_edges() as f64
        );
    }

    println!("\n## Set cover: O(M) — edges examined / M must stay bounded");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "scale", "sets", "M(edges)", "examined", "rounds", "ratio"
    );
    for scale in (max_scale - 4)..=max_scale {
        let elems = 1usize << scale;
        let inst = set_cover_instance(elems / 32, elems, 4, 0x7AB20);
        let r =
            setcover::cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
        let m = inst.graph.num_edges() / 2;
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>10} {:>10.3}",
            scale,
            inst.num_sets,
            m,
            r.edges_examined,
            r.rounds,
            r.edges_examined as f64 / m as f64
        );
    }

    println!("\n# A flat (or slowly varying) ratio column confirms the Table 1 work bounds;");
    println!("# contrast with the Ligra k-core whose scans grow with rho * n (see fig2).");
}
