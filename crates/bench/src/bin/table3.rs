//! Table 3: running times of every implementation on every suite input —
//! the paper's headline comparison. Reports 1-thread time, max-thread time
//! and self-relative speedup for each (application, implementation) pair.
//!
//! Usage: `cargo run -p julienne-bench --release --bin table3 [scale] [kcore|wbfs|delta|setcover|all]`

use julienne::prelude::Engine;
use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{self, SsspParams};
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_algorithms::setcover_baselines::{set_cover_greedy_seq, set_cover_pbbs_style};
use julienne_algorithms::{bellman_ford, dial, dijkstra, gap_delta};
use julienne_bench::report::{footprint_table, MemoryFootprint, Table};
use julienne_bench::suite::{setcover_suite, symmetric_suite, weighted_suite, DEFAULT_SCALE};
use julienne_bench::sweep::with_threads;
use julienne_bench::timing::time;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use std::sync::Mutex;

// Collected rows for the CSV artifact written at exit.
static CSV: Mutex<Vec<(String, String, f64, f64)>> = Mutex::new(Vec::new());
// Per-run telemetry JSON objects (Julienne implementations, max threads).
static TRACES: Mutex<Vec<String>> = Mutex::new(Vec::new());
// Per-input backend memory footprints (bytes/edge artifact).
static FOOTPRINTS: Mutex<Vec<MemoryFootprint>> = Mutex::new(Vec::new());

fn footprint(graph: &str, csr_bytes: usize, compressed_bytes: usize, num_edges: usize) {
    FOOTPRINTS.lock().unwrap().push(MemoryFootprint {
        graph: graph.to_string(),
        csr_bytes,
        compressed_bytes,
        num_edges,
    });
}

fn trace(engine: &Engine, algorithm: &str, graph: &str) {
    TRACES
        .lock()
        .unwrap()
        .push(engine.snapshot().to_json(&format!("{algorithm}/{graph}")));
    engine.reset_telemetry();
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn row(app: &str, graph: &str, t1: f64, tp: f64) {
    println!(
        "{:<28} {:<14} {:>9.3} {:>9.3} {:>7.2}",
        app,
        graph,
        t1,
        tp,
        t1 / tp
    );
    CSV.lock()
        .unwrap()
        .push((app.to_string(), graph.to_string(), t1, tp));
}

fn header() {
    println!(
        "{:<28} {:<14} {:>9} {:>9} {:>7}",
        "application", "graph", "T(1)", "T(max)", "SU"
    );
}

fn run_kcore(scale: u32) {
    println!("\n## k-core (coreness)");
    header();
    let tmax = max_threads();
    for named in symmetric_suite(scale) {
        let g = &named.graph;
        let (_, j1) = with_threads(1, || {
            time(|| kcore::coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap())
        });
        let engine = Engine::builder().telemetry(true).build();
        let (_, jp) = with_threads(tmax, || {
            time(|| {
                kcore::coreness(g, &KcoreParams::default(), &QueryCtx::from_engine(&engine))
                    .unwrap()
            })
        });
        trace(&engine, "kcore", named.name);
        row("k-core (Julienne)", named.name, j1, jp);
        // Same implementation over the byte-compressed backend: identical
        // coreness, different space/decode profile.
        let cg = CompressedGraph::from_csr(g);
        footprint(
            named.name,
            g.footprint_bytes(),
            cg.footprint_bytes(),
            g.num_edges(),
        );
        let (rc, c1) = with_threads(1, || {
            time(|| kcore::coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap())
        });
        let (rr, cp) = with_threads(tmax, || {
            time(|| kcore::coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap())
        });
        assert_eq!(rc.coreness, rr.coreness);
        row("k-core (Julienne, byte)", named.name, c1, cp);
        let (_, l1) = with_threads(1, || time(|| kcore::coreness_ligra(g)));
        let (_, lp) = with_threads(tmax, || time(|| kcore::coreness_ligra(g)));
        row("k-core (Ligra, work-ineff)", named.name, l1, lp);
        let (_, bz) = time(|| kcore::coreness_bz_seq(g));
        row("k-core (BZ, sequential)", named.name, bz, bz);
    }
}

fn run_sssp(scale: u32, heavy: bool) {
    let (title, delta) = if heavy {
        ("Δ-stepping (weights [1,1e5), Δ=32768)", 32768u64)
    } else {
        ("wBFS (weights [1,log n), Δ=1)", 1u64)
    };
    println!("\n## {title}");
    header();
    let tmax = max_threads();
    for (name, g) in weighted_suite(scale, heavy) {
        let oracle = dijkstra::dijkstra(&g, 0);
        let (rj, j1) = with_threads(1, || {
            time(|| {
                delta_stepping::sssp(&g, &SsspParams { src: 0, delta }, &QueryCtx::default())
                    .unwrap()
            })
        });
        assert_eq!(rj.dist, oracle);
        let engine = Engine::builder().telemetry(true).build();
        let (_, jp) = with_threads(tmax, || {
            time(|| {
                delta_stepping::sssp(
                    &g,
                    &SsspParams { src: 0, delta },
                    &QueryCtx::from_engine(&engine),
                )
                .unwrap()
            })
        });
        trace(&engine, if heavy { "delta" } else { "wbfs" }, name);
        row("SSSP (Julienne)", name, j1, jp);
        let cg = CompressedWGraph::from_csr(&g);
        footprint(
            &format!("{name}{}", if heavy { " (heavy-w)" } else { " (log-w)" }),
            g.footprint_bytes(),
            cg.footprint_bytes(),
            g.num_edges(),
        );
        let (rc, c1) = with_threads(1, || {
            time(|| {
                delta_stepping::sssp(&cg, &SsspParams { src: 0, delta }, &QueryCtx::default())
                    .unwrap()
            })
        });
        assert_eq!(rc.dist, oracle);
        let (_, cp) = with_threads(tmax, || {
            time(|| {
                delta_stepping::sssp(&cg, &SsspParams { src: 0, delta }, &QueryCtx::default())
                    .unwrap()
            })
        });
        row("SSSP (Julienne, byte)", name, c1, cp);
        let (rb, b1) = with_threads(1, || time(|| bellman_ford::bellman_ford(&g, 0)));
        assert_eq!(rb.dist, oracle);
        let (_, bp) = with_threads(tmax, || time(|| bellman_ford::bellman_ford(&g, 0)));
        row("Bellman-Ford (Ligra)", name, b1, bp);
        let (rg, g1) = with_threads(1, || time(|| gap_delta::gap_delta_stepping(&g, 0, delta)));
        assert_eq!(rg.dist, oracle);
        let (_, gp) = with_threads(tmax, || {
            time(|| gap_delta::gap_delta_stepping(&g, 0, delta))
        });
        row("SSSP (GAP-style bins)", name, g1, gp);
        let (_, d1) = time(|| dijkstra::dijkstra(&g, 0));
        row("Dijkstra (DIMACS, seq)", name, d1, d1);
        if !heavy {
            // Dial's bucket-queue solver (Alg. 360) — the sequential wBFS.
            let (rd, t) = time(|| dial::dial(&g, 0));
            assert_eq!(rd, oracle);
            row("Dial (seq bucket queue)", name, t, t);
        }
    }
}

fn run_setcover(scale: u32) {
    println!("\n## Approximate set cover (ε = 0.01)");
    header();
    let tmax = max_threads();
    for (name, inst) in setcover_suite(scale) {
        let default_engine = Engine::default();
        let (rj, j1) = with_threads(1, || {
            time(|| {
                cover(
                    &inst,
                    &SetCoverParams { eps: 0.01 },
                    &QueryCtx::from_engine(&default_engine),
                )
                .unwrap()
            })
        });
        assert!(verify_cover(&inst, &rj.cover));
        let engine = Engine::builder().telemetry(true).build();
        let (_, jp) = with_threads(tmax, || {
            time(|| {
                cover(
                    &inst,
                    &SetCoverParams { eps: 0.01 },
                    &QueryCtx::from_engine(&engine),
                )
                .unwrap()
            })
        });
        trace(&engine, "setcover", name);
        row("Set Cover (Julienne)", name, j1, jp);
        let (rp, p1) = with_threads(1, || time(|| set_cover_pbbs_style(&inst, 0.01)));
        assert!(verify_cover(&inst, &rp.cover));
        let (_, pp) = with_threads(tmax, || time(|| set_cover_pbbs_style(&inst, 0.01)));
        row("Set Cover (PBBS-style)", name, p1, pp);
        let (rg, g1) = time(|| set_cover_greedy_seq(&inst));
        row("Set Cover (greedy, seq)", name, g1, g1);
        println!(
            "   cover sizes: julienne={} pbbs={} greedy={}",
            rj.cover.len(),
            rp.cover.len(),
            rg.cover.len()
        );
    }
}

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let which = std::env::args().nth(2).unwrap_or_else(|| "all".into());
    println!(
        "# Table 3 reproduction (scale = {scale}, max threads = {})",
        max_threads()
    );
    let csv_path = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(csv_path);
    match which.as_str() {
        "kcore" => run_kcore(scale),
        "wbfs" => run_sssp(scale, false),
        "delta" => run_sssp(scale, true),
        "setcover" => run_setcover(scale),
        _ => {
            run_kcore(scale);
            run_sssp(scale, false);
            run_sssp(scale, true);
            run_setcover(scale);
        }
    }
    // Machine-readable artifact.
    let mut table = Table::new(
        "table3",
        &["application", "graph", "t1_seconds", "tmax_seconds"],
    );
    for (app, graph, t1, tp) in CSV.lock().unwrap().iter() {
        table.rowf(&[app, graph, t1, tp]);
    }
    let out = csv_path.join("table3.csv");
    if table.write_csv(&out).is_ok() {
        println!("\n(wrote {})", out.display());
    }
    let json_out = csv_path.join("table3.json");
    if table.write_json(&json_out).is_ok() {
        println!("(wrote {})", json_out.display());
    }
    // Per-backend memory footprint of every input (bytes/edge, ratio).
    let footprints = FOOTPRINTS.lock().unwrap();
    if !footprints.is_empty() {
        let mem = footprint_table(&footprints);
        println!("\n{}", mem.render());
        let mem_csv = csv_path.join("memory.csv");
        if mem.write_csv(&mem_csv).is_ok() {
            println!("(wrote {})", mem_csv.display());
        }
        let mem_json = csv_path.join("memory.json");
        if mem.write_json(&mem_json).is_ok() {
            println!("(wrote {})", mem_json.display());
        }
    }
    // Per-round telemetry traces of every Julienne run, one object per run.
    let traces = TRACES.lock().unwrap();
    if !traces.is_empty() {
        let body = format!("[{}]", traces.join(","));
        let tr_out = csv_path.join("table3_traces.json");
        if std::fs::write(&tr_out, body).is_ok() {
            println!("(wrote {})", tr_out.display());
        }
    }
}
