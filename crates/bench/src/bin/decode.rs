//! Decode microbenchmark: per-edge cost of walking byte-compressed
//! adjacency lists, old decoder vs the table-driven one, by degree class.
//!
//! Three variants over the same R-MAT input:
//!
//! * `reference` — the pre-table branch-per-byte varint loop
//!   ([`julienne_graph::decode::reference`]) over the legacy (unchunked)
//!   layout;
//! * `table` — the table-driven decoder over the same legacy layout
//!   (isolates the decoder win);
//! * `table+chunks` — the table-driven decoder over the default chunked
//!   layout (adds the chunk-header skip the parallel path pays).
//!
//! All variants must produce identical neighbor checksums; the run aborts
//! otherwise. Usage:
//! `cargo run -p julienne-bench --release --bin decode [scale] [smoke]`

use julienne_bench::report::Table;
use julienne_bench::suite::DEFAULT_SCALE;
use julienne_bench::timing::time_best;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph, DEFAULT_CHUNK_SIZE};
use julienne_graph::decode::{reference, zigzag_decode, BlockDecoder};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::assign_weights;
use julienne_graph::VertexId;
use std::hint::black_box;

/// Degree classes reported separately: the 1-byte-codeword-dominated tail,
/// the mid range, and the multi-chunk hubs.
const CLASSES: [(&str, usize, usize); 4] = [
    ("all", 1, usize::MAX),
    ("deg [1,16)", 1, 16),
    ("deg [16,256)", 16, 256),
    ("deg [256,inf)", 256, usize::MAX),
];

struct Measurement {
    per_edge_ns: f64,
    checksum: u64,
    edges: u64,
}

/// Times `decode_all` over `reps` repetitions and normalizes to ns/edge.
fn measure(reps: usize, edges: u64, decode_all: impl FnMut() -> u64) -> Measurement {
    let mut decode_all = decode_all;
    let (checksum, secs) = time_best(reps, || black_box(decode_all()));
    Measurement {
        per_edge_ns: secs * 1e9 / edges.max(1) as f64,
        checksum,
        edges,
    }
}

fn class_vertices(g: &CompressedGraph, lo: usize, hi: usize) -> (Vec<VertexId>, u64) {
    let vs: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| g.degree(v) >= lo && g.degree(v) < hi)
        .collect();
    let edges = vs.iter().map(|&v| g.degree(v) as u64).sum();
    (vs, edges)
}

fn main() {
    let mut scale = DEFAULT_SCALE;
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "smoke" {
            smoke = true;
        } else if let Ok(s) = arg.parse() {
            scale = s;
        }
    }
    let reps = if smoke { 2 } else { 9 };
    println!("# Decode microbenchmark (scale = {scale}, reps = {reps})");

    let g = rmat(scale, 16, RmatParams::default(), 0xDEC0, true);
    let legacy = CompressedGraph::from_csr_with_chunk_size(&g, 0);
    let chunked = CompressedGraph::from_csr_with_chunk_size(&g, DEFAULT_CHUNK_SIZE);
    println!(
        "graph: n = {}, m = {}, chunked blocks carry {}-edge chunks",
        legacy.num_vertices(),
        legacy.num_edges(),
        DEFAULT_CHUNK_SIZE
    );

    let mut table = Table::new(
        "decode",
        &[
            "class",
            "edges",
            "reference_ns_per_edge",
            "table_ns_per_edge",
            "table_chunked_ns_per_edge",
            "speedup",
        ],
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "class", "edges", "ref ns/e", "table ns/e", "chunked ns/e", "speedup"
    );
    let mut overall_speedup = 0.0;
    for (name, lo, hi) in CLASSES {
        let (vs, edges) = class_vertices(&legacy, lo, hi);
        if edges == 0 {
            continue;
        }
        let (offsets, degrees, data) = legacy.raw_parts();
        let old = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                reference::for_each_neighbor_legacy(
                    v,
                    degrees[v as usize] as usize,
                    data,
                    offsets[v as usize] as usize,
                    |u| sum = sum.wrapping_add(u as u64),
                );
            }
            sum
        });
        let new = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                legacy.for_each_neighbor(v, |u| sum = sum.wrapping_add(u as u64));
            }
            sum
        });
        let chk = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                chunked.for_each_neighbor(v, |u| sum = sum.wrapping_add(u as u64));
            }
            sum
        });
        assert_eq!(old.checksum, new.checksum, "table decode diverged ({name})");
        assert_eq!(
            old.checksum, chk.checksum,
            "chunked decode diverged ({name})"
        );
        let speedup = old.per_edge_ns / new.per_edge_ns;
        if name == "all" {
            overall_speedup = speedup;
        }
        println!(
            "{:<16} {:>12} {:>12.2} {:>12.2} {:>14.2} {:>7.2}x",
            name, old.edges, old.per_edge_ns, new.per_edge_ns, chk.per_edge_ns, speedup
        );
        table.rowf(&[
            &name,
            &old.edges,
            &old.per_edge_ns,
            &new.per_edge_ns,
            &chk.per_edge_ns,
            &speedup,
        ]);
    }
    println!("\noverall table-decode speedup: {overall_speedup:.2}x");

    // Weighted rows: interleaved (gap, weight) blocks. The baseline is the
    // pre-fusion path — the window scan fed through a closure-side
    // gap/weight parity toggle — against the paired `for_each_delta_weight`
    // cursor (column names keep the unweighted schema: reference = toggle,
    // table = fused pairs, chunked = fused pairs over chunked blocks).
    let wg = assign_weights(&g, 1, 64, 0xDEC0);
    let wlegacy = CompressedWGraph::from_csr_with_chunk_size(&wg, 0);
    let wchunked = CompressedWGraph::from_csr_with_chunk_size(&wg, DEFAULT_CHUNK_SIZE);
    println!(
        "\n{:<16} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "class (weighted)", "edges", "toggle ns/e", "pairs ns/e", "chunked ns/e", "speedup"
    );
    for (name, lo, hi) in CLASSES {
        let vs: Vec<VertexId> = (0..wlegacy.num_vertices() as VertexId)
            .filter(|&v| wlegacy.degree(v) >= lo && wlegacy.degree(v) < hi)
            .collect();
        let edges: u64 = vs.iter().map(|&v| wlegacy.degree(v) as u64).sum();
        if edges == 0 {
            continue;
        }
        let (offsets, degrees, data) = wlegacy.raw_parts();
        let old = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                let deg = degrees[v as usize] as usize;
                let mut dec = BlockDecoder::new_at(data, offsets[v as usize] as usize);
                let mut cur = (v as i64).wrapping_add(zigzag_decode(dec.varint())) as VertexId;
                sum = sum.wrapping_add(cur as u64).wrapping_add(dec.varint());
                let mut gap_next = true;
                dec.for_each_varint(2 * (deg - 1), |x| {
                    if gap_next {
                        cur = cur.wrapping_add(x as VertexId);
                        sum = sum.wrapping_add(cur as u64);
                    } else {
                        sum = sum.wrapping_add(x);
                    }
                    gap_next = !gap_next;
                });
            }
            sum
        });
        let new = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                wlegacy.for_each_edge(v, |u, w| {
                    sum = sum.wrapping_add(u as u64).wrapping_add(w as u64);
                });
            }
            sum
        });
        let chk = measure(reps, edges, || {
            let mut sum = 0u64;
            for &v in &vs {
                wchunked.for_each_edge(v, |u, w| {
                    sum = sum.wrapping_add(u as u64).wrapping_add(w as u64);
                });
            }
            sum
        });
        assert_eq!(old.checksum, new.checksum, "pair decode diverged ({name})");
        assert_eq!(
            old.checksum, chk.checksum,
            "chunked pair decode diverged ({name})"
        );
        let speedup = old.per_edge_ns / new.per_edge_ns;
        let wname = format!("w {name}");
        println!(
            "{:<16} {:>12} {:>12.2} {:>12.2} {:>14.2} {:>7.2}x",
            wname, old.edges, old.per_edge_ns, new.per_edge_ns, chk.per_edge_ns, speedup
        );
        table.rowf(&[
            &wname,
            &old.edges,
            &old.per_edge_ns,
            &new.per_edge_ns,
            &chk.per_edge_ns,
            &speedup,
        ]);
    }

    if smoke {
        // CI smoke: correctness (checksums) is the point; timings on a
        // loaded runner are noise, so don't gate or persist them.
        println!("(smoke run: skipping results/ artifacts)");
        return;
    }
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let txt = dir.join("decode.txt");
    if std::fs::write(&txt, table.render()).is_ok() {
        println!("(wrote {})", txt.display());
    }
    let csv = dir.join("decode.csv");
    if table.write_csv(&csv).is_ok() {
        println!("(wrote {})", csv.display());
    }
}
