//! Figure 5: approximate set cover running time vs. thread count —
//! Julienne (work-efficient, rebuckets unchosen sets) vs. the PBBS-style
//! implementation (carries unchosen sets to the next round). ε = 0.01.
//!
//! Usage: `cargo run -p julienne-bench --release --bin fig5 [scale]`

use julienne::query::QueryCtx;
use julienne_algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_algorithms::setcover_baselines::{set_cover_greedy_seq, set_cover_pbbs_style};
use julienne_bench::suite::{setcover_suite, DEFAULT_SCALE};
use julienne_bench::sweep::{thread_counts, with_threads};
use julienne_bench::timing::{scale_arg, time};

const EPS: f64 = 0.01;

fn main() {
    let scale = scale_arg(DEFAULT_SCALE);
    println!("# Figure 5: approximate set cover (ε = {EPS}) time in seconds vs thread count");
    for (name, inst) in setcover_suite(scale) {
        println!(
            "\n## {}: sets={} elements={} memberships={}",
            name,
            inst.num_sets,
            inst.num_elements,
            inst.graph.num_edges() / 2
        );
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>12}",
            "threads", "julienne", "pbbs-style", "|cover|jul", "|cover|pbbs"
        );
        for t in thread_counts() {
            let (rj, tj) = with_threads(t, || {
                time(|| cover(&inst, &SetCoverParams { eps: EPS }, &QueryCtx::default()).unwrap())
            });
            let (rp, tp) = with_threads(t, || time(|| set_cover_pbbs_style(&inst, EPS)));
            assert!(verify_cover(&inst, &rj.cover), "julienne cover invalid");
            assert!(verify_cover(&inst, &rp.cover), "pbbs cover invalid");
            println!(
                "{:>8} {:>13.3}s {:>11.3}s {:>12} {:>12}",
                t,
                tj,
                tp,
                rj.cover.len(),
                rp.cover.len()
            );
        }
        let (rg, tg) = time(|| set_cover_greedy_seq(&inst));
        println!(
            "{:>8} {:>13.3}s  |cover|={} (sequential greedy, Hn-approx)",
            "greedy",
            tg,
            rg.cover.len()
        );
    }
    println!("\n# Expected shape: Julienne examines fewer edges (rebucketing) and");
    println!("# wins where many sets are carried over many rounds.");
}
