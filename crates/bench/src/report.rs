//! Structured result reporting for the harness binaries: aligned console
//! tables plus machine-readable CSV and JSON next to them, so figure data
//! can be re-plotted without scraping stdout. Telemetry snapshots from an
//! [`Engine`](julienne::prelude::Engine) run serialise via
//! [`telemetry_json`].

use julienne::telemetry::TelemetrySnapshot;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-typed results table.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the column count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building rows of display-ables.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises as CSV (RFC-4180-ish: quotes fields containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Serialises as a JSON object `{"title": .., "columns": [..],
    /// "rows": [[..], ..]}` with every cell a string.
    pub fn to_json(&self) -> String {
        let esc = julienne::telemetry::json_escape;
        let cols = self
            .columns
            .iter()
            .map(|c| format!("\"{}\"", esc(c)))
            .collect::<Vec<_>>()
            .join(",");
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.iter()
                        .map(|c| format!("\"{}\"", esc(c)))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"title\":\"{}\",\"columns\":[{cols}],\"rows\":[{rows}]}}",
            esc(&self.title)
        )
    }

    /// Writes the JSON form to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Serialises a telemetry snapshot alongside a bench table: one JSON object
/// per benchmarked run, in the same shape `julienne-cli --stats json` emits.
pub fn telemetry_json(algorithm: &str, snapshot: &TelemetrySnapshot) -> String {
    snapshot.to_json(algorithm)
}

/// Per-backend memory footprint of one benchmark input: raw CSR bytes
/// against the byte-compressed form, normalised per directed edge.
pub struct MemoryFootprint {
    /// Input name as printed in the timing tables.
    pub graph: String,
    /// Adjacency bytes of the CSR backend.
    pub csr_bytes: usize,
    /// Adjacency bytes of the byte-compressed backend.
    pub compressed_bytes: usize,
    /// Directed edge count — the per-edge denominator.
    pub num_edges: usize,
}

impl MemoryFootprint {
    /// CSR bytes per directed edge.
    pub fn csr_bytes_per_edge(&self) -> f64 {
        self.csr_bytes as f64 / self.num_edges.max(1) as f64
    }

    /// Compressed bytes per directed edge.
    pub fn compressed_bytes_per_edge(&self) -> f64 {
        self.compressed_bytes as f64 / self.num_edges.max(1) as f64
    }

    /// CSR-to-compressed size ratio (>1 means compression won).
    pub fn ratio(&self) -> f64 {
        self.csr_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Builds the standard per-backend memory table: one row per input with
/// bytes/edge for both backends and the compression ratio, ready for
/// `results/` next to the timing artifacts.
pub fn footprint_table(rows: &[MemoryFootprint]) -> Table {
    let mut t = Table::new(
        "memory",
        &[
            "graph",
            "edges",
            "csr_bytes",
            "csr_b_per_edge",
            "compressed_bytes",
            "compressed_b_per_edge",
            "ratio",
        ],
    );
    for r in rows {
        t.rowf(&[
            &r.graph,
            &r.num_edges,
            &r.csr_bytes,
            &format!("{:.2}", r.csr_bytes_per_edge()),
            &r.compressed_bytes,
            &format!("{:.2}", r.compressed_bytes_per_edge()),
            &format!("{:.2}", r.ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("# demo"));
        let lines: Vec<&str> = r.lines().collect();
        // header + 2 rows + title
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = Table::new("x", &["k", "v"]);
        t.rowf(&[&1, &2.5]);
        let p = std::env::temp_dir().join(format!("julienne-csv-{}", std::process::id()));
        t.write_csv(&p).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "k,v\n1,2.5\n");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut t = Table::new("a \"b\"", &["k", "v"]);
        t.row(&["x,y".into(), "1".into()]);
        let j = t.to_json();
        assert!(j.starts_with("{\"title\":\"a \\\"b\\\"\""), "{j}");
        assert!(j.contains("\"columns\":[\"k\",\"v\"]"));
        assert!(j.contains("\"rows\":[[\"x,y\",\"1\"]]"));
    }

    #[test]
    fn telemetry_snapshot_roundtrip() {
        use julienne::prelude::*;
        let engine = Engine::builder().telemetry(true).build();
        engine.telemetry().add(Counter::EdgesScanned, 7);
        let j = telemetry_json("bench", &engine.snapshot());
        assert!(j.contains("\"algorithm\":\"bench\""));
        #[cfg(feature = "telemetry")]
        assert!(j.contains("\"edges_scanned\":7"), "{j}");
    }

    #[test]
    fn footprint_table_shapes() {
        let rows = vec![MemoryFootprint {
            graph: "rmat".into(),
            csr_bytes: 1_000,
            compressed_bytes: 400,
            num_edges: 100,
        }];
        assert_eq!(rows[0].csr_bytes_per_edge(), 10.0);
        assert_eq!(rows[0].compressed_bytes_per_edge(), 4.0);
        assert_eq!(rows[0].ratio(), 2.5);
        let t = footprint_table(&rows);
        let csv = t.to_csv();
        assert!(csv.starts_with("graph,edges,csr_bytes"), "{csv}");
        assert!(csv.contains("rmat,100,1000,10.00,400,4.00,2.50"), "{csv}");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
