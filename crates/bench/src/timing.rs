//! Wall-clock helpers for the harness binaries.

use std::time::Instant;

/// Times `f`, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times and returns the result of the last run plus the
/// minimum time (the standard noise-robust statistic for batch kernels).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let (r, s) = time(&mut f);
        best = best.min(s);
        out = Some(r);
    }
    (out.unwrap(), best)
}

/// Parses the first CLI argument as a scale exponent, with a default.
pub fn scale_arg(default: u32) -> u32 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (v, s) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn time_best_picks_min() {
        let mut calls = 0;
        let (_, s) = time_best(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(s >= 0.0);
    }
}
