//! Extension benchmarks: the bucketed peel beyond coreness — k-truss
//! (edge identifiers) and degeneracy/densest-subgraph, plus PageRank as
//! the general edgeMapReduce workload.

use criterion::{criterion_group, criterion_main, Criterion};
use julienne_algorithms::degeneracy::{degeneracy_order, densest_subgraph};
use julienne_algorithms::ktruss::{ktruss_julienne, ktruss_seq};
use julienne_algorithms::pagerank::pagerank;
use julienne_algorithms::triangles::triangle_count;
use julienne_graph::generators::{rmat, RmatParams};

fn bench_truss(c: &mut Criterion) {
    let g = rmat(11, 10, RmatParams::default(), 0x7455, true);
    let mut group = c.benchmark_group("ext_ktruss");
    group.sample_size(10);
    group.bench_function("bucketed_parallel_peel", |b| b.iter(|| ktruss_julienne(&g)));
    group.bench_function("sequential_peel", |b| b.iter(|| ktruss_seq(&g)));
    group.bench_function("triangle_count_only", |b| b.iter(|| triangle_count(&g)));
    group.finish();
}

fn bench_degeneracy(c: &mut Criterion) {
    let g = rmat(12, 12, RmatParams::default(), 0xDE6E, true);
    let mut group = c.benchmark_group("ext_degeneracy");
    group.sample_size(10);
    group.bench_function("degeneracy_order", |b| b.iter(|| degeneracy_order(&g)));
    group.bench_function("densest_subgraph", |b| b.iter(|| densest_subgraph(&g)));
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let g = rmat(12, 12, RmatParams::default(), 0x9A6E, true);
    let mut group = c.benchmark_group("ext_pagerank");
    group.sample_size(10);
    group.bench_function("pagerank_20_iters", |b| {
        b.iter(|| pagerank(&g, 0.85, 0.0, 20))
    });
    group.finish();
}

criterion_group!(benches, bench_truss, bench_degeneracy, bench_pagerank);
criterion_main!(benches);
