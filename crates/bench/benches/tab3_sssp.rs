//! Table 3 / Figures 3–4 (Criterion form): SSSP — Julienne wBFS and
//! Δ-stepping vs. Bellman–Ford (Ligra), GAP-style bins, and sequential
//! Dijkstra, on light-weighted ([1, log n)) and heavy-weighted ([1, 1e5))
//! R-MAT graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{self, SsspParams};
use julienne_algorithms::{bellman_ford, dijkstra, gap_delta};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::{assign_weights, wbfs_weight_range};

fn bench_wbfs(c: &mut Criterion) {
    let base = rmat(13, 16, RmatParams::default(), 0x55B1, true);
    let (lo, hi) = wbfs_weight_range(base.num_vertices());
    let g = assign_weights(&base, lo, hi, 1);
    let mut group = c.benchmark_group("tab3_wbfs_light_weights");
    group.sample_size(10);
    group.bench_function("julienne_wbfs", |b| b.iter(|| delta_stepping::wbfs(&g, 0)));
    group.bench_function("ligra_bellman_ford", |b| {
        b.iter(|| bellman_ford::bellman_ford(&g, 0))
    });
    group.bench_function("gap_style_bins", |b| {
        b.iter(|| gap_delta::gap_delta_stepping(&g, 0, 1))
    });
    group.bench_function("dijkstra_sequential", |b| {
        b.iter(|| dijkstra::dijkstra(&g, 0))
    });
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let base = rmat(13, 16, RmatParams::default(), 0x55B2, true);
    let g = assign_weights(&base, 1, 100_000, 2);
    let mut group = c.benchmark_group("tab3_delta_heavy_weights");
    group.sample_size(10);
    group.bench_function("julienne_delta_32768", |b| {
        b.iter(|| {
            delta_stepping::sssp(
                &g,
                &SsspParams {
                    src: 0,
                    delta: 32768,
                },
                &QueryCtx::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("ligra_bellman_ford", |b| {
        b.iter(|| bellman_ford::bellman_ford(&g, 0))
    });
    group.bench_function("gap_style_bins_32768", |b| {
        b.iter(|| gap_delta::gap_delta_stepping(&g, 0, 32768))
    });
    group.bench_function("dijkstra_sequential", |b| {
        b.iter(|| dijkstra::dijkstra(&g, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_wbfs, bench_delta);
criterion_main!(benches);
