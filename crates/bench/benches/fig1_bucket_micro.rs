//! Figure 1 (Criterion form): bucket-structure throughput on the Section
//! 3.4 microbenchmark, for each initial bucket count b ∈ {128, 256, 512,
//! 1024}. Criterion reports time per drain; identifiers/second =
//! (extracted + moved) / time, printed by the `fig1` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use julienne_bench::micro::bucket_microbenchmark;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_bucket_micro");
    group.sample_size(10);
    let n = 1usize << 16;
    for &b in &[128u32, 256, 512, 1024] {
        group.bench_with_input(BenchmarkId::new("buckets", b), &b, |bench, &b| {
            bench.iter(|| bucket_microbenchmark(n, b, 128, 0xF16, false));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
