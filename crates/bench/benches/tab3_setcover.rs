//! Table 3 / Figure 5 (Criterion form): approximate set cover — Julienne
//! (rebucketing) vs. PBBS-style (carry-over) vs. sequential greedy, ε = 0.01.

use criterion::{criterion_group, criterion_main, Criterion};
use julienne::query::QueryCtx;
use julienne_algorithms::setcover::{cover, SetCoverParams};
use julienne_algorithms::setcover_baselines::{set_cover_greedy_seq, set_cover_pbbs_style};
use julienne_graph::generators::set_cover_instance;

fn bench_setcover(c: &mut Criterion) {
    let inst = set_cover_instance(1 << 9, 1 << 14, 4, 0x5E7C);
    let mut group = c.benchmark_group("tab3_setcover");
    group.sample_size(10);
    group.bench_function("julienne_work_efficient", |b| {
        b.iter(|| cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap())
    });
    group.bench_function("pbbs_style_carry_over", |b| {
        b.iter(|| set_cover_pbbs_style(&inst, 0.01))
    });
    group.bench_function("greedy_sequential", |b| {
        b.iter(|| set_cover_greedy_seq(&inst))
    });
    group.finish();
}

criterion_group!(benches, bench_setcover);
criterion_main!(benches);
