//! Ablation A2 (Section 4.2): Δ sensitivity — the trade-off between
//! Dijkstra-like work-efficiency (small Δ) and Bellman–Ford-like
//! parallelism (large Δ) — plus the light/heavy edge split the paper
//! implemented but found unhelpful.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use julienne::query::QueryCtx;
use julienne_algorithms::delta_stepping::{delta_stepping_light_heavy, sssp, SsspParams};
use julienne_graph::generators::{rmat, RmatParams};
use julienne_graph::transform::assign_weights;

fn bench_delta_sensitivity(c: &mut Criterion) {
    let g = assign_weights(
        &rmat(13, 12, RmatParams::default(), 0xDE17A, true),
        1,
        100_000,
        3,
    );
    let mut group = c.benchmark_group("ablation_delta_sensitivity");
    group.sample_size(10);
    for &delta in &[1u64, 1 << 10, 1 << 15, 1 << 17, 1 << 40] {
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, &d| {
            b.iter(|| sssp(&g, &SsspParams { src: 0, delta: d }, &QueryCtx::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_light_heavy(c: &mut Criterion) {
    let g = assign_weights(
        &rmat(13, 12, RmatParams::default(), 0xDE17B, true),
        1,
        100_000,
        4,
    );
    let mut group = c.benchmark_group("ablation_light_heavy");
    group.sample_size(10);
    group.bench_function("plain_delta_32768", |b| {
        b.iter(|| {
            sssp(
                &g,
                &SsspParams {
                    src: 0,
                    delta: 32768,
                },
                &QueryCtx::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("light_heavy_delta_32768", |b| {
        b.iter(|| delta_stepping_light_heavy(&g, 0, 32768))
    });
    group.finish();
}

criterion_group!(benches, bench_delta_sensitivity, bench_light_heavy);
criterion_main!(benches);
