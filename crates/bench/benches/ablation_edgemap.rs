//! Ablation A3 (Section 2.1): edgeMap traversal strategies (sparse push /
//! dense pull / auto switching) on BFS, and the two edgeMapSum
//! implementations (semisort aggregation vs. persistent atomic counters).

use criterion::{criterion_group, criterion_main, Criterion};
use julienne::query::QueryCtx;
use julienne_algorithms::bfs::bfs_with_mode;
use julienne_graph::generators::{rmat, RmatParams};
use julienne_ligra::edge_map::Mode;
use julienne_ligra::edge_map_reduce::{edge_map_sum, edge_map_sum_with_scratch, SumScratch};

fn bench_bfs_modes(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 0xED6E, true);
    let mut group = c.benchmark_group("ablation_edgemap_direction");
    group.sample_size(10);
    for (name, mode) in [
        ("sparse_push", Mode::Sparse),
        ("dense_pull", Mode::Dense),
        ("auto_threshold", Mode::Auto),
    ] {
        group.bench_function(name, |b| b.iter(|| bfs_with_mode(&g, 0, mode)));
    }
    group.finish();
}

fn bench_edge_map_sum(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 0xED6F, true);
    let frontier: Vec<u32> = (0..(g.num_vertices() as u32) / 4).collect();
    let scratch = SumScratch::new(g.num_vertices());
    let mut group = c.benchmark_group("ablation_edge_map_sum");
    group.sample_size(10);
    group.bench_function("semisort_aggregation", |b| {
        b.iter(|| edge_map_sum(&g, &frontier, |_, c| Some(c), |_| true))
    });
    group.bench_function("atomic_counter_scratch", |b| {
        b.iter(|| edge_map_sum_with_scratch(&g, &frontier, |_, c| Some(c), |_| true, &scratch))
    });
    group.finish();
}

fn bench_hub_sort_locality(c: &mut Criterion) {
    use julienne_algorithms::kcore::{coreness, KcoreParams};
    use julienne_graph::transform::hub_sort;
    let g = rmat(13, 16, RmatParams::default(), 0xED70, true);
    let (sorted, _) = hub_sort(&g);
    let mut group = c.benchmark_group("ablation_hub_sort_locality");
    group.sample_size(10);
    group.bench_function("kcore_original_labels", |b| {
        b.iter(|| coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap())
    });
    group.bench_function("kcore_hub_sorted", |b| {
        b.iter(|| coreness(&sorted, &KcoreParams::default(), &QueryCtx::default()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs_modes,
    bench_edge_map_sum,
    bench_hub_sort_locality
);
criterion_main!(benches);
