//! Ablation A1 (Section 3.3): the two `updateBuckets` strategies —
//! blocked-histogram direct writes (the paper's production choice) vs. the
//! semisort-based variant (Section 3.2) — and sensitivity to the number of
//! open buckets nB. The paper found the direct writes "much faster than a
//! semisort" for small nB.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use julienne_bench::micro::bucket_microbenchmark;

fn bench_update_strategy(c: &mut Criterion) {
    let n = 1usize << 15;
    let mut group = c.benchmark_group("ablation_update_buckets_strategy");
    group.sample_size(10);
    group.bench_function("histogram_direct_writes", |b| {
        b.iter(|| bucket_microbenchmark(n, 512, 128, 0xAB1, false))
    });
    group.bench_function("semisort_shuffle", |b| {
        b.iter(|| bucket_microbenchmark(n, 512, 128, 0xAB1, true))
    });
    group.finish();
}

fn bench_open_buckets(c: &mut Criterion) {
    let n = 1usize << 15;
    let mut group = c.benchmark_group("ablation_num_open_buckets");
    group.sample_size(10);
    for &nb in &[1usize, 16, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("nB", nb), &nb, |b, &nb| {
            b.iter(|| bucket_microbenchmark(n, 1024, nb, 0xAB2, false))
        });
    }
    group.finish();
}

fn bench_semisort_impls(c: &mut Criterion) {
    use julienne_primitives::rng::SplitMix64;
    use julienne_primitives::semisort::{semisort_by_key, semisort_by_key_hashed};
    let mut rng = SplitMix64::new(0xAB3);
    let items: Vec<(u32, u64)> = (0..200_000).map(|i| (rng.next_u32() % 4096, i)).collect();
    let mut group = c.benchmark_group("ablation_semisort_impl");
    group.sample_size(10);
    group.bench_function("radix_semisort", |b| {
        b.iter(|| {
            let mut xs = items.clone();
            semisort_by_key(&mut xs, 4095, |p| p.0)
        })
    });
    group.bench_function("hash_bucket_semisort", |b| {
        b.iter(|| {
            let mut xs = items.clone();
            semisort_by_key_hashed(&mut xs, |p| p.0)
        })
    });
    group.finish();
}

/// A1b: the §3.3 interface claim — two-argument `getBucket(prev, next)` vs
/// the internal id→bucket map (which the paper measured ~30% slower due to
/// an extra random read+write per moved identifier).
fn bench_getbucket_interface(c: &mut Criterion) {
    use julienne::bucket::{BucketDest, BucketsBuilder, MappedBuckets, Order};
    use julienne_primitives::rng::hash_range;
    use std::sync::atomic::{AtomicU32, Ordering};

    let n = 1usize << 15;
    let b = 512u32;
    let init: Vec<u32> = (0..n as u64)
        .map(|i| hash_range(0xA1B, i, b as u64) as u32)
        .collect();

    let mut group = c.benchmark_group("ablation_getbucket_interface");
    group.sample_size(10);
    group.bench_function("two_argument_getbucket", |bench| {
        bench.iter(|| {
            let d: Vec<AtomicU32> = init.iter().map(|&x| AtomicU32::new(x)).collect();
            let mut bk = BucketsBuilder::new(
                n,
                |i: u32| d[i as usize].load(Ordering::SeqCst),
                Order::Increasing,
            )
            .build();
            while let Some((cur, ids)) = bk.next_bucket() {
                let mut moves: Vec<(u32, BucketDest)> = Vec::with_capacity(ids.len());
                for &i in &ids {
                    // Halve the bucket of a pseudo-random other identifier.
                    let v = hash_range(0xFEED, i as u64, n as u64) as u32;
                    let dv = d[v as usize].load(Ordering::SeqCst);
                    if dv != u32::MAX && dv > cur {
                        let new = (dv / 2).max(cur);
                        d[v as usize].store(new, Ordering::SeqCst);
                        moves.push((v, bk.get_bucket(dv, new)));
                    }
                }
                bk.update_buckets(&moves);
            }
        })
    });
    group.bench_function("internal_map_getbucket", |bench| {
        bench.iter(|| {
            let d: Vec<AtomicU32> = init.iter().map(|&x| AtomicU32::new(x)).collect();
            let mut bk = MappedBuckets::new(
                n,
                |i: u32| d[i as usize].load(Ordering::SeqCst),
                Order::Increasing,
            );
            while let Some((cur, ids)) = bk.next_bucket() {
                let mut moves: Vec<(u32, BucketDest)> = Vec::with_capacity(ids.len());
                for &i in &ids {
                    let v = hash_range(0xFEED, i as u64, n as u64) as u32;
                    let dv = d[v as usize].load(Ordering::SeqCst);
                    if dv != u32::MAX && dv > cur {
                        let new = (dv / 2).max(cur);
                        d[v as usize].store(new, Ordering::SeqCst);
                        moves.push((v, bk.get_bucket(v, new)));
                    }
                }
                bk.update_buckets(&moves);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_update_strategy,
    bench_open_buckets,
    bench_semisort_impls,
    bench_getbucket_interface
);
criterion_main!(benches);
