//! Table 3 / Figure 2 (Criterion form): k-core — Julienne work-efficient
//! vs. Ligra work-inefficient vs. sequential Batagelj–Zaversnik, on a
//! heavy-tailed R-MAT graph and on the compressed representation.

use criterion::{criterion_group, criterion_main, Criterion};
use julienne::query::QueryCtx;
use julienne_algorithms::kcore::{self, KcoreParams};
use julienne_graph::compress::CompressedGraph;
use julienne_graph::generators::{rmat, RmatParams};

fn bench_kcore(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 0xC04E, true);
    let mut group = c.benchmark_group("tab3_kcore");
    group.sample_size(10);
    group.bench_function("julienne_work_efficient", |b| {
        b.iter(|| kcore::coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap())
    });
    group.bench_function("ligra_work_inefficient", |b| {
        b.iter(|| kcore::coreness_ligra(&g))
    });
    group.bench_function("bz_sequential", |b| b.iter(|| kcore::coreness_bz_seq(&g)));
    let cg = CompressedGraph::from_csr(&g);
    group.bench_function("julienne_on_compressed", |b| {
        b.iter(|| kcore::coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kcore);
criterion_main!(benches);
