//! Greedy set cover oracle plus an independent cover checker, over the
//! bipartite [`SetCoverInstance`] layout (sets `0..num_sets`, elements
//! after).

use julienne_graph::generators::SetCoverInstance;
use julienne_graph::VertexId;

/// Literal greedy set cover: repeatedly pick the set covering the most
/// still-uncovered elements (smallest id on ties) until every coverable
/// element is covered. Returns the chosen set ids in pick order.
pub fn greedy_cover(inst: &SetCoverInstance) -> Vec<VertexId> {
    let mut covered = vec![false; inst.num_elements];
    let uncovered_gain = |s: VertexId, covered: &[bool]| {
        inst.graph
            .neighbors(s)
            .iter()
            .filter(|&&e| !covered[e as usize - inst.num_sets])
            .count()
    };
    let mut cover = Vec::new();
    loop {
        let mut best: Option<(usize, VertexId)> = None;
        for s in 0..inst.num_sets as VertexId {
            let gain = uncovered_gain(s, &covered);
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, s));
            }
        }
        let Some((_, s)) = best else {
            break;
        };
        cover.push(s);
        for &e in inst.graph.neighbors(s) {
            covered[e as usize - inst.num_sets] = true;
        }
    }
    cover
}

/// Whether `cover` covers every element that belongs to at least one set.
/// Independent of the algorithms' own `verify_cover`.
pub fn is_cover(inst: &SetCoverInstance, cover: &[VertexId]) -> bool {
    let mut covered = vec![false; inst.num_elements];
    for &s in cover {
        if !inst.is_set(s) {
            return false;
        }
        for &e in inst.graph.neighbors(s) {
            covered[e as usize - inst.num_sets] = true;
        }
    }
    (0..inst.num_elements).all(|e| covered[e] || inst.graph.degree(inst.element_vertex(e)) == 0)
}
