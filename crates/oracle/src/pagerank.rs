//! Sequential PageRank power iteration, straight from the definition.

use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};

/// Damped PageRank by plain power iteration:
/// `p'(v) = (1−d)/n + d·(Σ_{u→v} p(u)/deg(u) + dangling/n)`, iterating
/// until the L1 change drops below `tol` or `max_iters` passes. Scores sum
/// to 1. Float association differs from the parallel version, so compare
/// with a tolerance, never bitwise.
pub fn pagerank_power<W: Weight>(g: &Csr<W>, damping: f64, tol: f64, max_iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return vec![];
    }
    let mut rank = vec![1.0 / n as f64; n];
    let base = (1.0 - damping) / n as f64;
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0f64;
        for u in 0..n as VertexId {
            let d = g.degree(u);
            if d == 0 {
                dangling += rank[u as usize];
                continue;
            }
            let share = rank[u as usize] / d as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let dangling_share = dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + damping * (*x + dangling_share);
        }
        let l1: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if l1 < tol {
            break;
        }
    }
    rank
}
