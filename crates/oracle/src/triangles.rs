//! Triangle oracles by hashed neighbor-set membership — no degree
//! orientation, no sorted-list merging, no shared code with the parallel
//! counter.

use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};
use std::collections::HashSet;

/// Number of triangles through each vertex, counted from the definition:
/// for every vertex v, every unordered neighbor pair (u, w) with u and w
/// adjacent closes a triangle.
pub fn triangles_per_vertex<W: Weight>(g: &Csr<W>) -> Vec<u64> {
    let n = g.num_vertices();
    let adjacency: Vec<HashSet<VertexId>> = (0..n as VertexId)
        .map(|v| g.neighbors(v).iter().copied().collect())
        .collect();
    (0..n as VertexId)
        .map(|v| {
            let nbrs = g.neighbors(v);
            let mut t = 0u64;
            for (i, &u) in nbrs.iter().enumerate() {
                for &w in &nbrs[i + 1..] {
                    if adjacency[u as usize].contains(&w) {
                        t += 1;
                    }
                }
            }
            t
        })
        .collect()
}

/// Total triangle count: each triangle touches exactly three vertices.
pub fn triangle_count_naive<W: Weight>(g: &Csr<W>) -> u64 {
    triangles_per_vertex(g).iter().sum::<u64>() / 3
}

/// Per-vertex local clustering coefficient
/// `C(v) = T(v) / (deg(v)·(deg(v)−1)/2)`, 0 for degree < 2.
pub fn local_clustering_naive<W: Weight>(g: &Csr<W>) -> Vec<f64> {
    triangles_per_vertex(g)
        .into_iter()
        .enumerate()
        .map(|(v, t)| {
            let d = g.degree(v as VertexId) as u64;
            if d < 2 {
                0.0
            } else {
                t as f64 / ((d * (d - 1) / 2) as f64)
            }
        })
        .collect()
}

/// Global transitivity `3·triangles / wedges` (0 when there are no
/// wedges).
pub fn transitivity_naive<W: Weight>(g: &Csr<W>) -> f64 {
    let triangles = triangle_count_naive(g);
    let wedges: u64 = (0..g.num_vertices() as VertexId)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Whether `members` is an independent set: no two members adjacent.
pub fn is_independent_set<W: Weight>(g: &Csr<W>, members: &[VertexId]) -> bool {
    let member: HashSet<VertexId> = members.iter().copied().collect();
    members
        .iter()
        .all(|&v| g.neighbors(v).iter().all(|u| !member.contains(u)))
}

/// Whether `members` is a *maximal* independent set: independent, and
/// every non-member has a member neighbor.
pub fn is_maximal_independent_set<W: Weight>(g: &Csr<W>, members: &[VertexId]) -> bool {
    if !is_independent_set(g, members) {
        return false;
    }
    let member: HashSet<VertexId> = members.iter().copied().collect();
    (0..g.num_vertices() as VertexId)
        .all(|v| member.contains(&v) || g.neighbors(v).iter().any(|u| member.contains(u)))
}
