//! Peeling oracles: coreness, degeneracy, and edge trussness by literal
//! repeated removal.

use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};
use std::collections::HashSet;

/// Coreness λ(v) of every vertex by literal peeling: for k = 0, 1, 2, …
/// repeatedly delete any live vertex whose live degree is ≤ k, assigning it
/// coreness k, until all vertices are gone. O(n·m) worst case — fine for
/// an oracle.
pub fn coreness_peel<W: Weight>(g: &Csr<W>) -> Vec<u32> {
    let n = g.num_vertices();
    let mut live_degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut coreness = vec![0u32; n];
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        // Peel everything of degree ≤ k to a fixpoint before raising k.
        while let Some(v) = (0..n).find(|&v| alive[v] && live_degree[v] <= k as usize) {
            alive[v] = false;
            coreness[v] = k;
            remaining -= 1;
            for &u in g.neighbors(v as VertexId) {
                if alive[u as usize] {
                    live_degree[u as usize] -= 1;
                }
            }
        }
        k += 1;
    }
    coreness
}

/// The degeneracy of the graph: the largest coreness.
pub fn degeneracy<W: Weight>(g: &Csr<W>) -> u32 {
    coreness_peel(g).into_iter().max().unwrap_or(0)
}

/// Checks a claimed degeneracy order: walking `order` front to back and
/// deleting as we go, every vertex must have at most `claimed_degeneracy`
/// neighbors among the not-yet-deleted suffix, and `order` must be a
/// permutation of the vertices.
pub fn is_degeneracy_order<W: Weight>(
    g: &Csr<W>,
    order: &[VertexId],
    claimed_degeneracy: u32,
) -> bool {
    let n = g.num_vertices();
    if order.len() != n {
        return false;
    }
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if (v as usize) >= n || position[v as usize] != usize::MAX {
            return false;
        }
        position[v as usize] = i;
    }
    order.iter().enumerate().all(|(i, &v)| {
        let later = g
            .neighbors(v)
            .iter()
            .filter(|&&u| position[u as usize] > i)
            .count();
        later <= claimed_degeneracy as usize
    })
}

/// Trussness of every undirected edge by literal peeling, mirroring the
/// definition: for k = 3, 4, … repeatedly delete any live edge closing
/// fewer than k − 2 triangles in the live subgraph, assigning it trussness
/// k − 1. Edges in no triangle get trussness 2.
///
/// Returns `(endpoints, trussness)` with endpoints `(u, v)`, `u < v`,
/// sorted — the same edge-id order as the parallel `EdgeIndex`.
pub fn trussness_peel<W: Weight>(g: &Csr<W>) -> (Vec<(VertexId, VertexId)>, Vec<u32>) {
    let n = g.num_vertices();
    let mut endpoints: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..n as VertexId {
        for &v in g.neighbors(u) {
            if u < v {
                endpoints.push((u, v));
            }
        }
    }
    endpoints.sort_unstable();
    let m = endpoints.len();

    let adjacency: Vec<HashSet<VertexId>> = (0..n as VertexId)
        .map(|v| g.neighbors(v).iter().copied().collect())
        .collect();
    let ordered = |a: u32, b: u32| (a.min(b), a.max(b));
    // A triangle through live edge (u, v) needs both closing edges live.
    let live_support = |e: usize, dead: &HashSet<(u32, u32)>| {
        let (u, v) = endpoints[e];
        adjacency[u as usize]
            .iter()
            .filter(|&&w| {
                adjacency[v as usize].contains(&w)
                    && !dead.contains(&ordered(u, w))
                    && !dead.contains(&ordered(v, w))
            })
            .count() as u32
    };

    let mut alive = vec![true; m];
    let mut dead: HashSet<(u32, u32)> = HashSet::new();
    let mut trussness = vec![2u32; m];
    let mut remaining = m;
    let mut k = 3u32;
    while remaining > 0 {
        while let Some(e) = (0..m).find(|&e| alive[e] && live_support(e, &dead) < k - 2) {
            alive[e] = false;
            dead.insert(endpoints[e]);
            trussness[e] = k - 1;
            remaining -= 1;
        }
        k += 1;
    }
    (endpoints, trussness)
}
