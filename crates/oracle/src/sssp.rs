//! Shortest-path oracles: textbook binary-heap Dijkstra over `u64`
//! distances, for weighted and unit edges.

use crate::INF;
use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths from `src` with the graph's `u32` edge
/// weights, by Dijkstra on a `std` binary heap (lazy deletion). `INF` for
/// unreachable vertices.
pub fn dijkstra_binheap(g: &Csr<u32>, src: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale heap entry
        }
        for (v, w) in g.edges_of(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Shortest paths treating every edge as weight 1 (the wBFS / unit-weight
/// special case), as `u64` distances with `INF` for unreachable vertices.
pub fn unit_dists<W: Weight>(g: &Csr<W>, src: VertexId) -> Vec<u64> {
    crate::traversal::bfs_levels(g, src)
        .into_iter()
        .map(|l| if l == u32::MAX { INF } else { l as u64 })
        .collect()
}
