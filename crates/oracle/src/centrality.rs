//! Centrality oracles: shortest-path counting from first principles.
//!
//! The betweenness oracle deliberately avoids the frontier machinery: σ is
//! accumulated by scanning *all* vertices grouped by BFS distance, and
//! dependencies walk the groups backwards — no frontiers, no atomics.

use crate::traversal::bfs_levels;
use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};

/// Per-source Brandes dependencies computed sequentially from the
/// definition; summed over `sources` with the source itself excluded
/// (matching the parallel `betweenness`).
pub fn betweenness_naive<W: Weight>(g: &Csr<W>, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let level = bfs_levels(g, s);
        let max_level = level.iter().filter(|&&l| l != u32::MAX).max().copied();
        let Some(max_level) = max_level else {
            continue;
        };
        // Vertices grouped by distance from s.
        let mut by_level: Vec<Vec<VertexId>> = vec![Vec::new(); max_level as usize + 1];
        for v in 0..n {
            if level[v] != u32::MAX {
                by_level[level[v] as usize].push(v as VertexId);
            }
        }
        // σ(v): number of shortest s→v paths, filled level by level.
        let mut sigma = vec![0.0f64; n];
        sigma[s as usize] = 1.0;
        for l in 1..=max_level {
            for &v in &by_level[l as usize] {
                for &u in g.neighbors(v) {
                    if level[u as usize] != u32::MAX && level[u as usize] + 1 == level[v as usize] {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
        }
        // δ(v) = Σ_{w successor of v} σ(v)/σ(w)·(1 + δ(w)), deepest first.
        let mut delta = vec![0.0f64; n];
        for l in (1..=max_level).rev() {
            for &w in &by_level[l as usize] {
                for &v in g.neighbors(w) {
                    if level[v as usize] != u32::MAX && level[v as usize] + 1 == level[w as usize] {
                        delta[v as usize] +=
                            sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                    }
                }
            }
        }
        for v in 0..n {
            if v as u32 != s {
                bc[v] += delta[v];
            }
        }
    }
    bc
}

/// Closeness centrality of each source, normalised by reachable count:
/// `C(v) = (r−1) / Σ_u dist(v,u)` over the r reachable vertices (0 when
/// nothing else is reachable).
pub fn closeness_naive<W: Weight>(g: &Csr<W>, sources: &[VertexId]) -> Vec<f64> {
    sources
        .iter()
        .map(|&s| {
            let level = bfs_levels(g, s);
            let mut reachable = 0u64;
            let mut total = 0u64;
            for &l in &level {
                if l != u32::MAX {
                    reachable += 1;
                    total += l as u64;
                }
            }
            if reachable <= 1 || total == 0 {
                0.0
            } else {
                (reachable - 1) as f64 / total as f64
            }
        })
        .collect()
}

/// Harmonic centrality of each source: `Σ_{u ≠ v} 1/dist(v,u)` over
/// reachable vertices.
pub fn harmonic_naive<W: Weight>(g: &Csr<W>, sources: &[VertexId]) -> Vec<f64> {
    sources
        .iter()
        .map(|&s| {
            bfs_levels(g, s)
                .into_iter()
                .filter(|&l| l != u32::MAX && l > 0)
                .map(|l| 1.0 / l as f64)
                .sum()
        })
        .collect()
}
