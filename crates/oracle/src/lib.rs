//! # julienne-oracle
//!
//! Deliberately naive, obviously-correct **sequential** reference
//! implementations of every problem the workspace solves in parallel.
//!
//! The thread-count and backend equivalence suites compare the parallel
//! code against itself, so a bug shared by both sides passes unnoticed.
//! This crate closes that hole: each function here is written straight
//! from the textbook definition against a plain [`Csr`] — no bucket
//! structure, no `EdgeMap`, no worker pool, no shared helper code — so a
//! differential test against it fails unless the parallel implementation
//! is *actually* correct, not merely self-consistent (the GBBS
//! methodology: validate parallel kernels against simple sequential
//! checkers).
//!
//! Simplicity is the point. Everything here favours the most obvious
//! formulation over efficiency: coreness by literal peeling, SSSP by
//! binary-heap Dijkstra, set cover by literal greedy, triangles by hashed
//! neighbor-set intersection. Do **not** optimise these; an oracle you
//! have to think about is no oracle.
//!
//! [`Csr`]: julienne_graph::Csr

pub mod centrality;
pub mod kcore;
pub mod pagerank;
pub mod setcover;
pub mod sssp;
pub mod traversal;
pub mod triangles;

/// Distance value for unreachable vertices (matches the parallel crate).
pub const INF: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    //! Hand-computed fixtures: the oracles must be right by inspection, so
    //! every expectation here is derivable on paper.

    use super::*;
    use julienne_graph::builder::{from_pairs_symmetric, EdgeList};

    /// Two triangles sharing vertex 2, plus a pendant at 5 and an isolated
    /// vertex 6.
    fn bowtie() -> julienne_graph::Graph {
        from_pairs_symmetric(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)])
    }

    #[test]
    fn bfs_levels_hand_checked() {
        let g = bowtie();
        assert_eq!(
            traversal::bfs_levels(&g, 0),
            vec![0, 1, 1, 2, 2, 3, u32::MAX]
        );
        assert_eq!(traversal::eccentricity(&g, 0), 3);
    }

    #[test]
    fn components_min_label_hand_checked() {
        let g = bowtie();
        assert_eq!(
            traversal::components_min_label(&g),
            vec![0, 0, 0, 0, 0, 0, 6]
        );
        let relabeled = vec![9, 9, 9, 9, 9, 9, 4];
        assert_eq!(
            traversal::canonical_labels(&relabeled),
            vec![0, 0, 0, 0, 0, 0, 6]
        );
    }

    #[test]
    fn coreness_peel_hand_checked() {
        // Both triangles are 2-cores; the pendant 5 and isolate 6 are not.
        let g = bowtie();
        assert_eq!(kcore::coreness_peel(&g), vec![2, 2, 2, 2, 2, 1, 0]);
        assert_eq!(kcore::degeneracy(&g), 2);
    }

    #[test]
    fn degeneracy_order_checker() {
        let g = bowtie();
        assert!(kcore::is_degeneracy_order(&g, &[6, 5, 4, 3, 2, 1, 0], 2));
        // Claiming degeneracy 1 must fail (triangles need 2).
        assert!(!kcore::is_degeneracy_order(&g, &[6, 5, 4, 3, 2, 1, 0], 1));
        // Not a permutation.
        assert!(!kcore::is_degeneracy_order(&g, &[0, 0, 1, 2, 3, 4, 5], 2));
    }

    #[test]
    fn trussness_hand_checked() {
        // K4: every edge closes 2 triangles → trussness 4.
        let k4 = from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (endpoints, truss) = kcore::trussness_peel(&k4);
        assert_eq!(endpoints.len(), 6);
        assert!(truss.iter().all(|&t| t == 4), "{truss:?}");
        // A path has no triangles → trussness 2 everywhere.
        let path = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        let (_, truss) = kcore::trussness_peel(&path);
        assert_eq!(truss, vec![2, 2]);
    }

    #[test]
    fn dijkstra_hand_checked() {
        // 0 →(5) 1 →(1) 2, plus direct 0 →(10) 2: shortest 0→2 is 6.
        let mut el: EdgeList<u32> = EdgeList::new(4);
        el.push_undirected(0, 1, 5);
        el.push_undirected(1, 2, 1);
        el.push_undirected(0, 2, 10);
        let g = el.build(true);
        assert_eq!(sssp::dijkstra_binheap(&g, 0), vec![0, 5, 6, INF]);
        assert_eq!(sssp::unit_dists(&g, 0), vec![0, 1, 1, INF]);
    }

    #[test]
    fn triangle_oracles_hand_checked() {
        let g = bowtie();
        assert_eq!(triangles::triangle_count_naive(&g), 2);
        assert_eq!(
            triangles::triangles_per_vertex(&g),
            vec![1, 1, 2, 1, 1, 0, 0]
        );
        let c = triangles::local_clustering_naive(&g);
        assert_eq!(c[0], 1.0); // deg 2, one triangle
        assert_eq!(c[2], 2.0 / 6.0); // deg 4, two of six pairs closed
        assert_eq!(c[6], 0.0);
    }

    #[test]
    fn mis_checkers() {
        let g = bowtie();
        assert!(triangles::is_independent_set(&g, &[0, 3, 5]));
        assert!(!triangles::is_independent_set(&g, &[0, 1]));
        // {0, 3, 5} dominates everything except 6; with 6 it is maximal.
        assert!(!triangles::is_maximal_independent_set(&g, &[0, 3, 5]));
        assert!(triangles::is_maximal_independent_set(&g, &[0, 3, 5, 6]));
    }

    #[test]
    fn betweenness_path_hand_checked() {
        // Path 0–1–2: from all sources, only vertex 1 carries a dependency
        // (one unit per direction).
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        let sources: Vec<u32> = vec![0, 1, 2];
        let bc = centrality::betweenness_naive(&g, &sources);
        assert_eq!(bc, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let pairs: Vec<(u32, u32)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let g = from_pairs_symmetric(8, &pairs);
        let r = pagerank::pagerank_power(&g, 0.85, 1e-12, 200);
        for &x in &r {
            assert!((x - 0.125).abs() < 1e-9, "{r:?}");
        }
    }
}
