//! Queue-based BFS and union-free connected components — the frontier
//! oracles.

use julienne_graph::csr::Weight;
use julienne_graph::{Csr, VertexId};
use std::collections::VecDeque;

/// Hop distance from `src` to every vertex (`u32::MAX` if unreached), by a
/// plain FIFO queue BFS.
pub fn bfs_levels<W: Weight>(g: &Csr<W>, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    if n == 0 {
        return level;
    }
    level[src as usize] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Eccentricity of `src` within its component: the largest finite BFS
/// level.
pub fn eccentricity<W: Weight>(g: &Csr<W>, src: VertexId) -> u32 {
    bfs_levels(g, src)
        .into_iter()
        .filter(|&l| l != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Component label per vertex: the smallest vertex id in its component,
/// found by BFS flood-fill from each unlabelled vertex in id order.
pub fn components_min_label<W: Weight>(g: &Csr<W>) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    for s in 0..n as VertexId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = s;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = s;
                    queue.push_back(v);
                }
            }
        }
    }
    label
}

/// Rewrites arbitrary component labels into canonical form — every vertex
/// mapped to the smallest vertex id sharing its label — so labelings from
/// different algorithms can be compared directly.
pub fn canonical_labels(labels: &[u32]) -> Vec<u32> {
    let mut smallest: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        smallest.entry(l).or_insert(v as u32);
    }
    labels.iter().map(|l| smallest[l]).collect()
}
