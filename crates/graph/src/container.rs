//! The `.jgr` zero-copy graph container and its memory-mapped reader.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = "JGR!\r\n\x1a\n"   (PNG-style: detects text-mode mangling)
//! 8       4     version = 1
//! 12      4     endian check = 0x0A0B0C0D
//! 16      8     flags   (bit 0 WEIGHTED, bit 1 SYMMETRIC, bit 2 HAS_IN,
//!                        bit 3 HAS_COMPRESSED, bit 4 COMP_CHUNKED)
//! 24      8     n  (vertices)
//! 32      8     m  (directed edges)
//! 40      4     section count
//! 44      4     header checksum (FNV-1a 64 of bytes 0..44, truncated)
//! 48      16    reserved (zero)
//! 64      32×k  section table: kind u32, pad u32, offset u64, len u64,
//!               checksum u64 (FNV-1a 64 of the section payload)
//! ...           section payloads, each starting on a 64-byte boundary,
//!               zero-padded between
//! ```
//!
//! Sections are raw copies of the in-memory arrays — offsets as `u64`,
//! targets and weights as `u32` — so a page-aligned map plus the 64-byte
//! section alignment lets [`MappedGraph`] reinterpret the mapped bytes as
//! typed slices directly: **no parse, no copy, no per-edge work at open**.
//! Optional sections carry the transpose (dense pull on directed graphs)
//! and the Ligra+ byte-compressed payload, so `backend=compressed` loads
//! skip re-encoding too.
//!
//! # Compressed-payload versioning
//!
//! Payloads written before decode chunking carry no `COMP_META` section and
//! no `COMP_CHUNKED` flag: they load as the legacy unchunked block layout
//! (`chunk_size == 0`), so old files keep working unchanged. Files written
//! with a chunked payload set the flag — old readers, which validate flags
//! strictly, fail closed on them rather than mis-decoding the chunk
//! headers as edges. Compressed payloads are fully validated at load
//! (structure plus a parallel decode walk of every block), so a corrupt
//! file surfaces a typed parse error, never a traversal-time panic.
//!
//! # Integrity and forward compatibility
//!
//! Opening validates the header, the endianness marker, the header
//! checksum, and every section-table entry (alignment, bounds, expected
//! lengths) — O(sections), independent of graph size. Per-section payload
//! checksums are *stored* at write time but verified only on demand
//! ([`MappedGraph::verify`]), keeping the open path free of per-edge work;
//! `julienne convert verify=true` and the test suites run the full check.
//! Readers reject `version != 1` and unknown *flags*, but skip unknown
//! section kinds, so future writers can add sections without breaking old
//! readers.

use crate::compress::{CompressedGraph, CompressedWGraph};
use crate::csr::{Csr, Weight};
use crate::mmap::MmapBuf;
use crate::VertexId;
use julienne_primitives::error::Error;
use std::borrow::Cow;
use std::io::Write as _;
use std::marker::PhantomData;
use std::path::Path;

/// File magic: "JGR!" plus the PNG-style CRLF/EOF/LF tail that catches
/// line-ending translation and truncation-at-EOF corruption.
pub const MAGIC: [u8; 8] = *b"JGR!\r\n\x1a\n";
/// Container format version this build reads and writes.
pub const VERSION: u32 = 1;
const ENDIAN_CHECK: u32 = 0x0A0B_0C0D;
const HEADER_LEN: usize = 64;
const SECTION_ENTRY_LEN: usize = 32;
const SECTION_ALIGN: usize = 64;

const FLAG_WEIGHTED: u64 = 1 << 0;
const FLAG_SYMMETRIC: u64 = 1 << 1;
const FLAG_HAS_IN: u64 = 1 << 2;
const FLAG_HAS_COMPRESSED: u64 = 1 << 3;
/// The compressed payload uses the chunked block layout (a `COMP_META`
/// section carries the chunk size). Deliberately a *flag*, not just a new
/// section kind: readers that predate chunking skip unknown kinds but
/// reject unknown flags, so they fail closed instead of decoding chunk
/// headers as edge data.
const FLAG_COMP_CHUNKED: u64 = 1 << 4;
const KNOWN_FLAGS: u64 =
    FLAG_WEIGHTED | FLAG_SYMMETRIC | FLAG_HAS_IN | FLAG_HAS_COMPRESSED | FLAG_COMP_CHUNKED;

/// Section kinds. Unknown kinds are skipped by readers (forward compat).
mod kind {
    pub const OFFSETS: u32 = 1;
    pub const TARGETS: u32 = 2;
    pub const WEIGHTS: u32 = 3;
    pub const IN_OFFSETS: u32 = 4;
    pub const IN_TARGETS: u32 = 5;
    pub const IN_WEIGHTS: u32 = 6;
    pub const COMP_OFFSETS: u32 = 7;
    pub const COMP_DEGREES: u32 = 8;
    pub const COMP_DATA: u32 = 9;
    pub const COMP_IN_OFFSETS: u32 = 10;
    pub const COMP_IN_DEGREES: u32 = 11;
    pub const COMP_IN_DATA: u32 = 12;
    /// Chunked-payload metadata for the out-direction: chunk size (u32 LE)
    /// plus 4 reserved zero bytes. Absent for legacy unchunked payloads.
    pub const COMP_META: u32 = 13;
    /// Chunked-payload metadata for the transpose direction.
    pub const COMP_IN_META: u32 = 14;
}

/// FNV-1a 64 — the per-section checksum. Cheap, dependency-free, and good
/// enough to catch torn writes and bit rot (not an integrity MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, Copy, Debug)]
struct Section {
    kind: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Parsed header summary — what [`peek`] returns without mapping the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Format version (always 1 for files this build accepts).
    pub version: u32,
    /// Whether the file carries a weights section.
    pub weighted: bool,
    /// Whether the stored graph is symmetric.
    pub symmetric: bool,
    /// Whether transpose (in-edge) sections are present.
    pub has_in: bool,
    /// Whether a byte-compressed payload is present.
    pub has_compressed: bool,
    /// Whether the compressed payload uses the chunked block layout
    /// (`COMP_META` sections carry the chunk sizes).
    pub comp_chunked: bool,
    /// Vertex count.
    pub n: u64,
    /// Directed edge count.
    pub m: u64,
}

fn bad(path: &Path, msg: impl Into<String>) -> Error {
    Error::parse(msg).with_path(path)
}

fn parse_header(path: &Path, head: &[u8]) -> Result<(ContainerInfo, u32), Error> {
    if head.len() < HEADER_LEN {
        return Err(bad(path, "truncated container (shorter than the header)"));
    }
    if head[0..8] != MAGIC {
        return Err(bad(path, "not a .jgr container (bad magic)"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(head[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(head[o..o + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != VERSION {
        return Err(bad(
            path,
            format!("unsupported container version {version} (this build reads version {VERSION})"),
        ));
    }
    if u32_at(12) != ENDIAN_CHECK {
        return Err(bad(path, "endianness marker mismatch (byte-swapped file?)"));
    }
    let stored = u32_at(44);
    let computed = fnv1a64(&head[0..44]) as u32;
    if stored != computed {
        return Err(bad(path, "header checksum mismatch (corrupt file)"));
    }
    let flags = u64_at(16);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(bad(
            path,
            format!("unknown container flags {:#x}", flags & !KNOWN_FLAGS),
        ));
    }
    Ok((
        ContainerInfo {
            version,
            weighted: flags & FLAG_WEIGHTED != 0,
            symmetric: flags & FLAG_SYMMETRIC != 0,
            has_in: flags & FLAG_HAS_IN != 0,
            has_compressed: flags & FLAG_HAS_COMPRESSED != 0,
            comp_chunked: flags & FLAG_COMP_CHUNKED != 0,
            n: u64_at(24),
            m: u64_at(32),
        },
        u32_at(40),
    ))
}

/// Reads and validates just the 64-byte header — format dispatch and
/// backend routing use this without touching any section.
pub fn peek(path: &Path) -> Result<ContainerInfo, Error> {
    use std::io::Read as _;
    let mut head = [0u8; HEADER_LEN];
    let mut f = std::fs::File::open(path).map_err(|e| Error::io_at(path, e))?;
    f.read_exact(&mut head)
        .map_err(|_| bad(path, "truncated container (shorter than the header)"))?;
    parse_header(path, &head).map(|(info, _)| info)
}

// --------------------------------------------------------------------------
// Writing
// --------------------------------------------------------------------------

/// Options for [`write()`] — params-struct style, like the registry's option
/// types.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContainerWriteOptions {
    /// Also embed the Ligra+ byte-compressed payload, so
    /// `backend=compressed` loads skip re-encoding. Costs encode time at
    /// convert and ~30–50% extra file size.
    pub compressed_payload: bool,
}

#[cfg(target_endian = "little")]
fn le_u64_bytes(xs: &[u64]) -> Cow<'_, [u8]> {
    // SAFETY: u64 has no padding; on a little-endian host the in-memory
    // byte order is the on-disk order.
    Cow::Borrowed(unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 8) })
}

#[cfg(target_endian = "big")]
fn le_u64_bytes(xs: &[u64]) -> Cow<'_, [u8]> {
    Cow::Owned(xs.iter().flat_map(|x| x.to_le_bytes()).collect())
}

#[cfg(target_endian = "little")]
fn le_u32_bytes(xs: &[u32]) -> Cow<'_, [u8]> {
    // SAFETY: as above, for u32.
    Cow::Borrowed(unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 4) })
}

#[cfg(target_endian = "big")]
fn le_u32_bytes(xs: &[u32]) -> Cow<'_, [u8]> {
    Cow::Owned(xs.iter().flat_map(|x| x.to_le_bytes()).collect())
}

fn align_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Checked conversion to the container's on-disk u32 weights. Wider
/// weights that don't fit are a caller error we surface up front.
fn weights_to_u32<W: Weight>(ws: &[W]) -> Result<Vec<u32>, Error> {
    ws.iter()
        .map(|w| {
            let x = w.to_u64();
            u32::try_from(x).map_err(|_| {
                Error::input(format!(
                    "weight {x} does not fit the container's u32 weights"
                ))
            })
        })
        .collect()
}

/// Writes `g` as a `.jgr` container. Sections always include the CSR
/// arrays; a transpose is included when `g` is directed with an attached
/// in-view, and the byte-compressed payload when
/// [`ContainerWriteOptions::compressed_payload`] is set.
pub fn write<W: Weight>(
    g: &Csr<W>,
    path: &Path,
    opts: &ContainerWriteOptions,
) -> Result<(), Error> {
    // Weights are stored as u32 (the paper's integral weights).
    let weights_u32: Vec<u32> = if W::IS_UNIT {
        Vec::new()
    } else {
        weights_to_u32(g.weights())?
    };
    let in_view = if g.is_symmetric() { None } else { g.in_view() };
    let in_weights_u32: Vec<u32> = match in_view {
        Some(t) if !W::IS_UNIT => weights_to_u32(t.weights())?,
        _ => Vec::new(),
    };
    // Optional compressed payload: encode now so the sections can borrow.
    let comp_u = if W::IS_UNIT && opts.compressed_payload {
        let unweighted: Csr<()> = Csr::from_parts(
            g.offsets().to_vec(),
            g.targets().to_vec(),
            vec![],
            g.is_symmetric(),
        );
        Some(CompressedGraph::from_csr(&unweighted))
    } else {
        None
    };
    let comp_w = if !W::IS_UNIT && opts.compressed_payload {
        let weighted: Csr<u32> = Csr::from_parts(
            g.offsets().to_vec(),
            g.targets().to_vec(),
            weights_u32.clone(),
            g.is_symmetric(),
        );
        Some(CompressedWGraph::from_csr(&weighted))
    } else {
        None
    };
    // For directed graphs the compressed transpose is re-encoded from the
    // in-view so pull traversals work on the compressed payload too.
    let comp_in_u = comp_u.as_ref().and(in_view).map(|t| {
        let unweighted: Csr<()> =
            Csr::from_parts(t.offsets().to_vec(), t.targets().to_vec(), vec![], false);
        CompressedGraph::from_csr(&unweighted)
    });
    let comp_in_w = comp_w.as_ref().and(in_view).map(|t| {
        let weighted: Csr<u32> = Csr::from_parts(
            t.offsets().to_vec(),
            t.targets().to_vec(),
            in_weights_u32.clone(),
            false,
        );
        CompressedWGraph::from_csr(&weighted)
    });

    let mut sections: Vec<(u32, Cow<'_, [u8]>)> = vec![
        (kind::OFFSETS, le_u64_bytes(g.offsets())),
        (kind::TARGETS, le_u32_bytes(g.targets())),
    ];
    if !W::IS_UNIT {
        sections.push((kind::WEIGHTS, le_u32_bytes(&weights_u32)));
    }
    if let Some(t) = in_view {
        sections.push((kind::IN_OFFSETS, le_u64_bytes(t.offsets())));
        sections.push((kind::IN_TARGETS, le_u32_bytes(t.targets())));
        if !W::IS_UNIT {
            sections.push((kind::IN_WEIGHTS, le_u32_bytes(&in_weights_u32)));
        }
    }
    let push_comp = |sections: &mut Vec<(u32, Cow<'_, [u8]>)>,
                     kinds: [u32; 3],
                     offsets: &'_ [u64],
                     degrees: &'_ [u32],
                     data: &'_ [u8]| {
        sections.push((kinds[0], Cow::Owned(le_u64_bytes(offsets).into_owned())));
        sections.push((kinds[1], Cow::Owned(le_u32_bytes(degrees).into_owned())));
        sections.push((kinds[2], Cow::Owned(data.to_vec())));
    };
    // Chunked payloads advertise their chunk size in a META section (and
    // the COMP_CHUNKED flag below); chunk_size 0 writes the legacy layout
    // with no META, which pre-chunking readers accept.
    let push_meta = |sections: &mut Vec<(u32, Cow<'_, [u8]>)>, k: u32, chunk_size: u32| {
        if chunk_size != 0 {
            let mut payload = [0u8; 8];
            payload[..4].copy_from_slice(&chunk_size.to_le_bytes());
            sections.push((k, Cow::Owned(payload.to_vec())));
        }
    };
    let mut comp_chunked = false;
    if let Some(c) = &comp_u {
        let (o, d, b) = c.raw_parts();
        push_comp(
            &mut sections,
            [kind::COMP_OFFSETS, kind::COMP_DEGREES, kind::COMP_DATA],
            o,
            d,
            b,
        );
        push_meta(&mut sections, kind::COMP_META, c.chunk_size());
        comp_chunked |= c.chunk_size() != 0;
    }
    if let Some(c) = &comp_w {
        let (o, d, b) = c.raw_parts();
        push_comp(
            &mut sections,
            [kind::COMP_OFFSETS, kind::COMP_DEGREES, kind::COMP_DATA],
            o,
            d,
            b,
        );
        push_meta(&mut sections, kind::COMP_META, c.chunk_size());
        comp_chunked |= c.chunk_size() != 0;
    }
    if let Some(c) = &comp_in_u {
        let (o, d, b) = c.raw_parts();
        push_comp(
            &mut sections,
            [
                kind::COMP_IN_OFFSETS,
                kind::COMP_IN_DEGREES,
                kind::COMP_IN_DATA,
            ],
            o,
            d,
            b,
        );
        push_meta(&mut sections, kind::COMP_IN_META, c.chunk_size());
        comp_chunked |= c.chunk_size() != 0;
    }
    if let Some(c) = &comp_in_w {
        let (o, d, b) = c.raw_parts();
        push_comp(
            &mut sections,
            [
                kind::COMP_IN_OFFSETS,
                kind::COMP_IN_DEGREES,
                kind::COMP_IN_DATA,
            ],
            o,
            d,
            b,
        );
        push_meta(&mut sections, kind::COMP_IN_META, c.chunk_size());
        comp_chunked |= c.chunk_size() != 0;
    }

    // Lay out the table and compute checksums.
    let table_end = HEADER_LEN + SECTION_ENTRY_LEN * sections.len();
    let mut entries: Vec<Section> = Vec::with_capacity(sections.len());
    let mut cursor = table_end;
    for (k, bytes) in &sections {
        cursor = align_up(cursor, SECTION_ALIGN);
        entries.push(Section {
            kind: *k,
            offset: cursor as u64,
            len: bytes.len() as u64,
            checksum: fnv1a64(bytes),
        });
        cursor += bytes.len();
    }

    let mut flags = 0u64;
    if !W::IS_UNIT {
        flags |= FLAG_WEIGHTED;
    }
    if g.is_symmetric() {
        flags |= FLAG_SYMMETRIC;
    }
    if in_view.is_some() {
        flags |= FLAG_HAS_IN;
    }
    if comp_u.is_some() || comp_w.is_some() {
        flags |= FLAG_HAS_COMPRESSED;
    }
    if comp_chunked {
        flags |= FLAG_COMP_CHUNKED;
    }

    let mut head = [0u8; HEADER_LEN];
    head[0..8].copy_from_slice(&MAGIC);
    head[8..12].copy_from_slice(&VERSION.to_le_bytes());
    head[12..16].copy_from_slice(&ENDIAN_CHECK.to_le_bytes());
    head[16..24].copy_from_slice(&flags.to_le_bytes());
    head[24..32].copy_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    head[32..40].copy_from_slice(&(g.num_edges() as u64).to_le_bytes());
    head[40..44].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    let hsum = fnv1a64(&head[0..44]) as u32;
    head[44..48].copy_from_slice(&hsum.to_le_bytes());

    let write_all = || -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(&head)?;
        for e in &entries {
            out.write_all(&e.kind.to_le_bytes())?;
            out.write_all(&0u32.to_le_bytes())?;
            out.write_all(&e.offset.to_le_bytes())?;
            out.write_all(&e.len.to_le_bytes())?;
            out.write_all(&e.checksum.to_le_bytes())?;
        }
        let mut pos = table_end;
        const ZEROS: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];
        for (e, (_, bytes)) in entries.iter().zip(&sections) {
            let pad = e.offset as usize - pos;
            out.write_all(&ZEROS[..pad])?;
            out.write_all(bytes)?;
            pos = e.offset as usize + bytes.len();
        }
        out.flush()
    };
    write_all().map_err(|e| Error::io_at(path, e))
}

// --------------------------------------------------------------------------
// MappedGraph
// --------------------------------------------------------------------------

/// One direction's raw section pointers into the mapping.
#[derive(Clone, Copy)]
struct RawAdj {
    offsets: *const u64,
    targets: *const VertexId,
    /// Null when the file is unweighted.
    weights: *const u32,
}

/// A graph served directly from a memory-mapped `.jgr` file.
///
/// Implements the same access surface as [`Csr`] — degrees, neighbor
/// slices, weights — by reinterpreting the mapped sections in place, so
/// `open` does no per-edge work: a multi-GB graph opens in milliseconds and
/// pages fault in on first touch, which also makes graphs larger than RAM
/// usable via demand paging.
///
/// `W` must match the file: opening a weighted file as `MappedGraph<()>`
/// (or vice versa) is rejected, mirroring the text loaders' contract.
pub struct MappedGraph<W: Weight> {
    buf: MmapBuf,
    n: usize,
    m: usize,
    symmetric: bool,
    out: RawAdj,
    /// In-adjacency: `out` again for symmetric graphs, the transpose
    /// sections for directed graphs that carry them, absent otherwise.
    inn: Option<RawAdj>,
    sections: Vec<Section>,
    _weight: PhantomData<W>,
}

// SAFETY: all pointers target the immutable `buf` owned by the struct.
unsafe impl<W: Weight> Send for MappedGraph<W> {}
unsafe impl<W: Weight> Sync for MappedGraph<W> {}

impl<W: Weight> MappedGraph<W> {
    /// Maps `path` and validates the header and section table — O(sections),
    /// no per-edge work. See [`MappedGraph::verify`] for the full payload
    /// check.
    pub fn open(path: &Path) -> Result<Self, Error> {
        #[cfg(target_endian = "big")]
        {
            return Err(bad(
                path,
                "zero-copy containers are little-endian; this host is big-endian \
                 (convert to a text format instead)",
            ));
        }
        #[cfg(target_endian = "little")]
        {
            let buf = MmapBuf::open(path)?;
            Self::from_buf(buf, path)
        }
    }

    #[cfg(target_endian = "little")]
    fn from_buf(buf: MmapBuf, path: &Path) -> Result<Self, Error> {
        let bytes = buf.bytes();
        let (info, count) = parse_header(path, bytes)?;
        if info.weighted == W::IS_UNIT {
            return Err(bad(
                path,
                "weightedness of container does not match requested graph type",
            ));
        }
        let n = usize::try_from(info.n).map_err(|_| bad(path, "vertex count overflows usize"))?;
        let m = usize::try_from(info.m).map_err(|_| bad(path, "edge count overflows usize"))?;
        if n > VertexId::MAX as usize {
            return Err(bad(path, "vertex count exceeds the 32-bit id space"));
        }
        let table_end =
            HEADER_LEN.saturating_add((count as usize).saturating_mul(SECTION_ENTRY_LEN));
        if table_end > bytes.len() {
            return Err(bad(path, "truncated container (section table cut short)"));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let e = &bytes[at..at + SECTION_ENTRY_LEN];
            let s = Section {
                kind: u32::from_le_bytes(e[0..4].try_into().unwrap()),
                offset: u64::from_le_bytes(e[8..16].try_into().unwrap()),
                len: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                checksum: u64::from_le_bytes(e[24..32].try_into().unwrap()),
            };
            if !s.offset.is_multiple_of(SECTION_ALIGN as u64) {
                return Err(bad(path, format!("section {} is misaligned", s.kind)));
            }
            let end = s
                .offset
                .checked_add(s.len)
                .ok_or_else(|| bad(path, "section range overflows"))?;
            if end > bytes.len() as u64 {
                return Err(bad(
                    path,
                    format!("truncated container (section {} cut short)", s.kind),
                ));
            }
            sections.push(s);
        }
        let find = |k: u32| sections.iter().find(|s| s.kind == k);
        let expect = |k: u32, want_len: u64, what: &str| -> Result<*const u8, Error> {
            let s = find(k).ok_or_else(|| bad(path, format!("missing {what} section")))?;
            if s.len != want_len {
                return Err(bad(
                    path,
                    format!(
                        "{what} section has {} bytes, expected {want_len} (corrupt header?)",
                        s.len
                    ),
                ));
            }
            // SAFETY: offset+len bounds were checked above.
            Ok(unsafe { bytes.as_ptr().add(s.offset as usize) })
        };
        let offsets_len = (n as u64 + 1) * 8;
        let targets_len = m as u64 * 4;
        let out = RawAdj {
            offsets: expect(kind::OFFSETS, offsets_len, "offsets")? as *const u64,
            targets: expect(kind::TARGETS, targets_len, "targets")? as *const VertexId,
            weights: if info.weighted {
                expect(kind::WEIGHTS, targets_len, "weights")? as *const u32
            } else {
                std::ptr::null()
            },
        };
        let inn = if info.symmetric {
            Some(out)
        } else if info.has_in {
            Some(RawAdj {
                offsets: expect(kind::IN_OFFSETS, offsets_len, "in-offsets")? as *const u64,
                targets: expect(kind::IN_TARGETS, targets_len, "in-targets")? as *const VertexId,
                weights: if info.weighted {
                    expect(kind::IN_WEIGHTS, targets_len, "in-weights")? as *const u32
                } else {
                    std::ptr::null()
                },
            })
        } else {
            None
        };
        Ok(MappedGraph {
            buf,
            n,
            m,
            symmetric: info.symmetric,
            out,
            inn,
            sections,
            _weight: PhantomData,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the stored graph is symmetric.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Whether a dense (pull) traversal is possible: symmetric, or the file
    /// carries transpose sections.
    #[inline]
    pub fn has_in_view(&self) -> bool {
        self.inn.is_some()
    }

    /// Bytes of the mapping — the whole file. This is *address space*, not
    /// resident memory: untouched pages cost nothing.
    pub fn footprint_bytes(&self) -> usize {
        self.buf.len()
    }

    /// One direction's mapped offsets array (length `n + 1`).
    #[inline]
    fn adj_offsets(&self, adj: &RawAdj) -> &[u64] {
        // SAFETY: the section was validated to exactly (n+1)*8 bytes at
        // open; buf is owned by self and immutable.
        unsafe { std::slice::from_raw_parts(adj.offsets, self.n + 1) }
    }

    /// One direction's mapped flat targets array (length `m`).
    #[inline]
    fn adj_targets(&self, adj: &RawAdj) -> &[VertexId] {
        // SAFETY: the section was validated to exactly m*4 bytes at open.
        unsafe { std::slice::from_raw_parts(adj.targets, self.m) }
    }

    /// The mapped offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        self.adj_offsets(&self.out)
    }

    /// The mapped flat targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        self.adj_targets(&self.out)
    }

    /// The mapped flat weights array as stored (`u32`); empty when
    /// unweighted.
    #[inline]
    pub fn weights_u32(&self) -> &[u32] {
        if self.out.weights.is_null() {
            &[]
        } else {
            // SAFETY: as for `offsets`.
            unsafe { std::slice::from_raw_parts(self.out.weights, self.m) }
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let o = self.offsets();
        (o[v as usize + 1] - o[v as usize]) as usize
    }

    /// Out-neighbors of `v`, as a borrowed slice of the mapping.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let o = self.offsets();
        &self.targets()[o[v as usize] as usize..o[v as usize + 1] as usize]
    }

    /// Weights for the edge range `lo..hi`. Callers must have established
    /// `lo <= hi <= m` first (both traversal paths do, by slicing the
    /// targets section with safe bounds-checked indexing before this).
    #[inline]
    fn adj_weights(&self, adj: &RawAdj, lo: usize, hi: usize) -> &[u32] {
        if adj.weights.is_null() {
            &[]
        } else {
            debug_assert!(lo <= hi && hi <= self.m);
            // SAFETY: the weights section was validated to m entries at
            // open, and lo..hi lies within 0..m per the contract above.
            unsafe { std::slice::from_raw_parts(adj.weights.add(lo), hi - lo) }
        }
    }

    /// Visits each out-edge `(target, weight)` of `v`.
    #[inline]
    pub fn for_each_out<F: FnMut(VertexId, W)>(&self, v: VertexId, mut f: F) {
        let o = self.offsets();
        let (lo, hi) = (o[v as usize] as usize, o[v as usize + 1] as usize);
        let ts = &self.targets()[lo..hi];
        if W::IS_UNIT {
            for &t in ts {
                f(t, W::default());
            }
        } else {
            let ws = self.adj_weights(&self.out, lo, hi);
            for (&t, &w) in ts.iter().zip(ws) {
                f(t, W::from_u64(w as u64));
            }
        }
    }

    /// Visits out-edges of `v` until `f` returns `false`.
    #[inline]
    pub fn for_each_out_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        let o = self.offsets();
        let (lo, hi) = (o[v as usize] as usize, o[v as usize + 1] as usize);
        let ts = &self.targets()[lo..hi];
        if W::IS_UNIT {
            for &t in ts {
                if !f(t, W::default()) {
                    return;
                }
            }
        } else {
            let ws = self.adj_weights(&self.out, lo, hi);
            for (&t, &w) in ts.iter().zip(ws) {
                if !f(t, W::from_u64(w as u64)) {
                    return;
                }
            }
        }
    }

    /// Visits out-edges of `v` in the **local** edge range `lo..hi`
    /// (clamped to the degree) — the ranged access edgeMap uses to split a
    /// giant adjacency list across parallel chunk tasks.
    #[inline]
    pub fn for_each_out_range<F: FnMut(VertexId, W)>(
        &self,
        v: VertexId,
        lo: usize,
        hi: usize,
        f: F,
    ) {
        let adj = self.out;
        self.adj_range(&adj, v, lo, hi, f);
    }

    /// Visits in-edges of `v` in the **local** edge range `lo..hi`.
    ///
    /// # Panics
    /// If [`has_in_view`](Self::has_in_view) is `false`.
    #[inline]
    pub fn for_each_in_range<F: FnMut(VertexId, W)>(
        &self,
        v: VertexId,
        lo: usize,
        hi: usize,
        f: F,
    ) {
        let adj = *self.in_adj();
        self.adj_range(&adj, v, lo, hi, f);
    }

    #[inline]
    fn adj_range<F: FnMut(VertexId, W)>(
        &self,
        adj: &RawAdj,
        v: VertexId,
        lo_local: usize,
        hi_local: usize,
        mut f: F,
    ) {
        let o = self.adj_offsets(adj);
        let (base, end) = (o[v as usize] as usize, o[v as usize + 1] as usize);
        let lo = base.saturating_add(lo_local).min(end);
        let hi = base.saturating_add(hi_local).min(end).max(lo);
        let ts = &self.adj_targets(adj)[lo..hi];
        if W::IS_UNIT {
            for &t in ts {
                f(t, W::default());
            }
        } else {
            let ws = self.adj_weights(adj, lo, hi);
            for (&t, &w) in ts.iter().zip(ws) {
                f(t, W::from_u64(w as u64));
            }
        }
    }

    fn in_adj(&self) -> &RawAdj {
        self.inn
            .as_ref()
            .expect("dense edgeMap requires a symmetric graph or stored transpose sections")
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    /// If [`has_in_view`](Self::has_in_view) is `false`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let o = self.adj_offsets(self.in_adj());
        (o[v as usize + 1] - o[v as usize]) as usize
    }

    /// Visits in-edges `(source, weight)` of `v` until `f` returns `false`.
    ///
    /// # Panics
    /// If [`has_in_view`](Self::has_in_view) is `false`.
    #[inline]
    pub fn for_each_in_until<F: FnMut(VertexId, W) -> bool>(&self, v: VertexId, mut f: F) {
        let adj = *self.in_adj();
        let o = self.adj_offsets(&adj);
        let (lo, hi) = (o[v as usize] as usize, o[v as usize + 1] as usize);
        // Safe slicing, exactly as the out path: corrupt in-offsets (lo >
        // hi, or beyond m) panic instead of reading out of bounds.
        let ts = &self.adj_targets(&adj)[lo..hi];
        if W::IS_UNIT {
            for &t in ts {
                if !f(t, W::default()) {
                    return;
                }
            }
        } else {
            let ws = self.adj_weights(&adj, lo, hi);
            for (&t, &w) in ts.iter().zip(ws) {
                if !f(t, W::from_u64(w as u64)) {
                    return;
                }
            }
        }
    }

    /// Full payload validation: every known section's stored FNV-1a
    /// checksum, offsets monotonicity (out and in), and target ranges.
    /// O(file size) — this is the deliberate opposite of [`MappedGraph::open`]'s
    /// no-per-edge-work contract, for `convert verify=true` and tests.
    pub fn verify(&self, path: &Path) -> Result<(), Error> {
        let bytes = self.buf.bytes();
        for s in &self.sections {
            let payload = &bytes[s.offset as usize..(s.offset + s.len) as usize];
            if fnv1a64(payload) != s.checksum {
                return Err(bad(
                    path,
                    format!("section {} checksum mismatch (corrupt file)", s.kind),
                ));
            }
        }
        let check_adj = |offsets: &[u64], targets: &[VertexId], what: &str| -> Result<(), Error> {
            if offsets[0] != 0 || offsets[self.n] != self.m as u64 {
                return Err(bad(path, format!("{what} offsets do not span the edges")));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(bad(path, format!("{what} offsets are not monotone")));
            }
            if let Some(&t) = targets.iter().find(|&&t| t as usize >= self.n) {
                return Err(bad(path, format!("{what} target {t} out of range")));
            }
            Ok(())
        };
        check_adj(self.offsets(), self.targets(), "out")?;
        if !self.symmetric {
            if let Some(adj) = self.inn {
                check_adj(self.adj_offsets(&adj), self.adj_targets(&adj), "in")?;
            }
        }
        Ok(())
    }

    /// Materializes a heap [`Csr`] copy (used by `convert` when the
    /// destination is another format). Attaches a transpose when the file
    /// carried one, preserving the dense-traversal capability.
    ///
    /// The payload is re-validated while materializing (checksums are only
    /// checked by [`MappedGraph::verify`]), so a corrupt body surfaces as a
    /// typed parse error here, never a garbage graph.
    pub fn to_csr(&self) -> Result<Csr<W>, Error> {
        let weights: Vec<W> = if W::IS_UNIT {
            Vec::new()
        } else {
            self.weights_u32()
                .iter()
                .map(|&w| W::from_u64(w as u64))
                .collect()
        };
        let g = Csr::try_from_parts(
            self.offsets().to_vec(),
            self.targets().to_vec(),
            weights,
            self.symmetric,
        )
        .map_err(|msg| Error::parse(format!("corrupt container payload: {msg}")))?;
        Ok(if !self.symmetric && self.inn.is_some() {
            g.with_transpose()
        } else {
            g
        })
    }
}

impl<W: Weight> std::fmt::Debug for MappedGraph<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedGraph(n={}, m={}, symmetric={}, weighted={}, mapped={}B)",
            self.n,
            self.m,
            self.symmetric,
            !W::IS_UNIT,
            self.buf.len()
        )
    }
}

// --------------------------------------------------------------------------
// Compressed payload loading
// --------------------------------------------------------------------------

/// One decoded compressed-payload adjacency: vertex offsets into the byte
/// stream, per-vertex degrees, and the byte-coded edge data itself.
type CompParts = (Vec<u64>, Vec<u32>, Vec<u8>);

fn read_comp_parts(
    path: &Path,
    bytes: &[u8],
    sections: &[Section],
    kinds: [u32; 3],
    n: usize,
    what: &str,
) -> Result<CompParts, Error> {
    let find = |k: u32| -> Result<&Section, Error> {
        sections
            .iter()
            .find(|s| s.kind == k)
            .ok_or_else(|| bad(path, format!("missing {what} section (kind {k})")))
    };
    let o = find(kinds[0])?;
    let d = find(kinds[1])?;
    let b = find(kinds[2])?;
    if o.len != (n as u64 + 1) * 8 || d.len != n as u64 * 4 {
        return Err(bad(
            path,
            format!("{what} section lengths are inconsistent"),
        ));
    }
    let payload = |s: &Section| &bytes[s.offset as usize..(s.offset + s.len) as usize];
    let offsets: Vec<u64> = payload(o)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let degrees: Vec<u32> = payload(d)
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok((offsets, degrees, payload(b).to_vec()))
}

/// Chunk size of one compressed-payload direction: 0 (legacy unchunked)
/// when the META section is absent, its stored u32 otherwise.
fn comp_chunk_size(
    path: &Path,
    bytes: &[u8],
    sections: &[Section],
    meta_kind: u32,
) -> Result<u32, Error> {
    let Some(s) = sections.iter().find(|s| s.kind == meta_kind) else {
        return Ok(0);
    };
    if s.len != 8 {
        return Err(bad(
            path,
            format!("compressed-payload meta section has length {}", s.len),
        ));
    }
    let p = &bytes[s.offset as usize..s.offset as usize + 4];
    Ok(u32::from_le_bytes(p.try_into().unwrap()))
}

fn comp_sections(path: &Path) -> Result<(ContainerInfo, Vec<Section>, MmapBuf), Error> {
    let buf = MmapBuf::open(path)?;
    let (info, count) = parse_header(path, buf.bytes())?;
    if !info.has_compressed {
        return Err(bad(path, "container has no compressed payload sections"));
    }
    let bytes = buf.bytes();
    let table_end = HEADER_LEN + count as usize * SECTION_ENTRY_LEN;
    if table_end > bytes.len() {
        return Err(bad(path, "truncated container (section table cut short)"));
    }
    let mut sections = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        let e = &bytes[at..at + SECTION_ENTRY_LEN];
        let s = Section {
            kind: u32::from_le_bytes(e[0..4].try_into().unwrap()),
            offset: u64::from_le_bytes(e[8..16].try_into().unwrap()),
            len: u64::from_le_bytes(e[16..24].try_into().unwrap()),
            checksum: u64::from_le_bytes(e[24..32].try_into().unwrap()),
        };
        if s.offset
            .checked_add(s.len)
            .is_none_or(|end| end > bytes.len() as u64)
        {
            return Err(bad(path, "truncated container (section cut short)"));
        }
        sections.push(s);
    }
    Ok((info, sections, buf))
}

/// Loads the byte-compressed payload of an **unweighted** container,
/// skipping the CSR re-encode entirely (the blocks were encoded at convert
/// time and are copied verbatim).
pub fn read_compressed(path: &Path) -> Result<CompressedGraph, Error> {
    let (info, sections, buf) = comp_sections(path)?;
    if info.weighted {
        return Err(bad(
            path,
            "weightedness of container does not match requested graph type",
        ));
    }
    let n = info.n as usize;
    let bytes = buf.bytes();
    let (offsets, degrees, data) = read_comp_parts(
        path,
        bytes,
        &sections,
        [kind::COMP_OFFSETS, kind::COMP_DEGREES, kind::COMP_DATA],
        n,
        "compressed payload",
    )?;
    let corrupt = |what: &str, msg: String| bad(path, format!("corrupt {what}: {msg}"));
    let in_graph = if !info.symmetric && sections.iter().any(|s| s.kind == kind::COMP_IN_DATA) {
        let (o, d, b) = read_comp_parts(
            path,
            bytes,
            &sections,
            [
                kind::COMP_IN_OFFSETS,
                kind::COMP_IN_DEGREES,
                kind::COMP_IN_DATA,
            ],
            n,
            "compressed transpose payload",
        )?;
        let cs = comp_chunk_size(path, bytes, &sections, kind::COMP_IN_META)?;
        Some(Box::new(
            CompressedGraph::try_from_raw_parts(n, info.m as usize, o, d, b, false, cs, None)
                .map_err(|e| corrupt("compressed transpose payload", e))?,
        ))
    } else {
        None
    };
    let cs = comp_chunk_size(path, bytes, &sections, kind::COMP_META)?;
    CompressedGraph::try_from_raw_parts(
        n,
        info.m as usize,
        offsets,
        degrees,
        data,
        info.symmetric,
        cs,
        in_graph,
    )
    .map_err(|e| corrupt("compressed payload", e))
}

/// Loads the byte-compressed payload of a **weighted** container.
pub fn read_compressed_weighted(path: &Path) -> Result<CompressedWGraph, Error> {
    let (info, sections, buf) = comp_sections(path)?;
    if !info.weighted {
        return Err(bad(
            path,
            "weightedness of container does not match requested graph type",
        ));
    }
    let n = info.n as usize;
    let bytes = buf.bytes();
    let (offsets, degrees, data) = read_comp_parts(
        path,
        bytes,
        &sections,
        [kind::COMP_OFFSETS, kind::COMP_DEGREES, kind::COMP_DATA],
        n,
        "compressed payload",
    )?;
    let corrupt = |what: &str, msg: String| bad(path, format!("corrupt {what}: {msg}"));
    let in_graph = if !info.symmetric && sections.iter().any(|s| s.kind == kind::COMP_IN_DATA) {
        let (o, d, b) = read_comp_parts(
            path,
            bytes,
            &sections,
            [
                kind::COMP_IN_OFFSETS,
                kind::COMP_IN_DEGREES,
                kind::COMP_IN_DATA,
            ],
            n,
            "compressed transpose payload",
        )?;
        let cs = comp_chunk_size(path, bytes, &sections, kind::COMP_IN_META)?;
        Some(Box::new(
            CompressedWGraph::try_from_raw_parts(n, info.m as usize, o, d, b, false, cs, None)
                .map_err(|e| corrupt("compressed transpose payload", e))?,
        ))
    } else {
        None
    };
    let cs = comp_chunk_size(path, bytes, &sections, kind::COMP_META)?;
    CompressedWGraph::try_from_raw_parts(
        n,
        info.m as usize,
        offsets,
        degrees,
        data,
        info.symmetric,
        cs,
        in_graph,
    )
    .map_err(|e| corrupt("compressed payload", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, rmat, RmatParams};
    use crate::transform::assign_weights;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("julienne-jgr-{name}-{}.jgr", std::process::id()))
    }

    fn same_as_csr<W: Weight>(g: &Csr<W>, mg: &MappedGraph<W>) {
        assert_eq!(g.num_vertices(), mg.num_vertices());
        assert_eq!(g.num_edges(), mg.num_edges());
        assert_eq!(g.is_symmetric(), mg.is_symmetric());
        assert_eq!(g.offsets(), mg.offsets());
        assert_eq!(g.targets(), mg.targets());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(g.neighbors(v), mg.neighbors(v));
            let mut want = Vec::new();
            for (u, w) in g.edges_of(v) {
                want.push((u, w));
            }
            let mut got = Vec::new();
            mg.for_each_out(v, |u, w| got.push((u, w)));
            assert_eq!(want, got, "edges of {v}");
        }
    }

    #[test]
    fn roundtrip_unweighted_symmetric() {
        let g = erdos_renyi(300, 2_000, 7, true);
        let p = tmp("sym");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        mg.verify(&p).unwrap();
        same_as_csr(&g, &mg);
        assert!(mg.has_in_view());
        assert_eq!(mg.in_degree(0), mg.degree(0));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn roundtrip_weighted_directed_with_transpose() {
        let g =
            assign_weights(&rmat(8, 8, RmatParams::default(), 3, false), 1, 50, 5).with_transpose();
        let p = tmp("wdir");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<u32> = MappedGraph::open(&p).unwrap();
        mg.verify(&p).unwrap();
        same_as_csr(&g, &mg);
        assert!(mg.has_in_view());
        // In-edges match the CSR transpose.
        let t = g.in_view().unwrap();
        for v in (0..g.num_vertices() as VertexId).step_by(17) {
            let mut want: Vec<(VertexId, u32)> = t.edges_of(v).collect();
            let mut got = Vec::new();
            mg.for_each_in_until(v, |u, w| {
                got.push((u, w));
                true
            });
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "in-edges of {v}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn directed_without_transpose_has_no_in_view() {
        let g = rmat(7, 8, RmatParams::default(), 3, false);
        let p = tmp("dir");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        assert!(!mg.has_in_view());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn materialize_round_trips() {
        let g = assign_weights(&erdos_renyi(200, 1_500, 2, true), 1, 9, 3);
        let p = tmp("mat");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mg: MappedGraph<u32> = MappedGraph::open(&p).unwrap();
        let h = mg.to_csr().unwrap();
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.targets(), h.targets());
        assert_eq!(g.weights(), h.weights());
        assert_eq!(g.is_symmetric(), h.is_symmetric());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn compressed_payload_round_trips() {
        let g = erdos_renyi(250, 1_800, 11, true);
        let p = tmp("comp");
        write(
            &g,
            &p,
            &ContainerWriteOptions {
                compressed_payload: true,
            },
        )
        .unwrap();
        assert!(peek(&p).unwrap().has_compressed);
        let c = read_compressed(&p).unwrap();
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        let direct = CompressedGraph::from_csr(&g);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(c.neighbors_vec(v), direct.neighbors_vec(v), "vertex {v}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn weighted_compressed_payload_round_trips() {
        let g = assign_weights(&erdos_renyi(180, 1_200, 4, true), 1, 60, 7);
        let p = tmp("wcomp");
        write(
            &g,
            &p,
            &ContainerWriteOptions {
                compressed_payload: true,
            },
        )
        .unwrap();
        let c = read_compressed_weighted(&p).unwrap();
        let direct = CompressedWGraph::from_csr(&g);
        for v in 0..g.num_vertices() as VertexId {
            let mut a = Vec::new();
            c.for_each_edge(v, |u, w| a.push((u, w)));
            let mut b = Vec::new();
            direct.for_each_edge(v, |u, w| b.push((u, w)));
            assert_eq!(a, b, "vertex {v}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_and_tiny_graphs() {
        for (name, n, edges) in [
            ("empty", 0usize, vec![]),
            ("single", 1, vec![]),
            ("one-edge", 2, vec![(0u32, 1u32)]),
        ] {
            let g = crate::builder::from_pairs(n, &edges);
            let p = tmp(name);
            write(&g, &p, &ContainerWriteOptions::default()).unwrap();
            let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
            mg.verify(&p).unwrap();
            same_as_csr(&g, &mg);
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn weightedness_mismatch_rejected_both_ways() {
        let g = erdos_renyi(50, 300, 1, true);
        let p = tmp("mismatch");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let err = MappedGraph::<u32>::open(&p).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("weightedness"), "{err}");
        let wg = assign_weights(&g, 1, 5, 2);
        write(&wg, &p, &ContainerWriteOptions::default()).unwrap();
        let err = MappedGraph::<()>::open(&p).unwrap_err();
        assert!(err.to_string().contains("weightedness"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_files_are_typed_parse_errors() {
        let g = erdos_renyi(100, 600, 9, true);
        let p = tmp("corrupt");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let pristine = std::fs::read(&p).unwrap();

        // Bad magic.
        let mut bytes = pristine.clone();
        bytes[0] = b'X';
        std::fs::write(&p, &bytes).unwrap();
        let err = MappedGraph::<()>::open(&p).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("magic"), "{err}");

        // Wrong version.
        let mut bytes = pristine.clone();
        bytes[8] = 99;
        // Header checksum covers the version, so recompute it to isolate
        // the version check.
        let sum = fnv1a64(&bytes[0..44]) as u32;
        bytes[44..48].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = MappedGraph::<()>::open(&p).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Flipped header byte without fixing the checksum.
        let mut bytes = pristine.clone();
        bytes[25] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let err = MappedGraph::<()>::open(&p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation mid-section.
        std::fs::write(&p, &pristine[..pristine.len() / 2]).unwrap();
        let err = MappedGraph::<()>::open(&p).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // A flipped payload byte opens fine (open is O(sections)) but fails
        // verify() via the section checksum.
        let mut bytes = pristine.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let mg = MappedGraph::<()>::open(&p).unwrap();
        let err = mg.verify(&p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        std::fs::remove_file(&p).ok();
    }

    /// Byte range of a section's payload within a serialized container.
    fn section_range(bytes: &[u8], want_kind: u32) -> std::ops::Range<usize> {
        let count = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let kind = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if kind == want_kind {
                let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
                return off..off + len;
            }
        }
        panic!("section {want_kind} not found");
    }

    #[test]
    fn corrupt_in_offsets_panic_instead_of_reading_out_of_bounds() {
        let g = rmat(7, 8, RmatParams::default(), 13, false).with_transpose();
        let p = tmp("badin");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let r = section_range(&bytes, kind::IN_OFFSETS);
        // First in-offset far beyond m. Open still succeeds (payload
        // checksums are verify-on-demand); the pull traversal must hit a
        // bounds-check panic, never an out-of-bounds read.
        bytes[r.start..r.start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        assert!(mg.verify(&p).is_err());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mg.for_each_in_until(0, |_, _| true);
        }));
        assert!(res.is_err(), "corrupt in-offsets must panic, not read OOB");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_payload_makes_to_csr_a_parse_error() {
        let g = erdos_renyi(120, 800, 21, true);
        let p = tmp("badcsr");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let r = section_range(&bytes, kind::OFFSETS);
        for b in &mut bytes[r] {
            *b = 0xEE;
        }
        std::fs::write(&p, &bytes).unwrap();
        // Header is intact, so open (O(sections)) succeeds; materializing
        // must surface a typed error, not a garbage graph or debug-only
        // assert.
        let mg: MappedGraph<()> = MappedGraph::open(&p).unwrap();
        let err = mg.to_csr().unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(
            err.to_string().contains("corrupt container payload"),
            "{err}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn peek_reads_header_only() {
        let g = assign_weights(&erdos_renyi(64, 400, 3, true), 1, 7, 1);
        let p = tmp("peek");
        write(&g, &p, &ContainerWriteOptions::default()).unwrap();
        let info = peek(&p).unwrap();
        assert_eq!(info.version, VERSION);
        assert!(info.weighted);
        assert!(info.symmetric);
        assert!(!info.has_compressed);
        assert_eq!(info.n, 64);
        assert_eq!(info.m, g.num_edges() as u64);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sections_are_64_byte_aligned() {
        let g = erdos_renyi(100, 700, 5, true);
        let p = tmp("align");
        write(
            &g,
            &p,
            &ContainerWriteOptions {
                compressed_payload: true,
            },
        )
        .unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let count = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            assert_eq!(offset % 64, 0, "section {i}");
        }
        std::fs::remove_file(&p).ok();
    }
}
