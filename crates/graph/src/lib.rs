//! Graph substrate for the Julienne reproduction.
//!
//! Provides the Ligra/Ligra+-equivalent graph layer the paper builds on:
//!
//! * [`csr`] — compressed-sparse-row graphs, generic over edge weights
//!   (`()` for unweighted, `u32` for the paper's integral weights),
//! * [`builder`] — edge-list ingestion (sort, dedup, self-loop removal),
//! * [`transform`] — symmetrisation, transposition, weight assignment,
//! * [`generators`] — the synthetic workloads standing in for the paper's
//!   real-world inputs (see DESIGN.md §3),
//! * [`io`] — the unified [`io::GraphIo`] loading surface: Ligra adjacency
//!   text, edge lists, DIMACS `.gr`, METIS, a legacy binary format, and the
//!   `.jgr` container, with format auto-detection,
//! * [`container`] — the versioned zero-copy `.jgr` container and the
//!   memory-mapped [`container::MappedGraph`] that serves graphs straight
//!   from the mapped file,
//! * [`mmap`] — the read-only file-mapping primitive under the container,
//! * [`compress`] — Ligra+-style byte-code delta compression of adjacency
//!   lists,
//! * [`decode`] — the table-driven, fail-closed varint decoder under the
//!   compressed backend (first-byte code table + word-at-a-time
//!   continuation scan),
//! * [`packed`] — mutable-adjacency graphs supporting `edgeMapFilter`'s
//!   `Pack` option (needed by approximate set cover).

pub mod builder;
pub mod compress;
pub mod container;
pub mod csr;
pub mod decode;
pub mod generators;
pub mod io;
pub mod mmap;
pub mod packed;
pub mod transform;

pub use container::MappedGraph;
pub use csr::{Csr, Graph, WGraph, Weight};

/// Vertex identifier. 32 bits suffice for all laptop-scale inputs and halve
/// the memory traffic of the hot loops relative to `usize`.
pub type VertexId = u32;
