//! Graph substrate for the Julienne reproduction.
//!
//! Provides the Ligra/Ligra+-equivalent graph layer the paper builds on:
//!
//! * [`csr`] — compressed-sparse-row graphs, generic over edge weights
//!   (`()` for unweighted, `u32` for the paper's integral weights),
//! * [`builder`] — edge-list ingestion (sort, dedup, self-loop removal),
//! * [`transform`] — symmetrisation, transposition, weight assignment,
//! * [`generators`] — the synthetic workloads standing in for the paper's
//!   real-world inputs (see DESIGN.md §3),
//! * [`io`] — Ligra adjacency text format, edge lists, DIMACS `.gr`, and a
//!   fast binary format,
//! * [`compress`] — Ligra+-style byte-code delta compression of adjacency
//!   lists,
//! * [`packed`] — mutable-adjacency graphs supporting `edgeMapFilter`'s
//!   `Pack` option (needed by approximate set cover).

pub mod builder;
pub mod compress;
pub mod csr;
pub mod generators;
pub mod io;
pub mod packed;
pub mod transform;

pub use csr::{Csr, Graph, WGraph, Weight};

/// Vertex identifier. 32 bits suffice for all laptop-scale inputs and halve
/// the memory traffic of the hot loops relative to `usize`.
pub type VertexId = u32;
