//! Read-only memory mapping of graph container files.
//!
//! [`MmapBuf`] is the ownership primitive under [`crate::container::MappedGraph`]:
//! it maps a file `PROT_READ`/`MAP_PRIVATE` on unix targets (no external
//! mmap crate — the two syscalls are declared directly against libc) and
//! falls back to an 8-byte-aligned heap read elsewhere, so the container
//! layer is portable while the fast path stays zero-copy.
//!
//! The mapping is immutable and page-aligned; since every container section
//! starts on a 64-byte boundary *within* the file, a section's absolute
//! address is at least 8-byte aligned and may be reinterpreted as `&[u64]`
//! or `&[u32]` without copying.

use julienne_primitives::error::Error;
use std::fs::File;
use std::path::Path;

/// An immutable byte buffer backed by a memory-mapped file (unix) or an
/// aligned heap copy (other targets / explicit fallback).
pub struct MmapBuf {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    /// A live `mmap(2)` region; unmapped on drop.
    #[cfg(unix)]
    Mapped,
    /// Heap storage in `u64` units so the base pointer is 8-byte aligned.
    Heap(#[allow(dead_code)] Vec<u64>),
}

// SAFETY: the buffer is immutable for its whole lifetime — the mapping is
// PROT_READ and the heap variant is never written after construction — so
// shared references may cross threads freely.
unsafe impl Send for MmapBuf {}
unsafe impl Sync for MmapBuf {}

#[cfg(unix)]
mod sys {
    //! Minimal libc surface for read-only file mapping (Linux/macOS ABI).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

impl MmapBuf {
    /// Maps `path` read-only. On unix this is a true `mmap` — the call does
    /// no I/O beyond `open`/`fstat`, and pages fault in on first access, so
    /// opening a multi-GB file costs microseconds and graphs larger than
    /// RAM remain loadable. Elsewhere the whole file is read into aligned
    /// heap memory (correct, not zero-copy).
    pub fn open(path: &Path) -> Result<MmapBuf, Error> {
        let file = File::open(path).map_err(|e| Error::io_at(path, e))?;
        let len = file
            .metadata()
            .map_err(|e| Error::io_at(path, e))?
            .len()
            .try_into()
            .map_err(|_| Error::parse("file too large for this address space").with_path(path))?;
        Self::from_file(&file, len, path)
    }

    #[cfg(unix)]
    fn from_file(file: &File, len: usize, path: &Path) -> Result<MmapBuf, Error> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap rejects zero-length maps; an empty buffer needs no backing.
            return Ok(MmapBuf {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                backing: Backing::Heap(Vec::new()),
            });
        }
        // SAFETY: fd is a valid open file, len is its exact size, and the
        // requested protection is read-only; the kernel picks the address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(Error::io_at(path, std::io::Error::last_os_error()));
        }
        Ok(MmapBuf {
            ptr: ptr as *const u8,
            len,
            backing: Backing::Mapped,
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, len: usize, path: &Path) -> Result<MmapBuf, Error> {
        let mut file = file;
        Self::read_aligned(&mut file, len, path)
    }

    /// Reads the whole file into 8-byte-aligned heap memory — the portable
    /// fallback; also useful in tests to force the non-mmap path.
    #[allow(dead_code)]
    pub(crate) fn read_fallback(path: &Path) -> Result<MmapBuf, Error> {
        let mut file = File::open(path).map_err(|e| Error::io_at(path, e))?;
        let len = file
            .metadata()
            .map_err(|e| Error::io_at(path, e))?
            .len()
            .try_into()
            .map_err(|_| Error::parse("file too large for this address space").with_path(path))?;
        Self::read_aligned(&mut file, len, path)
    }

    fn read_aligned(file: &mut File, len: usize, path: &Path) -> Result<MmapBuf, Error> {
        use std::io::Read as _;
        let words = len.div_ceil(8);
        let mut storage: Vec<u64> = vec![0; words];
        // SAFETY: the Vec owns `words * 8 >= len` initialized bytes.
        let dst = unsafe { std::slice::from_raw_parts_mut(storage.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst).map_err(|e| Error::io_at(path, e))?;
        Ok(MmapBuf {
            ptr: storage.as_ptr() as *const u8,
            len,
            backing: Backing::Heap(storage),
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping (or heap buffer) owned
        // by `backing` for as long as `self` exists.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for MmapBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.backing {
            #[cfg(unix)]
            Backing::Mapped => "mapped",
            Backing::Heap(_) => "heap",
        };
        write!(f, "MmapBuf({} bytes, {kind})", self.len)
    }
}

impl Drop for MmapBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if matches!(self.backing, Backing::Mapped) {
            // SAFETY: ptr/len are exactly what mmap returned; the region is
            // unmapped once, here.
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("julienne-mmap-{name}-{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic");
        std::fs::write(&p, b"hello mapped world").unwrap();
        let m = MmapBuf::open(&p).unwrap();
        assert_eq!(m.bytes(), b"hello mapped world");
        assert_eq!(m.len(), 18);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_buffer() {
        let p = tmp("empty");
        std::fs::write(&p, b"").unwrap();
        let m = MmapBuf::open(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), b"");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let p = tmp("nope-does-not-exist");
        let err = MmapBuf::open(&p).unwrap_err();
        assert_eq!(err.code(), "io");
        assert!(err.to_string().contains("nope-does-not-exist"));
    }

    #[test]
    fn fallback_matches_mmap() {
        let p = tmp("fallback");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&p, &data).unwrap();
        let a = MmapBuf::open(&p).unwrap();
        let b = MmapBuf::read_fallback(&p).unwrap();
        assert_eq!(a.bytes(), b.bytes());
        // The fallback base pointer is 8-byte aligned, like a page-aligned map.
        assert_eq!(b.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&p).ok();
    }
}
