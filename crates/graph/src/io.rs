//! Graph I/O: Ligra adjacency text format, edge lists, DIMACS `.gr`, and a
//! fast length-prefixed binary format.
//!
//! Every reader and writer returns the workspace [`Error`] enum: OS-level
//! failures surface as [`Error::Io`] with the path attached, malformed
//! content as [`Error::Parse`] with the path and (for line-oriented
//! formats) the 1-based line of the offending record. Callers — the CLI,
//! the query server — render or classify these without re-parsing strings.

use crate::builder::EdgeList;
use crate::csr::{Csr, Weight};
use crate::VertexId;
use bytes::{Buf, BufMut};
use julienne_primitives::error::Error;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write as _};
use std::path::Path;

/// A line source that tracks the 1-based line number for error positioning.
struct Lines<'p> {
    inner: io::Lines<BufReader<File>>,
    path: &'p Path,
    lineno: usize,
}

impl<'p> Lines<'p> {
    fn open(path: &'p Path) -> Result<Self, Error> {
        let file = File::open(path).map_err(|e| Error::io_at(path, e))?;
        Ok(Lines {
            inner: BufReader::new(file).lines(),
            path,
            lineno: 0,
        })
    }

    /// The next line, or a positioned parse error naming `what` was missing.
    fn next(&mut self, what: &str) -> Result<String, Error> {
        self.lineno += 1;
        match self.inner.next() {
            None => Err(Error::parse_at(
                self.path,
                self.lineno,
                format!("unexpected end of file (expected {what})"),
            )),
            Some(Err(e)) => Err(Error::io_at(self.path, e)),
            Some(Ok(s)) => Ok(s),
        }
    }

    /// A parse error positioned at the line most recently read.
    fn bad(&self, msg: impl Into<String>) -> Error {
        Error::parse_at(self.path, self.lineno, msg)
    }
}

/// Writes `g` in Ligra's `AdjacencyGraph` / `WeightedAdjacencyGraph` text
/// format.
pub fn write_adjacency_graph<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        if W::IS_UNIT {
            writeln!(out, "AdjacencyGraph")?;
        } else {
            writeln!(out, "WeightedAdjacencyGraph")?;
        }
        writeln!(out, "{}", g.num_vertices())?;
        writeln!(out, "{}", g.num_edges())?;
        for v in 0..g.num_vertices() {
            writeln!(out, "{}", g.offsets()[v])?;
        }
        for &t in g.targets() {
            writeln!(out, "{t}")?;
        }
        if !W::IS_UNIT {
            for &w in g.weights() {
                writeln!(out, "{}", w.to_u64())?;
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a Ligra `AdjacencyGraph` / `WeightedAdjacencyGraph` text file.
pub fn read_adjacency_graph<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let mut src = Lines::open(path)?;
    let header = src.next("header")?;
    let weighted = match header.trim() {
        "AdjacencyGraph" => false,
        "WeightedAdjacencyGraph" => true,
        other => return Err(src.bad(format!("unknown header {other:?}"))),
    };
    if weighted == W::IS_UNIT {
        return Err(src.bad("weightedness of file does not match requested graph type"));
    }
    let n: usize = {
        let s = src.next("vertex count")?;
        s.trim()
            .parse()
            .map_err(|e| src.bad(format!("vertex count: {e}")))?
    };
    let m: usize = {
        let s = src.next("edge count")?;
        s.trim()
            .parse()
            .map_err(|e| src.bad(format!("edge count: {e}")))?
    };
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..n {
        let s = src.next("offset")?;
        offsets.push(
            s.trim()
                .parse::<u64>()
                .map_err(|e| src.bad(format!("offset: {e}")))?,
        );
    }
    offsets.push(m as u64);
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let s = src.next("edge")?;
        targets.push(
            s.trim()
                .parse::<VertexId>()
                .map_err(|e| src.bad(format!("edge target: {e}")))?,
        );
    }
    let mut weights = Vec::with_capacity(if weighted { m } else { 0 });
    if weighted {
        for _ in 0..m {
            let s = src.next("weight")?;
            let w: u64 = s
                .trim()
                .parse()
                .map_err(|e| src.bad(format!("weight: {e}")))?;
            weights.push(W::from_u64(w));
        }
    }
    Ok(Csr::from_parts(offsets, targets, weights, false))
}

/// Writes a whitespace edge list (`u v` or `u v w` per line).
pub fn write_edge_list<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        for u in 0..g.num_vertices() as VertexId {
            for (v, w) in g.edges_of(u) {
                if W::IS_UNIT {
                    writeln!(out, "{u} {v}")?;
                } else {
                    writeln!(out, "{u} {v} {}", w.to_u64())?;
                }
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a whitespace edge list; lines starting with `#` or `%` are
/// comments. `n` is inferred as `1 + max id` unless given.
///
/// Errors with [`Error::Parse`] if the file contains no edges and `n` was
/// not supplied (there is no defensible vertex count to infer — the old
/// behaviour silently produced a bogus 1-vertex graph), or if any endpoint
/// is `>= n` for a user-supplied `n` (those edges previously survived until
/// an out-of-bounds index deep inside CSR construction).
pub fn read_edge_list<W: Weight>(
    path: &Path,
    n: Option<usize>,
    symmetric: bool,
) -> Result<Csr<W>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut edges: Vec<(VertexId, VertexId, W)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let bad = || Error::parse_at(path, lineno + 1, format!("bad edge line: {line:?}"));
        let u: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w = if W::IS_UNIT {
            W::default()
        } else {
            let raw: u64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            W::from_u64(raw)
        };
        if let Some(n) = n {
            if u as usize >= n || v as usize >= n {
                return Err(Error::parse_at(
                    path,
                    lineno + 1,
                    format!("edge ({u}, {v}) references a vertex >= n = {n}"),
                ));
            }
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() && n.is_none() {
        return Err(Error::Parse {
            path: Some(path.to_path_buf()),
            line: None,
            msg: "file contains no edges; pass an explicit vertex count to load an \
                  edgeless graph"
                .to_string(),
        });
    }
    let n = n.unwrap_or(max_id as usize + 1);
    let mut el = EdgeList::new(n);
    el.edges = edges;
    Ok(if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    })
}

/// Writes a DIMACS shortest-path challenge `.gr` file (1-indexed, weighted).
pub fn write_dimacs(g: &Csr<u32>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "c generated by julienne-graph")?;
        writeln!(out, "p sp {} {}", g.num_vertices(), g.num_edges())?;
        for u in 0..g.num_vertices() as VertexId {
            for (v, w) in g.edges_of(u) {
                writeln!(out, "a {} {} {w}", u + 1, v + 1)?;
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a DIMACS `.gr` file.
pub fn read_dimacs(path: &Path) -> Result<Csr<u32>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut n = 0usize;
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        let bad = |msg: &str| Error::parse_at(path, lineno + 1, msg);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("c") | None => {}
            Some("p") => {
                let _sp = it.next();
                n = it
                    .next()
                    .ok_or_else(|| bad("p line is missing the vertex count"))?
                    .parse()
                    .map_err(|_| bad("p line has a non-numeric vertex count"))?;
            }
            Some("a") => {
                let u: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its tail"))?
                    .parse()
                    .map_err(|_| bad("arc tail is not a number"))?;
                let v: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its head"))?
                    .parse()
                    .map_err(|_| bad("arc head is not a number"))?;
                let w: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its weight"))?
                    .parse()
                    .map_err(|_| bad("arc weight is not a number"))?;
                if u == 0 || v == 0 {
                    return Err(bad("DIMACS ids are 1-indexed"));
                }
                edges.push((u - 1, v - 1, w));
            }
            Some(_) => {}
        }
    }
    let mut el = EdgeList::new(n);
    el.edges = edges;
    Ok(el.build(false))
}

/// Writes a METIS graph file (1-indexed adjacency lines; header
/// `n m [fmt]`, where undirected edges are listed from both endpoints).
/// Requires a symmetric graph; weighted graphs use fmt `001` (edge
/// weights).
pub fn write_metis<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    if !g.is_symmetric() {
        return Err(Error::input(
            "METIS files describe undirected graphs; symmetrize first",
        ));
    }
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        let m_und = g.num_edges() / 2;
        if W::IS_UNIT {
            writeln!(out, "{} {}", g.num_vertices(), m_und)?;
        } else {
            writeln!(out, "{} {} 001", g.num_vertices(), m_und)?;
        }
        for v in 0..g.num_vertices() as VertexId {
            let mut first = true;
            for (u, w) in g.edges_of(v) {
                if !first {
                    write!(out, " ")?;
                }
                first = false;
                if W::IS_UNIT {
                    write!(out, "{}", u + 1)?;
                } else {
                    write!(out, "{} {}", u + 1, w.to_u64())?;
                }
            }
            writeln!(out)?;
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a METIS graph file (plain or `001` edge-weighted).
pub fn read_metis<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut header: Option<(usize, usize, bool)> = None;
    let mut el = EdgeList::new(0);
    let mut v = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        if line.trim_start().starts_with('%') {
            continue; // Comment lines start with '%'.
        }
        let bad = |msg: &str| Error::parse_at(path, lineno + 1, msg);
        let Some((n, _m_und, weighted)) = header else {
            let mut hp = line.split_whitespace();
            let n: usize = hp
                .next()
                .ok_or_else(|| bad("header is missing the vertex count"))?
                .parse()
                .map_err(|_| bad("header vertex count is not a number"))?;
            let m_und: usize = hp
                .next()
                .ok_or_else(|| bad("header is missing the edge count"))?
                .parse()
                .map_err(|_| bad("header edge count is not a number"))?;
            let fmt = hp.next().unwrap_or("0");
            let weighted = fmt.ends_with('1');
            if weighted == W::IS_UNIT {
                return Err(bad("weightedness of METIS file does not match graph type"));
            }
            header = Some((n, m_und, weighted));
            el = EdgeList::new(n);
            continue;
        };
        if v >= n {
            break;
        }
        let mut it = line.split_whitespace();
        while let Some(tok) = it.next() {
            let u: usize = tok
                .parse()
                .map_err(|_| bad("neighbor id is not a number"))?;
            if u == 0 || u > n {
                return Err(bad("METIS ids are 1-indexed and ≤ n"));
            }
            let w = if weighted {
                let raw: u64 = it
                    .next()
                    .ok_or_else(|| bad("missing edge weight"))?
                    .parse()
                    .map_err(|_| bad("edge weight is not a number"))?;
                W::from_u64(raw)
            } else {
                W::default()
            };
            el.push(v as VertexId, (u - 1) as VertexId, w);
        }
        v += 1;
    }
    let Some((_n, m_und, _)) = header else {
        return Err(Error::Parse {
            path: Some(path.to_path_buf()),
            line: None,
            msg: "empty file".to_string(),
        });
    };
    let g = el.build(true);
    // Tolerate duplicate/self-loop cleanup shrinking the count.
    if g.num_edges() > 2 * m_und {
        return Err(Error::parse("more edges than the header promised").with_path(path));
    }
    Ok(g)
}

const BINARY_MAGIC: u64 = 0x4A55_4C49_454E_4E45; // "JULIENNE"

/// Writes the fast binary format (little-endian, length-prefixed arrays).
pub fn write_binary<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let mut buf: Vec<u8> = Vec::with_capacity(32 + 8 * g.num_vertices() + 4 * g.num_edges());
    buf.put_u64_le(BINARY_MAGIC);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    buf.put_u8(u8::from(g.is_symmetric()));
    buf.put_u8(u8::from(!W::IS_UNIT));
    for &o in g.offsets() {
        buf.put_u64_le(o);
    }
    for &t in g.targets() {
        buf.put_u32_le(t);
    }
    if !W::IS_UNIT {
        for &w in g.weights() {
            buf.put_u64_le(w.to_u64());
        }
    }
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&buf)?;
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads the fast binary format.
pub fn read_binary<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| Error::io_at(path, e))?;
    let mut buf: &[u8] = &raw;
    let bad = |msg: &str| Error::parse(msg).with_path(path);
    if buf.remaining() < 26 || buf.get_u64_le() != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    let symmetric = buf.get_u8() != 0;
    let weighted = buf.get_u8() != 0;
    if weighted == W::IS_UNIT {
        return Err(bad("weightedness mismatch"));
    }
    let need = 8 * (n + 1) + 4 * m + if weighted { 8 * m } else { 0 };
    if buf.remaining() < need {
        return Err(bad("truncated file"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le());
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(buf.get_u32_le());
    }
    let mut weights = Vec::with_capacity(if weighted { m } else { 0 });
    if weighted {
        for _ in 0..m {
            weights.push(W::from_u64(buf.get_u64_le()));
        }
    }
    Ok(Csr::from_parts(offsets, targets, weights, symmetric))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::transform::assign_weights;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("julienne-io-test-{name}-{}", std::process::id()));
        p
    }

    fn same_graph<W: Weight>(a: &Csr<W>, b: &Csr<W>) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn adjacency_roundtrip_unweighted() {
        let g = erdos_renyi(200, 1000, 1, false);
        let p = tmp("adj");
        write_adjacency_graph(&g, &p).unwrap();
        let h: Csr<()> = read_adjacency_graph(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn adjacency_roundtrip_weighted() {
        let g = assign_weights(&erdos_renyi(100, 500, 2, false), 1, 50, 3);
        let p = tmp("wadj");
        write_adjacency_graph(&g, &p).unwrap();
        let h: Csr<u32> = read_adjacency_graph(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = erdos_renyi(150, 700, 4, false);
        let p = tmp("el");
        write_edge_list(&g, &p).unwrap();
        let h: Csr<()> = read_edge_list(&p, Some(150), false).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = assign_weights(&erdos_renyi(80, 400, 5, false), 1, 1000, 6);
        let p = tmp("gr");
        write_dimacs(&g, &p).unwrap();
        let h = read_dimacs(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn metis_roundtrip_unweighted_and_weighted() {
        let g = erdos_renyi(150, 900, 3, true);
        let p = tmp("metis");
        write_metis(&g, &p).unwrap();
        let h: Csr<()> = read_metis(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(&p).ok();

        let wg = assign_weights(&g, 1, 50, 4);
        let pw = tmp("wmetis");
        write_metis(&wg, &pw).unwrap();
        let hw: Csr<u32> = read_metis(&pw).unwrap();
        same_graph(&wg, &hw);
        std::fs::remove_file(pw).ok();
    }

    #[test]
    fn metis_rejects_directed_and_mismatch() {
        let directed = erdos_renyi(20, 60, 1, false);
        let err = write_metis(&directed, &tmp("md")).unwrap_err();
        assert!(matches!(err, Error::Input(_)), "{err:?}");
        let g = erdos_renyi(20, 60, 1, true);
        let p = tmp("mm");
        write_metis(&g, &p).unwrap();
        // Weighted read of a plain file is a positioned parse error.
        let err = read_metis::<u32>(&p).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(1), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_roundtrip_both() {
        let g = erdos_renyi(300, 2000, 7, true);
        let p = tmp("bin");
        write_binary(&g, &p).unwrap();
        let h: Csr<()> = read_binary(&p).unwrap();
        same_graph(&g, &h);
        assert!(h.is_symmetric());
        std::fs::remove_file(&p).ok();

        let gw = assign_weights(&erdos_renyi(300, 2000, 8, false), 1, 9, 9);
        let pw = tmp("binw");
        write_binary(&gw, &pw).unwrap();
        let hw: Csr<u32> = read_binary(&pw).unwrap();
        same_graph(&gw, &hw);
        std::fs::remove_file(pw).ok();
    }

    #[test]
    fn weightedness_mismatch_rejected() {
        let g = erdos_renyi(10, 20, 1, false);
        let p = tmp("mismatch");
        write_binary(&g, &p).unwrap();
        assert!(read_binary::<u32>(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let p = tmp("does-not-exist");
        let err = read_adjacency_graph::<()>(&p).unwrap_err();
        assert!(matches!(err, Error::Io { path: Some(_), .. }), "{err:?}");
        assert!(err.to_string().contains("does-not-exist"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        let cases: Vec<(&str, &str)> = vec![
            ("bad-header", "NotAGraph\n3\n0\n"),
            ("truncated-adj", "AdjacencyGraph\n3\n5\n0\n1\n"),
            ("garbage-counts", "AdjacencyGraph\nxyz\n0\n"),
        ];
        for (name, body) in cases {
            let p = tmp(name);
            std::fs::write(&p, body).unwrap();
            let err = read_adjacency_graph::<()>(&p).unwrap_err();
            assert!(
                matches!(err, Error::Parse { line: Some(_), .. }),
                "{name} should fail with a positioned parse error, got {err:?}"
            );
            std::fs::remove_file(p).ok();
        }
        // DIMACS with 0-indexed ids must error.
        let p = tmp("dimacs-zero");
        std::fs::write(&p, "p sp 2 1\na 0 1 5\n").unwrap();
        let err = read_dimacs(&p).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
        // Edge list with a non-numeric token.
        let p = tmp("el-bad");
        std::fs::write(&p, "0 1\nfoo bar\n").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_detects_truncation() {
        let g = erdos_renyi(50, 200, 2, false);
        let p = tmp("trunc");
        write_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_binary::<()>(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn comments_skipped_in_edge_list() {
        let p = tmp("comments");
        std::fs::write(&p, "# header\n0 1\n% other\n1 2\n").unwrap();
        let g: Csr<()> = read_edge_list(&p, None, false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn empty_edge_list_without_n_is_rejected() {
        // An empty (or comment-only) file used to infer n = 1 and produce a
        // bogus 1-vertex graph; it must be an error unless n is explicit.
        let p = tmp("empty");
        std::fs::write(&p, "").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("no edges"), "{err}");
        std::fs::remove_file(&p).ok();

        let p = tmp("comment-only");
        std::fs::write(&p, "# nothing here\n% nor here\n\n").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert_eq!(err.code(), "parse");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_edge_list_with_explicit_n_is_allowed() {
        let p = tmp("empty-n");
        std::fs::write(&p, "# edgeless\n").unwrap();
        let g: Csr<()> = read_edge_list(&p, Some(4), false).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn edge_list_endpoint_beyond_supplied_n_is_rejected() {
        // Endpoints >= a user-supplied n used to be accepted and later
        // indexed out of bounds during CSR construction.
        let p = tmp("oob");
        std::fs::write(&p, "0 1\n2 7\n").unwrap();
        let err = read_edge_list::<()>(&p, Some(3), false).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        assert!(err.to_string().contains("(2, 7)"), "{err}");
        std::fs::remove_file(&p).ok();
    }
}
