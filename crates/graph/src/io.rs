//! Graph I/O behind one surface: [`GraphIo::read`] / [`GraphIo::write`]
//! with a [`Format`] enum and auto-detection.
//!
//! The supported formats are Ligra adjacency text, whitespace edge lists,
//! DIMACS `.gr`, METIS, a legacy length-prefixed binary format, and the
//! zero-copy [`crate::container`] (`.jgr`). Format selection is explicit
//! via [`IoOptions::format`] or automatic: extension first, then magic
//! bytes for extensionless/unknown paths (reads only — a write with an
//! unrecognized extension is a usage error, since there is nothing to
//! sniff).
//!
//! Every reader and writer returns the workspace [`Error`] enum: OS-level
//! failures surface as [`Error::Io`] with the path attached, malformed
//! content as [`Error::Parse`] with the path and (for line-oriented
//! formats) the 1-based line of the offending record. Callers — the CLI,
//! the query server — render or classify these without re-parsing strings.
//!
//! Until PR 6 this module exported ten loose `read_*`/`write_*` free
//! functions; they survive as private helpers behind [`GraphIo`], which is
//! the only public entry point.

use crate::builder::EdgeList;
use crate::csr::{Csr, Weight};
use crate::VertexId;
use bytes::{Buf, BufMut};
use julienne_primitives::error::Error;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write as _};
use std::path::Path;

/// On-disk graph formats [`GraphIo`] can read and write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Ligra `AdjacencyGraph` / `WeightedAdjacencyGraph` text (`.adj`).
    Adjacency,
    /// Whitespace edge list, `u v [w]` per line (`.el`, `.txt`).
    EdgeList,
    /// DIMACS shortest-path challenge (`.gr`) — weighted only.
    Dimacs,
    /// METIS adjacency (`.metis`, `.graph`) — undirected only.
    Metis,
    /// Legacy length-prefixed binary (`.bin`).
    Binary,
    /// Zero-copy mmap container (`.jgr`); see [`crate::container`].
    Container,
}

impl Format {
    /// The canonical CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Format::Adjacency => "adj",
            Format::EdgeList => "el",
            Format::Dimacs => "dimacs",
            Format::Metis => "metis",
            Format::Binary => "bin",
            Format::Container => "jgr",
        }
    }

    /// Parses a user-supplied format name (CLI `format=` values).
    pub fn parse(s: &str) -> Result<Format, Error> {
        match s {
            "adj" | "adjacency" => Ok(Format::Adjacency),
            "el" | "edgelist" | "txt" => Ok(Format::EdgeList),
            "gr" | "dimacs" => Ok(Format::Dimacs),
            "metis" | "graph" => Ok(Format::Metis),
            "bin" | "binary" => Ok(Format::Binary),
            "jgr" | "container" => Ok(Format::Container),
            other => Err(Error::usage(format!(
                "unknown graph format {other:?} (expected adj, el, dimacs, metis, bin, or jgr)"
            ))),
        }
    }

    /// Maps a file extension to a format, if recognized.
    pub fn from_extension(path: &Path) -> Option<Format> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("adj") => Some(Format::Adjacency),
            Some("el") | Some("txt") => Some(Format::EdgeList),
            Some("gr") => Some(Format::Dimacs),
            Some("metis") | Some("graph") => Some(Format::Metis),
            Some("bin") => Some(Format::Binary),
            Some("jgr") => Some(Format::Container),
            _ => None,
        }
    }

    /// Identifies an existing file by its leading bytes: the `.jgr` and
    /// binary magics, the Ligra adjacency headers, and the DIMACS `p sp`
    /// problem line (scanning past any leading `c` comment lines, since
    /// plain text starting with a word in 'c' is not DIMACS). Returns
    /// `Ok(None)` when nothing matches (edge lists and METIS have no
    /// reliable signature).
    pub fn sniff(path: &Path) -> Result<Option<Format>, Error> {
        let mut head = [0u8; 24];
        let mut f = File::open(path).map_err(|e| Error::io_at(path, e))?;
        let got = {
            let mut filled = 0;
            loop {
                match f.read(&mut head[filled..]) {
                    Ok(0) => break filled,
                    Ok(k) => filled += k,
                    Err(e) => return Err(Error::io_at(path, e)),
                }
            }
        };
        let head = &head[..got];
        if head.starts_with(&crate::container::MAGIC) {
            return Ok(Some(Format::Container));
        }
        if head.len() >= 8 && head[0..8] == BINARY_MAGIC.to_le_bytes() {
            return Ok(Some(Format::Binary));
        }
        if head.starts_with(b"AdjacencyGraph") || head.starts_with(b"WeightedAdjacencyGraph") {
            return Ok(Some(Format::Adjacency));
        }
        if head.starts_with(b"p sp ") {
            return Ok(Some(Format::Dimacs));
        }
        if head.starts_with(b"c ") || head.starts_with(b"c\n") || head.starts_with(b"c\r\n") {
            return Ok(Self::sniff_dimacs_past_comments(f));
        }
        Ok(None)
    }

    /// The file opens like a DIMACS comment; it only *is* DIMACS if a
    /// `p sp` problem line follows the comment block. The scan is bounded
    /// so a large non-DIMACS text file stays cheap to reject.
    fn sniff_dimacs_past_comments(mut f: File) -> Option<Format> {
        use std::io::Seek as _;
        if f.rewind().is_err() {
            return None;
        }
        let mut lines = BufReader::new(f).lines();
        for _ in 0..1024 {
            // Read errors (including non-UTF-8 bytes) mean "not DIMACS",
            // not a hard failure — detect() falls through to its usage
            // error.
            let Some(Ok(line)) = lines.next() else {
                return None;
            };
            let line = line.trim_start();
            if line.is_empty() || line == "c" || line.starts_with("c ") {
                continue;
            }
            return line.starts_with("p sp ").then_some(Format::Dimacs);
        }
        None
    }

    /// Detects the format of an existing file: extension first, then magic
    /// bytes. A usage error when neither recognizes the file.
    pub fn detect(path: &Path) -> Result<Format, Error> {
        if let Some(fmt) = Format::from_extension(path) {
            return Ok(fmt);
        }
        if let Some(fmt) = Format::sniff(path)? {
            return Ok(fmt);
        }
        Err(Error::usage(format!(
            "cannot determine the graph format of {} (use a .adj/.el/.gr/.metis/.bin/.jgr \
             extension or pass format= explicitly)",
            path.display()
        )))
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for [`GraphIo`] — a params struct in the registry style, so new
/// knobs don't churn every call site.
#[derive(Clone, Copy, Debug, Default)]
pub struct IoOptions {
    /// Explicit format; `None` auto-detects (extension, then magic bytes).
    pub format: Option<Format>,
    /// Edge lists: explicit vertex count (otherwise inferred as
    /// `1 + max id`, and an empty file is a parse error).
    pub vertices: Option<usize>,
    /// Edge lists: symmetrize while building (add both directions).
    pub symmetric: bool,
    /// Container writes: also embed the Ligra+ byte-compressed payload so
    /// `backend=compressed` loads skip re-encoding.
    pub compressed_payload: bool,
}

/// The unified graph I/O surface. Stateless — the methods are associated
/// functions; all knobs live in [`IoOptions`].
pub struct GraphIo;

impl GraphIo {
    /// Reads a graph with weight type `W` from `path`, auto-detecting the
    /// format unless [`IoOptions::format`] is set. Weightedness must match
    /// `W` for formats that record it; DIMACS is inherently weighted and
    /// rejects `W = ()` as a usage error.
    pub fn read<W: Weight>(path: &Path, opts: &IoOptions) -> Result<Csr<W>, Error> {
        let fmt = match opts.format {
            Some(f) => f,
            None => Format::detect(path)?,
        };
        match fmt {
            Format::Adjacency => read_adjacency_graph(path),
            Format::EdgeList => read_edge_list(path, opts.vertices, opts.symmetric),
            Format::Metis => read_metis(path),
            Format::Binary => read_binary(path),
            Format::Container => {
                let mg: crate::container::MappedGraph<W> =
                    crate::container::MappedGraph::open(path)?;
                mg.to_csr().map_err(|e| e.with_path(path))
            }
            Format::Dimacs => {
                if W::IS_UNIT {
                    return Err(Error::usage(
                        "DIMACS files are weighted; use a weighted command",
                    ));
                }
                // Round-trip through u64 encoding to reuse the typed reader.
                read_dimacs(path).map(|g| {
                    Csr::from_parts(
                        g.offsets().to_vec(),
                        g.targets().to_vec(),
                        g.weights().iter().map(|&w| W::from_u64(w as u64)).collect(),
                        g.is_symmetric(),
                    )
                })
            }
        }
    }

    /// Writes `g` to `path`. The format comes from [`IoOptions::format`] or
    /// the extension; sniffing does not apply to writes, so an unknown
    /// extension without an explicit format is a usage error.
    pub fn write<W: Weight>(g: &Csr<W>, path: &Path, opts: &IoOptions) -> Result<(), Error> {
        let fmt = match opts.format.or_else(|| Format::from_extension(path)) {
            Some(f) => f,
            None => {
                return Err(Error::usage(format!(
                    "cannot determine the output format of {} (use a .adj/.el/.gr/.metis/.bin/\
                     .jgr extension or pass format= explicitly)",
                    path.display()
                )))
            }
        };
        match fmt {
            Format::Adjacency => write_adjacency_graph(g, path),
            Format::EdgeList => write_edge_list(g, path),
            Format::Metis => write_metis(g, path),
            Format::Binary => write_binary(g, path),
            Format::Container => crate::container::write(
                g,
                path,
                &crate::container::ContainerWriteOptions {
                    compressed_payload: opts.compressed_payload,
                },
            ),
            Format::Dimacs => {
                if W::IS_UNIT {
                    return Err(Error::usage("DIMACS output requires a weighted graph"));
                }
                let wg: Csr<u32> = Csr::from_parts(
                    g.offsets().to_vec(),
                    g.targets().to_vec(),
                    g.weights().iter().map(|w| w.to_u64() as u32).collect(),
                    g.is_symmetric(),
                );
                write_dimacs(&wg, path)
            }
        }
    }
}

/// A line source that tracks the 1-based line number for error positioning.
struct Lines<'p> {
    inner: io::Lines<BufReader<File>>,
    path: &'p Path,
    lineno: usize,
}

impl<'p> Lines<'p> {
    fn open(path: &'p Path) -> Result<Self, Error> {
        let file = File::open(path).map_err(|e| Error::io_at(path, e))?;
        Ok(Lines {
            inner: BufReader::new(file).lines(),
            path,
            lineno: 0,
        })
    }

    /// The next line, or a positioned parse error naming `what` was missing.
    fn next(&mut self, what: &str) -> Result<String, Error> {
        self.lineno += 1;
        match self.inner.next() {
            None => Err(Error::parse_at(
                self.path,
                self.lineno,
                format!("unexpected end of file (expected {what})"),
            )),
            Some(Err(e)) => Err(Error::io_at(self.path, e)),
            Some(Ok(s)) => Ok(s),
        }
    }

    /// A parse error positioned at the line most recently read.
    fn bad(&self, msg: impl Into<String>) -> Error {
        Error::parse_at(self.path, self.lineno, msg)
    }
}

/// Writes `g` in Ligra's `AdjacencyGraph` / `WeightedAdjacencyGraph` text
/// format.
fn write_adjacency_graph<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        if W::IS_UNIT {
            writeln!(out, "AdjacencyGraph")?;
        } else {
            writeln!(out, "WeightedAdjacencyGraph")?;
        }
        writeln!(out, "{}", g.num_vertices())?;
        writeln!(out, "{}", g.num_edges())?;
        for v in 0..g.num_vertices() {
            writeln!(out, "{}", g.offsets()[v])?;
        }
        for &t in g.targets() {
            writeln!(out, "{t}")?;
        }
        if !W::IS_UNIT {
            for &w in g.weights() {
                writeln!(out, "{}", w.to_u64())?;
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a Ligra `AdjacencyGraph` / `WeightedAdjacencyGraph` text file.
fn read_adjacency_graph<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let mut src = Lines::open(path)?;
    let header = src.next("header")?;
    let weighted = match header.trim() {
        "AdjacencyGraph" => false,
        "WeightedAdjacencyGraph" => true,
        other => return Err(src.bad(format!("unknown header {other:?}"))),
    };
    if weighted == W::IS_UNIT {
        return Err(src.bad("weightedness of file does not match requested graph type"));
    }
    let n: usize = {
        let s = src.next("vertex count")?;
        s.trim()
            .parse()
            .map_err(|e| src.bad(format!("vertex count: {e}")))?
    };
    let m: usize = {
        let s = src.next("edge count")?;
        s.trim()
            .parse()
            .map_err(|e| src.bad(format!("edge count: {e}")))?
    };
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..n {
        let s = src.next("offset")?;
        offsets.push(
            s.trim()
                .parse::<u64>()
                .map_err(|e| src.bad(format!("offset: {e}")))?,
        );
    }
    offsets.push(m as u64);
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let s = src.next("edge")?;
        targets.push(
            s.trim()
                .parse::<VertexId>()
                .map_err(|e| src.bad(format!("edge target: {e}")))?,
        );
    }
    let mut weights = Vec::with_capacity(if weighted { m } else { 0 });
    if weighted {
        for _ in 0..m {
            let s = src.next("weight")?;
            let w: u64 = s
                .trim()
                .parse()
                .map_err(|e| src.bad(format!("weight: {e}")))?;
            weights.push(W::from_u64(w));
        }
    }
    Csr::try_from_parts(offsets, targets, weights, false)
        .map_err(|msg| Error::parse(format!("inconsistent adjacency data: {msg}")).with_path(path))
}

/// Writes a whitespace edge list (`u v` or `u v w` per line).
fn write_edge_list<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        for u in 0..g.num_vertices() as VertexId {
            for (v, w) in g.edges_of(u) {
                if W::IS_UNIT {
                    writeln!(out, "{u} {v}")?;
                } else {
                    writeln!(out, "{u} {v} {}", w.to_u64())?;
                }
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a whitespace edge list; lines starting with `#` or `%` are
/// comments. `n` is inferred as `1 + max id` unless given.
///
/// Errors with [`Error::Parse`] if the file contains no edges and `n` was
/// not supplied (there is no defensible vertex count to infer — the old
/// behaviour silently produced a bogus 1-vertex graph), or if any endpoint
/// is `>= n` for a user-supplied `n` (those edges previously survived until
/// an out-of-bounds index deep inside CSR construction).
fn read_edge_list<W: Weight>(
    path: &Path,
    n: Option<usize>,
    symmetric: bool,
) -> Result<Csr<W>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut edges: Vec<(VertexId, VertexId, W)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let bad = || Error::parse_at(path, lineno + 1, format!("bad edge line: {line:?}"));
        let u: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w = if W::IS_UNIT {
            W::default()
        } else {
            let raw: u64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            W::from_u64(raw)
        };
        if let Some(n) = n {
            if u as usize >= n || v as usize >= n {
                return Err(Error::parse_at(
                    path,
                    lineno + 1,
                    format!("edge ({u}, {v}) references a vertex >= n = {n}"),
                ));
            }
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() && n.is_none() {
        return Err(Error::Parse {
            path: Some(path.to_path_buf()),
            line: None,
            msg: "file contains no edges; pass an explicit vertex count to load an \
                  edgeless graph"
                .to_string(),
        });
    }
    let n = n.unwrap_or(max_id as usize + 1);
    let mut el = EdgeList::new(n);
    el.edges = edges;
    Ok(if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    })
}

/// Writes a DIMACS shortest-path challenge `.gr` file (1-indexed, weighted).
fn write_dimacs(g: &Csr<u32>, path: &Path) -> Result<(), Error> {
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "c generated by julienne-graph")?;
        writeln!(out, "p sp {} {}", g.num_vertices(), g.num_edges())?;
        for u in 0..g.num_vertices() as VertexId {
            for (v, w) in g.edges_of(u) {
                writeln!(out, "a {} {} {w}", u + 1, v + 1)?;
            }
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a DIMACS `.gr` file.
fn read_dimacs(path: &Path) -> Result<Csr<u32>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut n = 0usize;
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        let bad = |msg: &str| Error::parse_at(path, lineno + 1, msg);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("c") | None => {}
            Some("p") => {
                let _sp = it.next();
                n = it
                    .next()
                    .ok_or_else(|| bad("p line is missing the vertex count"))?
                    .parse()
                    .map_err(|_| bad("p line has a non-numeric vertex count"))?;
            }
            Some("a") => {
                let u: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its tail"))?
                    .parse()
                    .map_err(|_| bad("arc tail is not a number"))?;
                let v: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its head"))?
                    .parse()
                    .map_err(|_| bad("arc head is not a number"))?;
                let w: u32 = it
                    .next()
                    .ok_or_else(|| bad("arc line is missing its weight"))?
                    .parse()
                    .map_err(|_| bad("arc weight is not a number"))?;
                if u == 0 || v == 0 {
                    return Err(bad("DIMACS ids are 1-indexed"));
                }
                edges.push((u - 1, v - 1, w));
            }
            Some(_) => {}
        }
    }
    let mut el = EdgeList::new(n);
    el.edges = edges;
    Ok(el.build(false))
}

/// Writes a METIS graph file (1-indexed adjacency lines; header
/// `n m [fmt]`, where undirected edges are listed from both endpoints).
/// Requires a symmetric graph; weighted graphs use fmt `001` (edge
/// weights).
fn write_metis<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    if !g.is_symmetric() {
        return Err(Error::input(
            "METIS files describe undirected graphs; symmetrize first",
        ));
    }
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        let m_und = g.num_edges() / 2;
        if W::IS_UNIT {
            writeln!(out, "{} {}", g.num_vertices(), m_und)?;
        } else {
            writeln!(out, "{} {} 001", g.num_vertices(), m_und)?;
        }
        for v in 0..g.num_vertices() as VertexId {
            let mut first = true;
            for (u, w) in g.edges_of(v) {
                if !first {
                    write!(out, " ")?;
                }
                first = false;
                if W::IS_UNIT {
                    write!(out, "{}", u + 1)?;
                } else {
                    write!(out, "{} {}", u + 1, w.to_u64())?;
                }
            }
            writeln!(out)?;
        }
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads a METIS graph file (plain or `001` edge-weighted).
fn read_metis<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let reader = BufReader::new(File::open(path).map_err(|e| Error::io_at(path, e))?);
    let mut header: Option<(usize, usize, bool)> = None;
    let mut el = EdgeList::new(0);
    let mut v = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io_at(path, e))?;
        if line.trim_start().starts_with('%') {
            continue; // Comment lines start with '%'.
        }
        let bad = |msg: &str| Error::parse_at(path, lineno + 1, msg);
        let Some((n, _m_und, weighted)) = header else {
            let mut hp = line.split_whitespace();
            let n: usize = hp
                .next()
                .ok_or_else(|| bad("header is missing the vertex count"))?
                .parse()
                .map_err(|_| bad("header vertex count is not a number"))?;
            let m_und: usize = hp
                .next()
                .ok_or_else(|| bad("header is missing the edge count"))?
                .parse()
                .map_err(|_| bad("header edge count is not a number"))?;
            let fmt = hp.next().unwrap_or("0");
            let weighted = fmt.ends_with('1');
            if weighted == W::IS_UNIT {
                return Err(bad("weightedness of METIS file does not match graph type"));
            }
            header = Some((n, m_und, weighted));
            el = EdgeList::new(n);
            continue;
        };
        if v >= n {
            break;
        }
        let mut it = line.split_whitespace();
        while let Some(tok) = it.next() {
            let u: usize = tok
                .parse()
                .map_err(|_| bad("neighbor id is not a number"))?;
            if u == 0 || u > n {
                return Err(bad("METIS ids are 1-indexed and ≤ n"));
            }
            let w = if weighted {
                let raw: u64 = it
                    .next()
                    .ok_or_else(|| bad("missing edge weight"))?
                    .parse()
                    .map_err(|_| bad("edge weight is not a number"))?;
                W::from_u64(raw)
            } else {
                W::default()
            };
            el.push(v as VertexId, (u - 1) as VertexId, w);
        }
        v += 1;
    }
    let Some((_n, m_und, _)) = header else {
        return Err(Error::Parse {
            path: Some(path.to_path_buf()),
            line: None,
            msg: "empty file".to_string(),
        });
    };
    let g = el.build(true);
    // Tolerate duplicate/self-loop cleanup shrinking the count.
    if g.num_edges() > 2 * m_und {
        return Err(Error::parse("more edges than the header promised").with_path(path));
    }
    Ok(g)
}

const BINARY_MAGIC: u64 = 0x4A55_4C49_454E_4E45; // "JULIENNE"
/// Legacy binary format version. Version 1 files (pre-PR 6) carried no
/// version field at all; the u32 that now follows the magic lands on the
/// low half of what was the vertex count, so old files surface as an
/// "unsupported version" parse error instead of a garbage graph.
const BINARY_VERSION: u32 = 2;

/// Writes the fast binary format (little-endian, length-prefixed arrays).
fn write_binary<W: Weight>(g: &Csr<W>, path: &Path) -> Result<(), Error> {
    let mut buf: Vec<u8> = Vec::with_capacity(32 + 8 * g.num_vertices() + 4 * g.num_edges());
    buf.put_u64_le(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    buf.put_u8(u8::from(g.is_symmetric()));
    buf.put_u8(u8::from(!W::IS_UNIT));
    for &o in g.offsets() {
        buf.put_u64_le(o);
    }
    for &t in g.targets() {
        buf.put_u32_le(t);
    }
    if !W::IS_UNIT {
        for &w in g.weights() {
            buf.put_u64_le(w.to_u64());
        }
    }
    let write = || -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&buf)?;
        out.flush()
    };
    write().map_err(|e| Error::io_at(path, e))
}

/// Reads the fast binary format.
fn read_binary<W: Weight>(path: &Path) -> Result<Csr<W>, Error> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| Error::io_at(path, e))?;
    let mut buf: &[u8] = &raw;
    let bad = |msg: String| Error::parse(msg).with_path(path);
    if buf.remaining() < 8 || buf.get_u64_le() != BINARY_MAGIC {
        return Err(bad("not a julienne binary graph (bad magic)".into()));
    }
    if buf.remaining() < 4 {
        return Err(bad("truncated file (no version field)".into()));
    }
    let version = buf.get_u32_le();
    if version != BINARY_VERSION {
        return Err(bad(format!(
            "unsupported binary version {version} (this build reads version {BINARY_VERSION}; \
             re-export pre-PR-6 files with `julienne convert`)"
        )));
    }
    if buf.remaining() < 18 {
        return Err(bad("truncated file (header cut short)".into()));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    let symmetric = buf.get_u8() != 0;
    let weighted = buf.get_u8() != 0;
    if weighted == W::IS_UNIT {
        return Err(bad(
            "weightedness of file does not match requested graph type".into(),
        ));
    }
    let need = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| o.checked_add(m.checked_mul(if weighted { 12 } else { 4 })?))
        .ok_or_else(|| bad("header sizes overflow".into()))?;
    if buf.remaining() < need {
        return Err(bad("truncated file".into()));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le());
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(buf.get_u32_le());
    }
    let mut weights = Vec::with_capacity(if weighted { m } else { 0 });
    if weighted {
        for _ in 0..m {
            weights.push(W::from_u64(buf.get_u64_le()));
        }
    }
    // Corrupt bodies (non-monotone offsets, out-of-range targets) must be
    // typed parse errors, not asserts or silently-garbage graphs.
    Csr::try_from_parts(offsets, targets, weights, symmetric)
        .map_err(|msg| bad(format!("corrupt graph body: {msg}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::transform::assign_weights;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("julienne-io-test-{name}-{}", std::process::id()));
        p
    }

    fn same_graph<W: Weight>(a: &Csr<W>, b: &Csr<W>) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn adjacency_roundtrip_unweighted() {
        let g = erdos_renyi(200, 1000, 1, false);
        let p = tmp("adj");
        write_adjacency_graph(&g, &p).unwrap();
        let h: Csr<()> = read_adjacency_graph(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn adjacency_roundtrip_weighted() {
        let g = assign_weights(&erdos_renyi(100, 500, 2, false), 1, 50, 3);
        let p = tmp("wadj");
        write_adjacency_graph(&g, &p).unwrap();
        let h: Csr<u32> = read_adjacency_graph(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = erdos_renyi(150, 700, 4, false);
        let p = tmp("el");
        write_edge_list(&g, &p).unwrap();
        let h: Csr<()> = read_edge_list(&p, Some(150), false).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = assign_weights(&erdos_renyi(80, 400, 5, false), 1, 1000, 6);
        let p = tmp("gr");
        write_dimacs(&g, &p).unwrap();
        let h = read_dimacs(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn metis_roundtrip_unweighted_and_weighted() {
        let g = erdos_renyi(150, 900, 3, true);
        let p = tmp("metis");
        write_metis(&g, &p).unwrap();
        let h: Csr<()> = read_metis(&p).unwrap();
        same_graph(&g, &h);
        std::fs::remove_file(&p).ok();

        let wg = assign_weights(&g, 1, 50, 4);
        let pw = tmp("wmetis");
        write_metis(&wg, &pw).unwrap();
        let hw: Csr<u32> = read_metis(&pw).unwrap();
        same_graph(&wg, &hw);
        std::fs::remove_file(pw).ok();
    }

    #[test]
    fn metis_rejects_directed_and_mismatch() {
        let directed = erdos_renyi(20, 60, 1, false);
        let err = write_metis(&directed, &tmp("md")).unwrap_err();
        assert!(matches!(err, Error::Input(_)), "{err:?}");
        let g = erdos_renyi(20, 60, 1, true);
        let p = tmp("mm");
        write_metis(&g, &p).unwrap();
        // Weighted read of a plain file is a positioned parse error.
        let err = read_metis::<u32>(&p).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(1), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_roundtrip_both() {
        let g = erdos_renyi(300, 2000, 7, true);
        let p = tmp("bin");
        write_binary(&g, &p).unwrap();
        let h: Csr<()> = read_binary(&p).unwrap();
        same_graph(&g, &h);
        assert!(h.is_symmetric());
        std::fs::remove_file(&p).ok();

        let gw = assign_weights(&erdos_renyi(300, 2000, 8, false), 1, 9, 9);
        let pw = tmp("binw");
        write_binary(&gw, &pw).unwrap();
        let hw: Csr<u32> = read_binary(&pw).unwrap();
        same_graph(&gw, &hw);
        std::fs::remove_file(pw).ok();
    }

    #[test]
    fn weightedness_mismatch_rejected() {
        let g = erdos_renyi(10, 20, 1, false);
        let p = tmp("mismatch");
        write_binary(&g, &p).unwrap();
        assert!(read_binary::<u32>(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let p = tmp("does-not-exist");
        let err = read_adjacency_graph::<()>(&p).unwrap_err();
        assert!(matches!(err, Error::Io { path: Some(_), .. }), "{err:?}");
        assert!(err.to_string().contains("does-not-exist"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        let cases: Vec<(&str, &str)> = vec![
            ("bad-header", "NotAGraph\n3\n0\n"),
            ("truncated-adj", "AdjacencyGraph\n3\n5\n0\n1\n"),
            ("garbage-counts", "AdjacencyGraph\nxyz\n0\n"),
        ];
        for (name, body) in cases {
            let p = tmp(name);
            std::fs::write(&p, body).unwrap();
            let err = read_adjacency_graph::<()>(&p).unwrap_err();
            assert!(
                matches!(err, Error::Parse { line: Some(_), .. }),
                "{name} should fail with a positioned parse error, got {err:?}"
            );
            std::fs::remove_file(p).ok();
        }
        // DIMACS with 0-indexed ids must error.
        let p = tmp("dimacs-zero");
        std::fs::write(&p, "p sp 2 1\na 0 1 5\n").unwrap();
        let err = read_dimacs(&p).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
        // Edge list with a non-numeric token.
        let p = tmp("el-bad");
        std::fs::write(&p, "0 1\nfoo bar\n").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_detects_truncation() {
        let g = erdos_renyi(50, 200, 2, false);
        let p = tmp("trunc");
        write_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_binary::<()>(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn comments_skipped_in_edge_list() {
        let p = tmp("comments");
        std::fs::write(&p, "# header\n0 1\n% other\n1 2\n").unwrap();
        let g: Csr<()> = read_edge_list(&p, None, false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn empty_edge_list_without_n_is_rejected() {
        // An empty (or comment-only) file used to infer n = 1 and produce a
        // bogus 1-vertex graph; it must be an error unless n is explicit.
        let p = tmp("empty");
        std::fs::write(&p, "").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("no edges"), "{err}");
        std::fs::remove_file(&p).ok();

        let p = tmp("comment-only");
        std::fs::write(&p, "# nothing here\n% nor here\n\n").unwrap();
        let err = read_edge_list::<()>(&p, None, false).unwrap_err();
        assert_eq!(err.code(), "parse");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_edge_list_with_explicit_n_is_allowed() {
        let p = tmp("empty-n");
        std::fs::write(&p, "# edgeless\n").unwrap();
        let g: Csr<()> = read_edge_list(&p, Some(4), false).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn graphio_roundtrips_every_extension() {
        let dir = std::env::temp_dir().join(format!("julienne-graphio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = erdos_renyi(120, 600, 12, false);
        for name in ["g.adj", "g.el", "g.bin", "g.jgr"] {
            let p = dir.join(name);
            GraphIo::write(&g, &p, &IoOptions::default()).unwrap();
            let h: Csr<()> = GraphIo::read(&p, &IoOptions::default()).unwrap();
            assert_eq!(h.num_vertices(), g.num_vertices(), "{name}");
            assert_eq!(h.num_edges(), g.num_edges(), "{name}");
        }
        let sym = erdos_renyi(100, 500, 13, true);
        let p = dir.join("g.metis");
        GraphIo::write(&sym, &p, &IoOptions::default()).unwrap();
        let h: Csr<()> = GraphIo::read(&p, &IoOptions::default()).unwrap();
        assert_eq!(h.num_edges(), sym.num_edges());
        let wg = assign_weights(&g, 1, 9, 14);
        let p = dir.join("g.gr");
        GraphIo::write(&wg, &p, &IoOptions::default()).unwrap();
        let h: Csr<u32> = GraphIo::read(&p, &IoOptions::default()).unwrap();
        assert_eq!(h.weights(), wg.weights());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn magic_sniffing_handles_unknown_extensions() {
        let dir = std::env::temp_dir().join(format!("julienne-sniff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = erdos_renyi(60, 300, 21, false);
        // Write each self-identifying format under a nonsense extension and
        // read it back with no format hint at all.
        for fmt in [Format::Adjacency, Format::Binary, Format::Container] {
            let p = dir.join(format!("mystery-{fmt}.dat"));
            GraphIo::write(
                &g,
                &p,
                &IoOptions {
                    format: Some(fmt),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(Format::sniff(&p).unwrap(), Some(fmt));
            let h: Csr<()> = GraphIo::read(&p, &IoOptions::default()).unwrap();
            assert_eq!(h.num_edges(), g.num_edges(), "{fmt}");
        }
        // DIMACS sniffs via its comment/problem lines.
        let wg = assign_weights(&g, 1, 5, 2);
        let p = dir.join("mystery-gr.dat");
        GraphIo::write(
            &wg,
            &p,
            &IoOptions {
                format: Some(Format::Dimacs),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(Format::sniff(&p).unwrap(), Some(Format::Dimacs));
        // A file with no signature and no known extension is a usage error.
        let p = dir.join("mystery-none.dat");
        std::fs::write(&p, "0 1\n1 2\n").unwrap();
        let err = GraphIo::read::<()>(&p, &IoOptions::default()).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        // ...but an explicit format reads it fine.
        let h: Csr<()> = GraphIo::read(
            &p,
            &IoOptions {
                format: Some(Format::EdgeList),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(h.num_edges(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sniff_requires_a_problem_line_for_dimacs() {
        // A plain-text file that merely starts with a word in 'c' must not
        // misdetect as DIMACS — it falls through to the usage error.
        let p = tmp("notadimacs");
        std::fs::write(
            &p,
            "c looks like a DIMACS comment\nbut this is prose, not a problem line\n",
        )
        .unwrap();
        assert_eq!(Format::sniff(&p).unwrap(), None);
        let err = GraphIo::read::<u32>(&p, &IoOptions::default()).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        std::fs::remove_file(&p).ok();

        // Real DIMACS behind several comment lines still sniffs.
        let p = tmp("realdimacs");
        std::fs::write(&p, "c one\nc two\n\np sp 2 1\na 1 2 5\n").unwrap();
        assert_eq!(Format::sniff(&p).unwrap(), Some(Format::Dimacs));
        let g: Csr<u32> = GraphIo::read(&p, &IoOptions::default()).unwrap();
        assert_eq!(g.num_edges(), 1);
        std::fs::remove_file(&p).ok();

        // Non-UTF-8 bytes after a 'c ' opener are "not DIMACS", not a hard
        // error.
        let p = tmp("bindimacs");
        std::fs::write(&p, b"c \xFF\xFE\x00garbage").unwrap();
        assert_eq!(Format::sniff(&p).unwrap(), None);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn format_parse_names_round_trip() {
        for fmt in [
            Format::Adjacency,
            Format::EdgeList,
            Format::Dimacs,
            Format::Metis,
            Format::Binary,
            Format::Container,
        ] {
            assert_eq!(Format::parse(fmt.name()).unwrap(), fmt);
        }
        assert!(Format::parse("zip").unwrap_err().is_usage());
    }

    #[test]
    fn graphio_write_unknown_extension_is_usage_error() {
        let g = erdos_renyi(10, 30, 1, false);
        let err = GraphIo::write(&g, Path::new("/tmp/x.zip"), &IoOptions::default()).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }

    #[test]
    fn binary_rejects_wrong_magic_version_and_corrupt_body() {
        let g = erdos_renyi(40, 150, 3, false);
        let p = tmp("bin-corrupt");
        write_binary(&g, &p).unwrap();
        let pristine = std::fs::read(&p).unwrap();

        // Wrong magic.
        let mut bytes = pristine.clone();
        bytes[0] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let err = read_binary::<()>(&p).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("magic"), "{err}");

        // Wrong version (also the shape a pre-PR-6 version-less file takes).
        let mut bytes = pristine.clone();
        bytes[8] = 77;
        std::fs::write(&p, &bytes).unwrap();
        let err = read_binary::<()>(&p).unwrap_err();
        assert!(err.to_string().contains("version 77"), "{err}");

        // Truncation inside the header.
        std::fs::write(&p, &pristine[..14]).unwrap();
        let err = read_binary::<()>(&p).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // Corrupt body: scribble over the offsets so they are not monotone.
        let mut bytes = pristine.clone();
        for b in &mut bytes[30..54] {
            *b = 0xEE;
        }
        std::fs::write(&p, &bytes).unwrap();
        let err = read_binary::<()>(&p).unwrap_err();
        assert_eq!(err.code(), "parse");
        assert!(err.to_string().contains("corrupt graph body"), "{err}");

        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_endpoint_beyond_supplied_n_is_rejected() {
        // Endpoints >= a user-supplied n used to be accepted and later
        // indexed out of bounds during CSR construction.
        let p = tmp("oob");
        std::fs::write(&p, "0 1\n2 7\n").unwrap();
        let err = read_edge_list::<()>(&p, Some(3), false).unwrap_err();
        assert!(matches!(err, Error::Parse { line: Some(2), .. }), "{err:?}");
        assert!(err.to_string().contains("(2, 7)"), "{err}");
        std::fs::remove_file(&p).ok();
    }
}
