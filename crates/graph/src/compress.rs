//! Ligra+-style byte-code compression of adjacency lists.
//!
//! Each vertex's sorted neighbor list is difference-encoded: the first
//! neighbor as a zig-zag signed delta from the vertex id, the rest as
//! unsigned gaps from the previous neighbor, all written as LEB128-style
//! variable-length byte codes. The paper relies on this (via Ligra+) to fit
//! the 225B-edge Hyperlink graph in 1TB; here it demonstrates the same
//! neighbor-iteration abstraction on compressed storage.

use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::scan::prefix_sums;
use rayon::prelude::*;

/// A compressed unweighted graph: per-vertex byte-coded neighbor blocks.
#[derive(Clone, Debug)]
pub struct CompressedGraph {
    n: usize,
    m: usize,
    /// Byte offset of each vertex's block (length n+1).
    offsets: Vec<u64>,
    /// Out-degree of each vertex (needed to know where to stop decoding).
    degrees: Vec<u32>,
    /// Concatenated byte-coded blocks.
    data: Vec<u8>,
    symmetric: bool,
    /// Byte-compressed transpose for dense (pull) traversals of directed
    /// graphs; symmetric graphs are their own in-view and leave this empty.
    in_graph: Option<Box<CompressedGraph>>,
}

#[inline]
fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn zigzag_decode(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

fn encode_block(v: VertexId, neighbors: &[VertexId], out: &mut Vec<u8>) {
    debug_assert!(neighbors.windows(2).all(|w| w[0] < w[1]), "must be sorted");
    let mut prev = 0u32;
    for (i, &u) in neighbors.iter().enumerate() {
        if i == 0 {
            put_varint(out, zigzag_encode(u as i64 - v as i64));
        } else {
            put_varint(out, (u - prev) as u64);
        }
        prev = u;
    }
}

impl CompressedGraph {
    /// Compresses `g` (neighbor lists are sorted first if needed). If `g` is
    /// directed and carries an attached transpose, the transpose is
    /// compressed too, so the dense (pull) traversal path keeps working on
    /// the compressed form.
    pub fn from_csr(g: &Csr<()>) -> Self {
        let mut this = Self::encode_out(g);
        if !g.is_symmetric() {
            if let Some(t) = g.in_view() {
                this.in_graph = Some(Box::new(Self::encode_out(t)));
            }
        }
        this
    }

    /// Compresses just the out-adjacency of `g` (no transpose handling).
    fn encode_out(g: &Csr<()>) -> Self {
        let n = g.num_vertices();
        // Encode every vertex block in parallel into per-vertex buffers.
        let blocks: Vec<Vec<u8>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut nbrs = g.neighbors(v).to_vec();
                nbrs.sort_unstable();
                let mut buf = Vec::with_capacity(nbrs.len() * 2);
                encode_block(v, &nbrs, &mut buf);
                buf
            })
            .collect();
        let mut counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        counts.push(0);
        let total = prefix_sums(&mut counts);
        let offsets: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        let mut data = vec![0u8; total];
        for (v, block) in blocks.iter().enumerate() {
            data[offsets[v] as usize..offsets[v] as usize + block.len()].copy_from_slice(block);
        }
        CompressedGraph {
            n,
            m: g.num_edges(),
            offsets,
            degrees: g.degrees(),
            data,
            symmetric: g.is_symmetric(),
            in_graph: None,
        }
    }

    /// Attaches a compressed transpose so dense traversals work on directed
    /// compressed graphs (no-op when symmetric or already attached).
    pub fn with_transpose(mut self) -> Self {
        if !self.symmetric && self.in_graph.is_none() {
            let t = crate::transform::transpose(&self.to_csr());
            self.in_graph = Some(Box::new(Self::encode_out(&t)));
        }
        self
    }

    /// The in-adjacency view used by dense (pull) traversals: the graph
    /// itself when symmetric, the compressed transpose when attached,
    /// `None` otherwise.
    pub fn in_view(&self) -> Option<&CompressedGraph> {
        if self.symmetric {
            Some(self)
        } else {
            self.in_graph.as_deref()
        }
    }

    /// Whether a dense (pull) traversal is possible.
    pub fn has_in_view(&self) -> bool {
        self.symmetric || self.in_graph.is_some()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the source graph was symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Total compressed adjacency bytes (for reporting compression ratios).
    /// Excludes the optional transpose; see [`footprint_bytes`](Self::footprint_bytes).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total in-memory footprint in bytes: byte-coded blocks plus the
    /// offset/degree arrays, including an attached transpose.
    pub fn footprint_bytes(&self) -> usize {
        let own = self.data.len() + self.offsets.len() * 8 + self.degrees.len() * 4;
        own + self
            .in_graph
            .as_deref()
            .map_or(0, CompressedGraph::footprint_bytes)
    }

    /// Decodes and visits each out-neighbor of `v` in increasing order.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize];
        if deg == 0 {
            return;
        }
        let mut pos = self.offsets[v as usize] as usize;
        let first = zigzag_decode(get_varint(&self.data, &mut pos));
        let mut cur = (v as i64 + first) as u32;
        f(cur);
        for _ in 1..deg {
            cur += get_varint(&self.data, &mut pos) as u32;
            f(cur);
        }
    }

    /// Decodes out-neighbors of `v` in increasing order until `f` returns
    /// `false` — the decode stops mid-block, so a pull traversal's early
    /// exit skips the remaining varints entirely.
    #[inline]
    pub fn for_each_neighbor_until<F: FnMut(VertexId) -> bool>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize];
        if deg == 0 {
            return;
        }
        let mut pos = self.offsets[v as usize] as usize;
        let first = zigzag_decode(get_varint(&self.data, &mut pos));
        let mut cur = (v as i64 + first) as u32;
        if !f(cur) {
            return;
        }
        for _ in 1..deg {
            cur += get_varint(&self.data, &mut pos) as u32;
            if !f(cur) {
                return;
            }
        }
    }

    /// Decodes `v`'s neighbors into a fresh vector (test/debug helper).
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// Serialises to the compressed binary format (so the decode-on-the-fly
    /// representation can be the *storage* format too, as in Ligra+).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        use bytes::BufMut;
        use std::io::Write as _;
        let mut buf: Vec<u8> = Vec::with_capacity(32 + 12 * self.n + self.data.len());
        buf.put_u64_le(0x4A43_4F4D_5052_4753); // "JCOMPRGS"
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.m as u64);
        buf.put_u8(u8::from(self.symmetric));
        for &o in &self.offsets {
            buf.put_u64_le(o);
        }
        for &d in &self.degrees {
            buf.put_u32_le(d);
        }
        buf.put_u64_le(self.data.len() as u64);
        buf.extend_from_slice(&self.data);
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(&buf)?;
        out.flush()
    }

    /// Reads a graph written by [`CompressedGraph::write_to`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<CompressedGraph> {
        use bytes::Buf;
        use std::io::Read as _;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        let mut buf: &[u8] = &raw;
        if buf.remaining() < 25 || buf.get_u64_le() != 0x4A43_4F4D_5052_4753 {
            return Err(bad("bad magic"));
        }
        let n = buf.get_u64_le() as usize;
        let m = buf.get_u64_le() as usize;
        let symmetric = buf.get_u8() != 0;
        if buf.remaining() < 8 * (n + 1) + 4 * n + 8 {
            return Err(bad("truncated header"));
        }
        let offsets: Vec<u64> = (0..=n).map(|_| buf.get_u64_le()).collect();
        let degrees: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(bad("truncated data"));
        }
        let data = buf[..len].to_vec();
        Ok(CompressedGraph {
            n,
            m,
            offsets,
            degrees,
            data,
            symmetric,
            in_graph: None,
        })
    }

    /// The raw storage arrays `(offsets, degrees, data)` — what the `.jgr`
    /// container embeds verbatim as its compressed-payload sections.
    pub fn raw_parts(&self) -> (&[u64], &[u32], &[u8]) {
        (&self.offsets, &self.degrees, &self.data)
    }

    /// Rebuilds a graph from storage arrays produced by
    /// [`CompressedGraph::raw_parts`] (the `.jgr` load path — the byte
    /// blocks are copied verbatim, never re-encoded).
    pub fn from_raw_parts(
        n: usize,
        m: usize,
        offsets: Vec<u64>,
        degrees: Vec<u32>,
        data: Vec<u8>,
        symmetric: bool,
        in_graph: Option<Box<CompressedGraph>>,
    ) -> Self {
        assert_eq!(offsets.len(), n + 1);
        assert_eq!(degrees.len(), n);
        CompressedGraph {
            n,
            m,
            offsets,
            degrees,
            data,
            symmetric,
            in_graph,
        }
    }

    /// Decompresses back into a CSR.
    pub fn to_csr(&self) -> Csr<()> {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &self.degrees {
            acc += d as u64;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; self.m];
        let starts = offsets.clone();
        {
            use julienne_primitives::unsafe_write::DisjointWriter;
            let w = DisjointWriter::new(&mut targets);
            (0..self.n as VertexId).into_par_iter().for_each(|v| {
                let mut k = starts[v as usize] as usize;
                self.for_each_neighbor(v, |u| {
                    // SAFETY: each vertex owns a disjoint target range.
                    unsafe { w.write(k, u) };
                    k += 1;
                });
            });
        }
        Csr::from_parts(offsets, targets, vec![], self.symmetric)
    }
}

/// A compressed **weighted** graph: neighbor gaps and weights interleaved
/// per edge, as in Ligra+'s weighted byte codes.
#[derive(Clone, Debug)]
pub struct CompressedWGraph {
    n: usize,
    m: usize,
    offsets: Vec<u64>,
    degrees: Vec<u32>,
    data: Vec<u8>,
    symmetric: bool,
    /// Compressed transpose for dense pull on directed weighted graphs.
    in_graph: Option<Box<CompressedWGraph>>,
}

impl CompressedWGraph {
    /// Compresses a weighted CSR (neighbor lists sorted first). A directed
    /// graph's attached transpose is compressed too, preserving the dense
    /// (pull) traversal path.
    pub fn from_csr(g: &Csr<u32>) -> Self {
        let mut this = Self::encode_out(g);
        if !g.is_symmetric() {
            if let Some(t) = g.in_view() {
                this.in_graph = Some(Box::new(Self::encode_out(t)));
            }
        }
        this
    }

    /// Compresses just the out-adjacency (no transpose handling).
    fn encode_out(g: &Csr<u32>) -> Self {
        let n = g.num_vertices();
        let blocks: Vec<Vec<u8>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut pairs: Vec<(VertexId, u32)> = g.edges_of(v).collect();
                pairs.sort_unstable();
                let mut buf = Vec::with_capacity(pairs.len() * 3);
                let mut prev = 0u32;
                for (i, &(u, w)) in pairs.iter().enumerate() {
                    if i == 0 {
                        put_varint(&mut buf, zigzag_encode(u as i64 - v as i64));
                    } else {
                        put_varint(&mut buf, (u - prev) as u64);
                    }
                    put_varint(&mut buf, w as u64);
                    prev = u;
                }
                buf
            })
            .collect();
        let mut counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        counts.push(0);
        let total = prefix_sums(&mut counts);
        let offsets: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        let mut data = vec![0u8; total];
        for (v, block) in blocks.iter().enumerate() {
            data[offsets[v] as usize..offsets[v] as usize + block.len()].copy_from_slice(block);
        }
        CompressedWGraph {
            n,
            m: g.num_edges(),
            offsets,
            degrees: g.degrees(),
            data,
            symmetric: g.is_symmetric(),
            in_graph: None,
        }
    }

    /// Attaches a compressed transpose so dense traversals work on directed
    /// compressed graphs (no-op when symmetric or already attached).
    pub fn with_transpose(mut self) -> Self {
        if !self.symmetric && self.in_graph.is_none() {
            let t = crate::transform::transpose(&self.to_csr());
            self.in_graph = Some(Box::new(Self::encode_out(&t)));
        }
        self
    }

    /// The in-adjacency view for dense (pull) traversals, if available.
    pub fn in_view(&self) -> Option<&CompressedWGraph> {
        if self.symmetric {
            Some(self)
        } else {
            self.in_graph.as_deref()
        }
    }

    /// Whether a dense (pull) traversal is possible.
    pub fn has_in_view(&self) -> bool {
        self.symmetric || self.in_graph.is_some()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the source graph was symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Total compressed adjacency bytes (gaps and weights interleaved).
    /// Excludes the optional transpose; see [`footprint_bytes`](Self::footprint_bytes).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total in-memory footprint in bytes: byte-coded blocks plus the
    /// offset/degree arrays, including an attached transpose.
    pub fn footprint_bytes(&self) -> usize {
        let own = self.data.len() + self.offsets.len() * 8 + self.degrees.len() * 4;
        own + self
            .in_graph
            .as_deref()
            .map_or(0, CompressedWGraph::footprint_bytes)
    }

    /// Decodes and visits each `(neighbor, weight)` of `v` in increasing
    /// neighbor order.
    #[inline]
    pub fn for_each_edge<F: FnMut(VertexId, u32)>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize];
        if deg == 0 {
            return;
        }
        let mut pos = self.offsets[v as usize] as usize;
        let first = zigzag_decode(get_varint(&self.data, &mut pos));
        let mut cur = (v as i64 + first) as u32;
        let w = get_varint(&self.data, &mut pos) as u32;
        f(cur, w);
        for _ in 1..deg {
            cur += get_varint(&self.data, &mut pos) as u32;
            let w = get_varint(&self.data, &mut pos) as u32;
            f(cur, w);
        }
    }

    /// Decodes `(neighbor, weight)` pairs of `v` in increasing neighbor
    /// order until `f` returns `false` (early decode stop).
    #[inline]
    pub fn for_each_edge_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize];
        if deg == 0 {
            return;
        }
        let mut pos = self.offsets[v as usize] as usize;
        let first = zigzag_decode(get_varint(&self.data, &mut pos));
        let mut cur = (v as i64 + first) as u32;
        let w = get_varint(&self.data, &mut pos) as u32;
        if !f(cur, w) {
            return;
        }
        for _ in 1..deg {
            cur += get_varint(&self.data, &mut pos) as u32;
            let w = get_varint(&self.data, &mut pos) as u32;
            if !f(cur, w) {
                return;
            }
        }
    }

    /// Decodes `v`'s edges into a fresh vector (test/debug helper).
    pub fn edges_vec(&self, v: VertexId) -> Vec<(VertexId, u32)> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_edge(v, |u, w| out.push((u, w)));
        out
    }

    /// The raw storage arrays `(offsets, degrees, data)` — what the `.jgr`
    /// container embeds verbatim as its compressed-payload sections.
    pub fn raw_parts(&self) -> (&[u64], &[u32], &[u8]) {
        (&self.offsets, &self.degrees, &self.data)
    }

    /// Rebuilds a graph from storage arrays produced by
    /// [`CompressedWGraph::raw_parts`] (the `.jgr` load path).
    pub fn from_raw_parts(
        n: usize,
        m: usize,
        offsets: Vec<u64>,
        degrees: Vec<u32>,
        data: Vec<u8>,
        symmetric: bool,
        in_graph: Option<Box<CompressedWGraph>>,
    ) -> Self {
        assert_eq!(offsets.len(), n + 1);
        assert_eq!(degrees.len(), n);
        CompressedWGraph {
            n,
            m,
            offsets,
            degrees,
            data,
            symmetric,
            in_graph,
        }
    }

    /// Decompresses back into a weighted CSR.
    pub fn to_csr(&self) -> Csr<u32> {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &self.degrees {
            acc += d as u64;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; self.m];
        let mut weights = vec![0u32; self.m];
        let starts = offsets.clone();
        {
            use julienne_primitives::unsafe_write::DisjointWriter;
            let wt = DisjointWriter::new(&mut targets);
            let ww = DisjointWriter::new(&mut weights);
            (0..self.n as VertexId).into_par_iter().for_each(|v| {
                let mut k = starts[v as usize] as usize;
                self.for_each_edge(v, |u, w| {
                    // SAFETY: each vertex owns a disjoint target range.
                    unsafe {
                        wt.write(k, u);
                        ww.write(k, w);
                    }
                    k += 1;
                });
            });
        }
        Csr::from_parts(offsets, targets, weights, self.symmetric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, rmat, RmatParams};

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for x in [-5i64, -1, 0, 1, 5, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(zigzag_decode(zigzag_encode(x)), x);
        }
    }

    #[test]
    fn compress_roundtrip_er() {
        let g = erdos_renyi(2000, 20_000, 42, false);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        let back = c.to_csr();
        for v in 0..g.num_vertices() as VertexId {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(back.neighbors(v), &want[..]);
            assert_eq!(c.neighbors_vec(v), want);
        }
    }

    #[test]
    fn compression_shrinks_rmat() {
        let g = rmat(14, 8, RmatParams::default(), 1, true);
        let c = CompressedGraph::from_csr(&g);
        let raw_bytes = g.num_edges() * 4;
        assert!(
            c.compressed_bytes() < raw_bytes,
            "compressed {} >= raw {}",
            c.compressed_bytes(),
            raw_bytes
        );
        // And it still decodes correctly on a sample.
        for v in (0..g.num_vertices() as VertexId).step_by(97) {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(c.neighbors_vec(v), want);
        }
    }

    #[test]
    fn compressed_binary_roundtrip() {
        let g = rmat(11, 8, RmatParams::default(), 2, true);
        let c = CompressedGraph::from_csr(&g);
        let p = std::env::temp_dir().join(format!("julienne-cgrs-{}", std::process::id()));
        c.write_to(&p).unwrap();
        let back = CompressedGraph::read_from(&p).unwrap();
        assert_eq!(back.num_vertices(), c.num_vertices());
        assert_eq!(back.num_edges(), c.num_edges());
        assert_eq!(back.is_symmetric(), c.is_symmetric());
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            assert_eq!(back.neighbors_vec(v), c.neighbors_vec(v));
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn weighted_compress_roundtrip() {
        use crate::transform::assign_weights;
        let g = assign_weights(&erdos_renyi(1500, 12_000, 8, true), 1, 1000, 9);
        let c = CompressedWGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert!(c.is_symmetric());
        for v in 0..g.num_vertices() as VertexId {
            let mut want: Vec<(u32, u32)> = g.edges_of(v).collect();
            want.sort_unstable();
            assert_eq!(c.edges_vec(v), want);
            assert_eq!(c.degree(v), g.degree(v));
        }
        // Interleaved weights still compress below the 8-byte raw pair.
        assert!(c.compressed_bytes() < g.num_edges() * 8);
    }

    #[test]
    fn neighbor_until_stops_early() {
        let g = crate::builder::from_pairs(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = CompressedGraph::from_csr(&g);
        let mut seen = Vec::new();
        c.for_each_neighbor_until(0, |u| {
            seen.push(u);
            seen.len() < 3
        });
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn transpose_views() {
        let g = rmat(9, 6, RmatParams::default(), 4, false);
        let c = CompressedGraph::from_csr(&g);
        assert!(!c.has_in_view());
        let c = c.with_transpose();
        assert!(c.has_in_view());
        let want = crate::transform::transpose(&g);
        let iv = c.in_view().unwrap();
        for v in (0..g.num_vertices() as VertexId).step_by(13) {
            let mut w = want.neighbors(v).to_vec();
            w.sort_unstable();
            assert_eq!(iv.neighbors_vec(v), w, "in-neighbors of {v}");
        }
        // from_csr picks up an attached transpose automatically.
        let c2 = CompressedGraph::from_csr(&g.clone().with_transpose());
        assert!(c2.has_in_view());
        // Footprint accounts for the transpose.
        assert!(c2.footprint_bytes() > CompressedGraph::from_csr(&g).footprint_bytes());
    }

    #[test]
    fn weighted_transpose_and_roundtrip() {
        use crate::transform::assign_weights;
        let g = assign_weights(&rmat(9, 6, RmatParams::default(), 6, false), 1, 50, 3);
        let c = CompressedWGraph::from_csr(&g);
        assert!(!c.has_in_view());
        let c = c.with_transpose();
        assert!(c.has_in_view());
        let back = c.to_csr();
        for v in 0..g.num_vertices() as VertexId {
            let mut want: Vec<(u32, u32)> = g.edges_of(v).collect();
            want.sort_unstable();
            let got: Vec<(u32, u32)> = back.edges_of(v).collect();
            assert_eq!(got, want, "edges of {v}");
        }
        // Early-exit weighted decode.
        let sym = CompressedWGraph::from_csr(&assign_weights(
            &crate::builder::from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3)]),
            1,
            9,
            5,
        ));
        let mut seen = 0;
        sym.for_each_edge_until(0, |_, _| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g = crate::builder::from_pairs(5, &[(0, 4)]);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(c.neighbors_vec(0), vec![4]);
        for v in 1..4 {
            assert!(c.neighbors_vec(v).is_empty());
            assert_eq!(c.degree(v), 0);
        }
    }
}
