//! Ligra+-style byte-code compression of adjacency lists.
//!
//! Each vertex's sorted neighbor list is difference-encoded: the first
//! neighbor as a zig-zag signed delta from the vertex id, the rest as
//! unsigned gaps from the previous neighbor, all written as LEB128-style
//! variable-length byte codes. The paper relies on this (via Ligra+) to fit
//! the 225B-edge Hyperlink graph in 1TB; here it demonstrates the same
//! neighbor-iteration abstraction on compressed storage.
//!
//! Decoding runs on the table-driven cursor in [`crate::decode`] — a
//! first-byte code table plus a word-at-a-time continuation scan — with the
//! gap accumulation fused into the traversal loops, so the hot path is one
//! table lookup per edge for the common 1-byte codeword.
//!
//! # Chunked blocks
//!
//! A block whose degree exceeds the graph's *chunk size* is split into
//! fixed-size decode chunks, mirroring how CSR splits giant adjacency
//! ranges across `num_chunks` sub-tasks: the block begins with the byte
//! lengths of all-but-the-last chunk body (varints; the last length is
//! implied by the block end), followed by the bodies, each re-anchored on
//! its own first edge (zig-zag delta from the vertex id). Chunk `c` covers
//! local edges `[c·cs, min((c+1)·cs, deg))`, so edgeMap can decode the
//! chunks of one high-degree vertex in parallel instead of serializing on
//! the whole block. `chunk_size == 0` is the legacy unchunked layout —
//! byte-identical to what pre-chunking builds (and `.jgr` payloads) encode.

use crate::csr::Csr;
use crate::decode::{put_varint, zigzag_decode, zigzag_encode, BlockDecoder};
use crate::VertexId;
use julienne_primitives::scan::prefix_sums;
use rayon::prelude::*;

/// Default edges-per-chunk for freshly encoded graphs. Small enough that a
/// hub vertex yields many parallel decode tasks, large enough that the
/// per-chunk header byte and re-anchor cost is noise (<1% size overhead on
/// power-law graphs).
pub const DEFAULT_CHUNK_SIZE: u32 = 256;

/// A compressed unweighted graph: per-vertex byte-coded neighbor blocks.
#[derive(Clone, Debug)]
pub struct CompressedGraph {
    n: usize,
    m: usize,
    /// Byte offset of each vertex's block (length n+1).
    offsets: Vec<u64>,
    /// Out-degree of each vertex (needed to know where to stop decoding).
    degrees: Vec<u32>,
    /// Concatenated byte-coded blocks.
    data: Vec<u8>,
    /// Edges per decode chunk; 0 = legacy unchunked blocks.
    chunk_size: u32,
    symmetric: bool,
    /// Byte-compressed transpose for dense (pull) traversals of directed
    /// graphs; symmetric graphs are their own in-view and leave this empty.
    in_graph: Option<Box<CompressedGraph>>,
}

/// Encodes one run of sorted neighbors: zig-zag first delta, then gaps.
fn encode_run(v: VertexId, neighbors: &[VertexId], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &u) in neighbors.iter().enumerate() {
        if i == 0 {
            put_varint(out, zigzag_encode(u as i64 - v as i64));
        } else {
            put_varint(out, (u - prev) as u64);
        }
        prev = u;
    }
}

/// Lays out one block, splitting into decode chunks when the degree
/// exceeds `chunk_size` (see the module docs for the layout).
fn encode_chunked(
    deg: usize,
    chunk_size: usize,
    out: &mut Vec<u8>,
    mut encode_range: impl FnMut(usize, usize, &mut Vec<u8>),
) {
    if chunk_size == 0 || deg <= chunk_size {
        encode_range(0, deg, out);
        return;
    }
    let nc = deg.div_ceil(chunk_size);
    let mut bodies = Vec::with_capacity(deg * 2);
    let mut lens = Vec::with_capacity(nc);
    let mut lo = 0;
    while lo < deg {
        let hi = (lo + chunk_size).min(deg);
        let start = bodies.len();
        encode_range(lo, hi, &mut bodies);
        lens.push(bodies.len() - start);
        lo = hi;
    }
    for &l in &lens[..nc - 1] {
        put_varint(out, l as u64);
    }
    out.extend_from_slice(&bodies);
}

fn encode_block(v: VertexId, neighbors: &[VertexId], chunk_size: usize, out: &mut Vec<u8>) {
    debug_assert!(neighbors.windows(2).all(|w| w[0] < w[1]), "must be sorted");
    encode_chunked(neighbors.len(), chunk_size, out, |lo, hi, buf| {
        encode_run(v, &neighbors[lo..hi], buf);
    });
}

/// Decodes one neighbor run with the gap accumulation fused in, stopping
/// when `f` returns `false`. Wrapping adds keep debug and release behavior
/// identical on (unvalidated, in-memory) corrupt input; validated graphs
/// never wrap.
#[inline]
fn decode_run<F: FnMut(VertexId) -> bool>(
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
    f: &mut F,
) -> bool {
    let mut cur = (v as i64).wrapping_add(zigzag_decode(dec.varint())) as VertexId;
    if !f(cur) {
        return false;
    }
    for _ in 1..cnt {
        cur = cur.wrapping_add(dec.varint() as VertexId);
        if !f(cur) {
            return false;
        }
    }
    true
}

/// [`decode_run`] without the early-exit plumbing: the whole run is
/// decoded unconditionally, keeping the per-edge loop free of the bool
/// check for the (dominant) full-scan traversals.
#[inline(always)]
fn decode_run_all<F: FnMut(VertexId)>(
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
    f: &mut F,
) {
    let cur = (v as i64).wrapping_add(zigzag_decode(dec.varint())) as VertexId;
    f(cur);
    // Fused bulk decode: the window scan peels several codewords per
    // 8-byte load *and* carries the gap accumulation, so uniform windows
    // produce neighbor ids through a log-depth prefix tree instead of a
    // serial per-edge add chain.
    dec.for_each_delta_sum(cur, cnt - 1, f);
}

/// Weighted twin of [`decode_run`]: gap and weight codewords interleave.
#[inline]
fn decode_wrun<F: FnMut(VertexId, u32) -> bool>(
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
    f: &mut F,
) -> bool {
    let mut cur = (v as i64).wrapping_add(zigzag_decode(dec.varint())) as VertexId;
    let w = dec.varint() as u32;
    if !f(cur, w) {
        return false;
    }
    for _ in 1..cnt {
        cur = cur.wrapping_add(dec.varint() as VertexId);
        let w = dec.varint() as u32;
        if !f(cur, w) {
            return false;
        }
    }
    true
}

/// [`decode_wrun`] without the early-exit plumbing.
#[inline(always)]
fn decode_wrun_all<F: FnMut(VertexId, u32)>(
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
    f: &mut F,
) {
    let cur = (v as i64).wrapping_add(zigzag_decode(dec.varint())) as VertexId;
    f(cur, dec.varint() as u32);
    // Fused pair decode: the window scan peels (gap, weight) pairs with
    // the accumulation and interleave built in, so uniform runs decode
    // four pairs per load instead of toggling parity per codeword.
    dec.for_each_delta_weight(cur, cnt - 1, f);
}

/// Structural checks shared by both compressed graph types: array lengths,
/// monotone offsets covering `data` exactly, and degrees summing to `m`.
fn validate_parts(
    n: usize,
    m: usize,
    offsets: &[u64],
    degrees: &[u32],
    data_len: usize,
) -> Result<(), String> {
    if offsets.len() != n + 1 {
        return Err(format!(
            "offsets length {} != n+1 = {}",
            offsets.len(),
            n + 1
        ));
    }
    if degrees.len() != n {
        return Err(format!("degrees length {} != n = {n}", degrees.len()));
    }
    if offsets[0] != 0 {
        return Err(format!("offsets[0] = {} != 0", offsets[0]));
    }
    if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
        return Err(format!("offsets not monotone ({} > {})", w[0], w[1]));
    }
    if offsets[n] != data_len as u64 {
        return Err(format!(
            "offsets[n] = {} != data length {data_len}",
            offsets[n]
        ));
    }
    let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    if sum != m as u64 {
        return Err(format!("degree sum {sum} != m = {m}"));
    }
    Ok(())
}

/// Walks every block in parallel with the fallible decoder, proving each
/// one decodes to exactly its degree within its byte span. `run` validates
/// one (re-anchored) chunk body of `cnt` edges.
fn validate_blocks(
    n: usize,
    offsets: &[u64],
    degrees: &[u32],
    data: &[u8],
    chunk_size: u32,
    run: impl Fn(&mut BlockDecoder<'_>, VertexId, usize) -> Result<(), String> + Sync,
) -> Result<(), String> {
    let errs: Vec<String> = (0..n as VertexId)
        .into_par_iter()
        .filter_map(|v| {
            validate_block(v, offsets, degrees, data, chunk_size, &run)
                .err()
                .map(|e| format!("vertex {v}: {e}"))
        })
        .collect();
    errs.into_iter().next().map_or(Ok(()), Err)
}

fn validate_block(
    v: VertexId,
    offsets: &[u64],
    degrees: &[u32],
    data: &[u8],
    chunk_size: u32,
    run: &(impl Fn(&mut BlockDecoder<'_>, VertexId, usize) -> Result<(), String> + Sync),
) -> Result<(), String> {
    let deg = degrees[v as usize] as usize;
    let block = &data[offsets[v as usize] as usize..offsets[v as usize + 1] as usize];
    if deg == 0 {
        return if block.is_empty() {
            Ok(())
        } else {
            Err(format!("{} bytes in zero-degree block", block.len()))
        };
    }
    let cs = chunk_size as usize;
    let mut dec = BlockDecoder::new(block);
    if cs != 0 && deg > cs {
        let nc = deg.div_ceil(cs);
        let mut lens = Vec::with_capacity(nc - 1);
        for _ in 0..nc - 1 {
            lens.push(dec.try_varint().map_err(String::from)?);
        }
        let mut done = 0;
        let mut ci = 0;
        while done < deg {
            let cnt = cs.min(deg - done);
            let start = dec.pos();
            run(&mut dec, v, cnt)?;
            if ci + 1 < nc && (dec.pos() - start) as u64 != lens[ci] {
                return Err(format!(
                    "chunk {ci} body is {} bytes, header says {}",
                    dec.pos() - start,
                    lens[ci]
                ));
            }
            done += cnt;
            ci += 1;
        }
    } else {
        run(&mut dec, v, deg)?;
    }
    if dec.pos() != block.len() {
        return Err(format!(
            "{} trailing bytes in block",
            block.len() - dec.pos()
        ));
    }
    Ok(())
}

/// Validates one unweighted chunk body: in-range first delta, gaps that
/// stay inside `[0, n)`.
fn validate_run(
    n: usize,
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
) -> Result<(), String> {
    let first = zigzag_decode(dec.try_varint().map_err(String::from)?);
    let u0 = (v as i64)
        .checked_add(first)
        .filter(|&u| 0 <= u && u < n as i64)
        .ok_or_else(|| format!("first neighbor delta {first} leaves vertex range"))?;
    let mut cur = u0 as u64;
    for _ in 1..cnt {
        let gap = dec.try_varint().map_err(String::from)?;
        cur = cur
            .checked_add(gap)
            .filter(|&u| u < n as u64)
            .ok_or_else(|| format!("neighbor gap {gap} leaves vertex range"))?;
    }
    Ok(())
}

/// Weighted twin of [`validate_run`]: each gap is followed by a weight
/// codeword that must fit `u32`.
fn validate_wrun(
    n: usize,
    v: VertexId,
    dec: &mut BlockDecoder<'_>,
    cnt: usize,
) -> Result<(), String> {
    let check_weight = |w: u64| {
        if w > u64::from(u32::MAX) {
            Err(format!("weight {w} overflows u32"))
        } else {
            Ok(())
        }
    };
    let first = zigzag_decode(dec.try_varint().map_err(String::from)?);
    let u0 = (v as i64)
        .checked_add(first)
        .filter(|&u| 0 <= u && u < n as i64)
        .ok_or_else(|| format!("first neighbor delta {first} leaves vertex range"))?;
    check_weight(dec.try_varint().map_err(String::from)?)?;
    let mut cur = u0 as u64;
    for _ in 1..cnt {
        let gap = dec.try_varint().map_err(String::from)?;
        cur = cur
            .checked_add(gap)
            .filter(|&u| u < n as u64)
            .ok_or_else(|| format!("neighbor gap {gap} leaves vertex range"))?;
        check_weight(dec.try_varint().map_err(String::from)?)?;
    }
    Ok(())
}

/// `.cgr` magic, version 1: unchunked blocks, no chunk-size field.
const MAGIC_V1: u64 = 0x4A43_4F4D_5052_4753; // "JCOMPRGS"
/// `.cgr` magic, version 2: adds the chunk size after the symmetric flag.
const MAGIC_V2: u64 = 0x4A43_4F4D_5052_4732; // "JCOMPRG2"

impl CompressedGraph {
    /// Compresses `g` with the default chunked layout (neighbor lists are
    /// sorted first if needed). If `g` is directed and carries an attached
    /// transpose, the transpose is compressed too, so the dense (pull)
    /// traversal path keeps working on the compressed form.
    pub fn from_csr(g: &Csr<()>) -> Self {
        Self::from_csr_with_chunk_size(g, DEFAULT_CHUNK_SIZE)
    }

    /// Compresses `g` with an explicit decode-chunk size (`0` = legacy
    /// unchunked blocks, byte-identical to pre-chunking encodes).
    pub fn from_csr_with_chunk_size(g: &Csr<()>, chunk_size: u32) -> Self {
        let mut this = Self::encode_out(g, chunk_size);
        if !g.is_symmetric() {
            if let Some(t) = g.in_view() {
                this.in_graph = Some(Box::new(Self::encode_out(t, chunk_size)));
            }
        }
        this
    }

    /// Compresses just the out-adjacency of `g` (no transpose handling).
    fn encode_out(g: &Csr<()>, chunk_size: u32) -> Self {
        let n = g.num_vertices();
        // Encode every vertex block in parallel into per-vertex buffers.
        let blocks: Vec<Vec<u8>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut nbrs = g.neighbors(v).to_vec();
                nbrs.sort_unstable();
                let mut buf = Vec::with_capacity(nbrs.len() * 2);
                encode_block(v, &nbrs, chunk_size as usize, &mut buf);
                buf
            })
            .collect();
        let mut counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        counts.push(0);
        let total = prefix_sums(&mut counts);
        let offsets: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        let mut data = vec![0u8; total];
        for (v, block) in blocks.iter().enumerate() {
            data[offsets[v] as usize..offsets[v] as usize + block.len()].copy_from_slice(block);
        }
        CompressedGraph {
            n,
            m: g.num_edges(),
            offsets,
            degrees: g.degrees(),
            data,
            chunk_size,
            symmetric: g.is_symmetric(),
            in_graph: None,
        }
    }

    /// Attaches a compressed transpose so dense traversals work on directed
    /// compressed graphs (no-op when symmetric or already attached).
    pub fn with_transpose(mut self) -> Self {
        if !self.symmetric && self.in_graph.is_none() {
            let t = crate::transform::transpose(&self.to_csr());
            self.in_graph = Some(Box::new(Self::encode_out(&t, self.chunk_size)));
        }
        self
    }

    /// The in-adjacency view used by dense (pull) traversals: the graph
    /// itself when symmetric, the compressed transpose when attached,
    /// `None` otherwise.
    pub fn in_view(&self) -> Option<&CompressedGraph> {
        if self.symmetric {
            Some(self)
        } else {
            self.in_graph.as_deref()
        }
    }

    /// Whether a dense (pull) traversal is possible.
    pub fn has_in_view(&self) -> bool {
        self.symmetric || self.in_graph.is_some()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the source graph was symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Edges per decode chunk (`0` = legacy unchunked blocks).
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Number of independently decodable chunks of `v`'s block (1 for any
    /// block at or under the chunk size, and for legacy layouts).
    #[inline]
    pub fn num_chunks_of(&self, v: VertexId) -> usize {
        let deg = self.degrees[v as usize] as usize;
        let cs = self.chunk_size as usize;
        if cs == 0 || deg <= cs {
            1
        } else {
            deg.div_ceil(cs)
        }
    }

    /// Total compressed adjacency bytes (for reporting compression ratios).
    /// Excludes the optional transpose; see [`footprint_bytes`](Self::footprint_bytes).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total in-memory footprint in bytes: byte-coded blocks plus the
    /// offset/degree arrays, including an attached transpose.
    pub fn footprint_bytes(&self) -> usize {
        let own = self.data.len() + self.offsets.len() * 8 + self.degrees.len() * 4;
        own + self
            .in_graph
            .as_deref()
            .map_or(0, CompressedGraph::footprint_bytes)
    }

    /// Decodes and visits each out-neighbor of `v` in increasing order.
    /// Fused full-run decode: no early-exit check per edge.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        let cs = self.chunk_size as usize;
        if cs != 0 && deg > cs {
            dec.skip_varints(deg.div_ceil(cs) - 1);
            let mut done = 0;
            while done < deg {
                let cnt = cs.min(deg - done);
                decode_run_all(v, &mut dec, cnt, &mut f);
                done += cnt;
            }
        } else {
            decode_run_all(v, &mut dec, deg, &mut f);
        }
    }

    /// Decodes out-neighbors of `v` in increasing order until `f` returns
    /// `false` — the decode stops mid-block, so a pull traversal's early
    /// exit skips the remaining varints entirely.
    #[inline]
    pub fn for_each_neighbor_until<F: FnMut(VertexId) -> bool>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        let cs = self.chunk_size as usize;
        if cs != 0 && deg > cs {
            dec.skip_varints(deg.div_ceil(cs) - 1);
            let mut done = 0;
            while done < deg {
                let cnt = cs.min(deg - done);
                if !decode_run(v, &mut dec, cnt, &mut f) {
                    return;
                }
                done += cnt;
            }
        } else {
            decode_run(v, &mut dec, deg, &mut f);
        }
    }

    /// Decodes only chunk `c` of `v`'s block — local edge range
    /// `[c·cs, min((c+1)·cs, deg))` — jumping straight to its body via the
    /// block header. Chunks of one vertex may be decoded concurrently.
    #[inline]
    pub fn for_each_neighbor_chunk<F: FnMut(VertexId)>(&self, v: VertexId, c: usize, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            debug_assert_eq!(c, 0, "chunk {c} of empty block");
            return;
        }
        let cs = self.chunk_size as usize;
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        if cs == 0 || deg <= cs {
            assert_eq!(c, 0, "unchunked block has a single chunk");
            decode_run_all(v, &mut dec, deg, &mut f);
            return;
        }
        let nc = deg.div_ceil(cs);
        assert!(c < nc, "chunk {c} out of range ({nc} chunks)");
        let mut skip = 0u64;
        for i in 0..nc - 1 {
            let l = dec.varint();
            if i < c {
                skip += l;
            }
        }
        dec.advance(skip as usize);
        let cnt = cs.min(deg - c * cs);
        decode_run_all(v, &mut dec, cnt, &mut f);
    }

    /// Decodes `v`'s neighbors into a fresh vector (test/debug helper).
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// Serialises to the compressed binary format (so the decode-on-the-fly
    /// representation can be the *storage* format too, as in Ligra+).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        use bytes::BufMut;
        use std::io::Write as _;
        let mut buf: Vec<u8> = Vec::with_capacity(32 + 12 * self.n + self.data.len());
        buf.put_u64_le(MAGIC_V2);
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.m as u64);
        buf.put_u8(u8::from(self.symmetric));
        buf.put_u32_le(self.chunk_size);
        for &o in &self.offsets {
            buf.put_u64_le(o);
        }
        for &d in &self.degrees {
            buf.put_u32_le(d);
        }
        buf.put_u64_le(self.data.len() as u64);
        buf.extend_from_slice(&self.data);
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(&buf)?;
        out.flush()
    }

    /// Reads a graph written by [`CompressedGraph::write_to`] (either
    /// version: v1 files decode as legacy unchunked blocks). The payload is
    /// fully validated — corrupt files fail with `InvalidData`, never a
    /// traversal-time panic.
    pub fn read_from(path: &std::path::Path) -> std::io::Result<CompressedGraph> {
        use bytes::Buf;
        use std::io::Read as _;
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        let mut buf: &[u8] = &raw;
        if buf.remaining() < 25 {
            return Err(bad("truncated header".into()));
        }
        let chunked = match buf.get_u64_le() {
            MAGIC_V1 => false,
            MAGIC_V2 => true,
            _ => return Err(bad("bad magic".into())),
        };
        let n = buf.get_u64_le() as usize;
        let m = buf.get_u64_le() as usize;
        let symmetric = buf.get_u8() != 0;
        let chunk_size = if chunked {
            if buf.remaining() < 4 {
                return Err(bad("truncated header".into()));
            }
            buf.get_u32_le()
        } else {
            0
        };
        if buf.remaining() < 8 * (n + 1) + 4 * n + 8 {
            return Err(bad("truncated header".into()));
        }
        let offsets: Vec<u64> = (0..=n).map(|_| buf.get_u64_le()).collect();
        let degrees: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(bad("truncated data".into()));
        }
        let data = buf[..len].to_vec();
        Self::try_from_raw_parts(n, m, offsets, degrees, data, symmetric, chunk_size, None)
            .map_err(bad)
    }

    /// The raw storage arrays `(offsets, degrees, data)` — what the `.jgr`
    /// container embeds verbatim as its compressed-payload sections.
    pub fn raw_parts(&self) -> (&[u64], &[u32], &[u8]) {
        (&self.offsets, &self.degrees, &self.data)
    }

    /// Rebuilds a graph from storage arrays produced by
    /// [`CompressedGraph::raw_parts`] (the `.jgr` load path — the byte
    /// blocks are adopted verbatim, never re-encoded), failing closed on
    /// corrupt input: structural checks on offsets/degrees, then a full
    /// parallel decode walk proving every block is well-formed, in-range,
    /// and consistent with its chunk header. After this, traversals cannot
    /// read out of bounds or decode garbage.
    #[allow(clippy::too_many_arguments)]
    pub fn try_from_raw_parts(
        n: usize,
        m: usize,
        offsets: Vec<u64>,
        degrees: Vec<u32>,
        data: Vec<u8>,
        symmetric: bool,
        chunk_size: u32,
        in_graph: Option<Box<CompressedGraph>>,
    ) -> Result<Self, String> {
        validate_parts(n, m, &offsets, &degrees, data.len())?;
        validate_blocks(n, &offsets, &degrees, &data, chunk_size, |dec, v, cnt| {
            validate_run(n, v, dec, cnt)
        })?;
        if let Some(ig) = &in_graph {
            if ig.n != n || ig.m != m {
                return Err(format!(
                    "transpose shape ({}, {}) != graph shape ({n}, {m})",
                    ig.n, ig.m
                ));
            }
        }
        Ok(CompressedGraph {
            n,
            m,
            offsets,
            degrees,
            data,
            chunk_size,
            symmetric,
            in_graph,
        })
    }

    /// Decompresses back into a CSR.
    pub fn to_csr(&self) -> Csr<()> {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &self.degrees {
            acc += d as u64;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; self.m];
        let starts = offsets.clone();
        {
            use julienne_primitives::unsafe_write::DisjointWriter;
            let w = DisjointWriter::new(&mut targets);
            (0..self.n as VertexId).into_par_iter().for_each(|v| {
                let mut k = starts[v as usize] as usize;
                self.for_each_neighbor(v, |u| {
                    // SAFETY: each vertex owns a disjoint target range.
                    unsafe { w.write(k, u) };
                    k += 1;
                });
            });
        }
        Csr::from_parts(offsets, targets, vec![], self.symmetric)
    }
}

/// A compressed **weighted** graph: neighbor gaps and weights interleaved
/// per edge, as in Ligra+'s weighted byte codes. Chunking works exactly as
/// for [`CompressedGraph`], with chunk boundaries in edges (pairs).
#[derive(Clone, Debug)]
pub struct CompressedWGraph {
    n: usize,
    m: usize,
    offsets: Vec<u64>,
    degrees: Vec<u32>,
    data: Vec<u8>,
    /// Edges per decode chunk; 0 = legacy unchunked blocks.
    chunk_size: u32,
    symmetric: bool,
    /// Compressed transpose for dense pull on directed weighted graphs.
    in_graph: Option<Box<CompressedWGraph>>,
}

fn encode_wblock(v: VertexId, pairs: &[(VertexId, u32)], chunk_size: usize, out: &mut Vec<u8>) {
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "must be sorted");
    encode_chunked(pairs.len(), chunk_size, out, |lo, hi, buf| {
        let mut prev = 0u32;
        for (i, &(u, w)) in pairs[lo..hi].iter().enumerate() {
            if i == 0 {
                put_varint(buf, zigzag_encode(u as i64 - v as i64));
            } else {
                put_varint(buf, (u - prev) as u64);
            }
            put_varint(buf, w as u64);
            prev = u;
        }
    });
}

impl CompressedWGraph {
    /// Compresses a weighted CSR with the default chunked layout (neighbor
    /// lists sorted first). A directed graph's attached transpose is
    /// compressed too, preserving the dense (pull) traversal path.
    pub fn from_csr(g: &Csr<u32>) -> Self {
        Self::from_csr_with_chunk_size(g, DEFAULT_CHUNK_SIZE)
    }

    /// Compresses `g` with an explicit decode-chunk size (`0` = legacy
    /// unchunked blocks).
    pub fn from_csr_with_chunk_size(g: &Csr<u32>, chunk_size: u32) -> Self {
        let mut this = Self::encode_out(g, chunk_size);
        if !g.is_symmetric() {
            if let Some(t) = g.in_view() {
                this.in_graph = Some(Box::new(Self::encode_out(t, chunk_size)));
            }
        }
        this
    }

    /// Compresses just the out-adjacency (no transpose handling).
    fn encode_out(g: &Csr<u32>, chunk_size: u32) -> Self {
        let n = g.num_vertices();
        let blocks: Vec<Vec<u8>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut pairs: Vec<(VertexId, u32)> = g.edges_of(v).collect();
                pairs.sort_unstable();
                let mut buf = Vec::with_capacity(pairs.len() * 3);
                encode_wblock(v, &pairs, chunk_size as usize, &mut buf);
                buf
            })
            .collect();
        let mut counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        counts.push(0);
        let total = prefix_sums(&mut counts);
        let offsets: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        let mut data = vec![0u8; total];
        for (v, block) in blocks.iter().enumerate() {
            data[offsets[v] as usize..offsets[v] as usize + block.len()].copy_from_slice(block);
        }
        CompressedWGraph {
            n,
            m: g.num_edges(),
            offsets,
            degrees: g.degrees(),
            data,
            chunk_size,
            symmetric: g.is_symmetric(),
            in_graph: None,
        }
    }

    /// Attaches a compressed transpose so dense traversals work on directed
    /// compressed graphs (no-op when symmetric or already attached).
    pub fn with_transpose(mut self) -> Self {
        if !self.symmetric && self.in_graph.is_none() {
            let t = crate::transform::transpose(&self.to_csr());
            self.in_graph = Some(Box::new(Self::encode_out(&t, self.chunk_size)));
        }
        self
    }

    /// The in-adjacency view for dense (pull) traversals, if available.
    pub fn in_view(&self) -> Option<&CompressedWGraph> {
        if self.symmetric {
            Some(self)
        } else {
            self.in_graph.as_deref()
        }
    }

    /// Whether a dense (pull) traversal is possible.
    pub fn has_in_view(&self) -> bool {
        self.symmetric || self.in_graph.is_some()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the source graph was symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Edges per decode chunk (`0` = legacy unchunked blocks).
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Number of independently decodable chunks of `v`'s block.
    #[inline]
    pub fn num_chunks_of(&self, v: VertexId) -> usize {
        let deg = self.degrees[v as usize] as usize;
        let cs = self.chunk_size as usize;
        if cs == 0 || deg <= cs {
            1
        } else {
            deg.div_ceil(cs)
        }
    }

    /// Total compressed adjacency bytes (gaps and weights interleaved).
    /// Excludes the optional transpose; see [`footprint_bytes`](Self::footprint_bytes).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total in-memory footprint in bytes: byte-coded blocks plus the
    /// offset/degree arrays, including an attached transpose.
    pub fn footprint_bytes(&self) -> usize {
        let own = self.data.len() + self.offsets.len() * 8 + self.degrees.len() * 4;
        own + self
            .in_graph
            .as_deref()
            .map_or(0, CompressedWGraph::footprint_bytes)
    }

    /// Decodes and visits each `(neighbor, weight)` of `v` in increasing
    /// neighbor order. Fused full-run decode: no early-exit check per edge.
    #[inline]
    pub fn for_each_edge<F: FnMut(VertexId, u32)>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        let cs = self.chunk_size as usize;
        if cs != 0 && deg > cs {
            dec.skip_varints(deg.div_ceil(cs) - 1);
            let mut done = 0;
            while done < deg {
                let cnt = cs.min(deg - done);
                decode_wrun_all(v, &mut dec, cnt, &mut f);
                done += cnt;
            }
        } else {
            decode_wrun_all(v, &mut dec, deg, &mut f);
        }
    }

    /// Decodes `(neighbor, weight)` pairs of `v` in increasing neighbor
    /// order until `f` returns `false` (early decode stop).
    #[inline]
    pub fn for_each_edge_until<F: FnMut(VertexId, u32) -> bool>(&self, v: VertexId, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        let cs = self.chunk_size as usize;
        if cs != 0 && deg > cs {
            dec.skip_varints(deg.div_ceil(cs) - 1);
            let mut done = 0;
            while done < deg {
                let cnt = cs.min(deg - done);
                if !decode_wrun(v, &mut dec, cnt, &mut f) {
                    return;
                }
                done += cnt;
            }
        } else {
            decode_wrun(v, &mut dec, deg, &mut f);
        }
    }

    /// Decodes only chunk `c` of `v`'s block — local edge range
    /// `[c·cs, min((c+1)·cs, deg))`.
    #[inline]
    pub fn for_each_edge_chunk<F: FnMut(VertexId, u32)>(&self, v: VertexId, c: usize, mut f: F) {
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            debug_assert_eq!(c, 0, "chunk {c} of empty block");
            return;
        }
        let cs = self.chunk_size as usize;
        let mut dec = BlockDecoder::new_at(&self.data, self.offsets[v as usize] as usize);
        if cs == 0 || deg <= cs {
            assert_eq!(c, 0, "unchunked block has a single chunk");
            decode_wrun_all(v, &mut dec, deg, &mut f);
            return;
        }
        let nc = deg.div_ceil(cs);
        assert!(c < nc, "chunk {c} out of range ({nc} chunks)");
        let mut skip = 0u64;
        for i in 0..nc - 1 {
            let l = dec.varint();
            if i < c {
                skip += l;
            }
        }
        dec.advance(skip as usize);
        let cnt = cs.min(deg - c * cs);
        decode_wrun_all(v, &mut dec, cnt, &mut f);
    }

    /// Decodes `v`'s edges into a fresh vector (test/debug helper).
    pub fn edges_vec(&self, v: VertexId) -> Vec<(VertexId, u32)> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_edge(v, |u, w| out.push((u, w)));
        out
    }

    /// The raw storage arrays `(offsets, degrees, data)` — what the `.jgr`
    /// container embeds verbatim as its compressed-payload sections.
    pub fn raw_parts(&self) -> (&[u64], &[u32], &[u8]) {
        (&self.offsets, &self.degrees, &self.data)
    }

    /// Rebuilds a graph from storage arrays produced by
    /// [`CompressedWGraph::raw_parts`] (the `.jgr` load path), failing
    /// closed on corrupt input exactly like
    /// [`CompressedGraph::try_from_raw_parts`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_from_raw_parts(
        n: usize,
        m: usize,
        offsets: Vec<u64>,
        degrees: Vec<u32>,
        data: Vec<u8>,
        symmetric: bool,
        chunk_size: u32,
        in_graph: Option<Box<CompressedWGraph>>,
    ) -> Result<Self, String> {
        validate_parts(n, m, &offsets, &degrees, data.len())?;
        validate_blocks(n, &offsets, &degrees, &data, chunk_size, |dec, v, cnt| {
            validate_wrun(n, v, dec, cnt)
        })?;
        if let Some(ig) = &in_graph {
            if ig.n != n || ig.m != m {
                return Err(format!(
                    "transpose shape ({}, {}) != graph shape ({n}, {m})",
                    ig.n, ig.m
                ));
            }
        }
        Ok(CompressedWGraph {
            n,
            m,
            offsets,
            degrees,
            data,
            chunk_size,
            symmetric,
            in_graph,
        })
    }

    /// Decompresses back into a weighted CSR.
    pub fn to_csr(&self) -> Csr<u32> {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &self.degrees {
            acc += d as u64;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; self.m];
        let mut weights = vec![0u32; self.m];
        let starts = offsets.clone();
        {
            use julienne_primitives::unsafe_write::DisjointWriter;
            let wt = DisjointWriter::new(&mut targets);
            let ww = DisjointWriter::new(&mut weights);
            (0..self.n as VertexId).into_par_iter().for_each(|v| {
                let mut k = starts[v as usize] as usize;
                self.for_each_edge(v, |u, w| {
                    // SAFETY: each vertex owns a disjoint target range.
                    unsafe {
                        wt.write(k, u);
                        ww.write(k, w);
                    }
                    k += 1;
                });
            });
        }
        Csr::from_parts(offsets, targets, weights, self.symmetric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, rmat, RmatParams};

    #[test]
    fn compress_roundtrip_er() {
        let g = erdos_renyi(2000, 20_000, 42, false);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        let back = c.to_csr();
        for v in 0..g.num_vertices() as VertexId {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(back.neighbors(v), &want[..]);
            assert_eq!(c.neighbors_vec(v), want);
        }
    }

    #[test]
    fn compression_shrinks_rmat() {
        let g = rmat(14, 8, RmatParams::default(), 1, true);
        let c = CompressedGraph::from_csr(&g);
        let raw_bytes = g.num_edges() * 4;
        assert!(
            c.compressed_bytes() < raw_bytes,
            "compressed {} >= raw {}",
            c.compressed_bytes(),
            raw_bytes
        );
        // And it still decodes correctly on a sample.
        for v in (0..g.num_vertices() as VertexId).step_by(97) {
            let mut want = g.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(c.neighbors_vec(v), want);
        }
    }

    #[test]
    fn chunked_layouts_decode_identically() {
        // Every chunk size — including pathological 1 — must decode to the
        // same neighbor lists as the legacy unchunked layout.
        let g = rmat(11, 8, RmatParams::default(), 3, true);
        let legacy = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        for cs in [1u32, 3, 8, 64, DEFAULT_CHUNK_SIZE] {
            let c = CompressedGraph::from_csr_with_chunk_size(&g, cs);
            assert_eq!(c.chunk_size(), cs);
            for v in 0..g.num_vertices() as VertexId {
                assert_eq!(c.neighbors_vec(v), legacy.neighbors_vec(v), "cs={cs} v={v}");
            }
        }
    }

    #[test]
    fn chunk_decode_matches_whole_block() {
        // Concatenating per-chunk decodes reproduces the full list, and a
        // star hub splits into the expected number of chunks.
        let pairs: Vec<(VertexId, VertexId)> = (1..=20).map(|u| (0, u)).collect();
        let g = crate::builder::from_pairs(21, &pairs);
        let c = CompressedGraph::from_csr_with_chunk_size(&g, 6);
        assert_eq!(c.num_chunks_of(0), 4); // 20 edges / 6 per chunk
        assert_eq!(c.num_chunks_of(5), 1);
        let mut got = Vec::new();
        for ch in 0..c.num_chunks_of(0) {
            let before = got.len();
            c.for_each_neighbor_chunk(0, ch, |u| got.push(u));
            let cnt = got.len() - before;
            assert_eq!(cnt, if ch < 3 { 6 } else { 2 }, "chunk {ch} count");
        }
        assert_eq!(got, c.neighbors_vec(0));
        assert_eq!(got, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_chunk_decode_matches_whole_block() {
        use crate::transform::assign_weights;
        let g = assign_weights(&erdos_renyi(600, 24_000, 11, true), 1, 1000, 7);
        let legacy = CompressedWGraph::from_csr_with_chunk_size(&g, 0);
        let c = CompressedWGraph::from_csr_with_chunk_size(&g, 8);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(c.edges_vec(v), legacy.edges_vec(v), "v={v}");
            let mut got = Vec::new();
            for ch in 0..c.num_chunks_of(v) {
                c.for_each_edge_chunk(v, ch, |u, w| got.push((u, w)));
            }
            assert_eq!(got, c.edges_vec(v), "chunk concat v={v}");
        }
    }

    #[test]
    fn compressed_binary_roundtrip() {
        let g = rmat(11, 8, RmatParams::default(), 2, true);
        let c = CompressedGraph::from_csr(&g);
        let p = std::env::temp_dir().join(format!("julienne-cgrs-{}", std::process::id()));
        c.write_to(&p).unwrap();
        let back = CompressedGraph::read_from(&p).unwrap();
        assert_eq!(back.num_vertices(), c.num_vertices());
        assert_eq!(back.num_edges(), c.num_edges());
        assert_eq!(back.is_symmetric(), c.is_symmetric());
        assert_eq!(back.chunk_size(), c.chunk_size());
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            assert_eq!(back.neighbors_vec(v), c.neighbors_vec(v));
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn legacy_v1_binary_still_loads() {
        // A v1 file (old magic, no chunk-size field) decodes as the legacy
        // unchunked layout.
        use bytes::BufMut;
        let g = erdos_renyi(300, 3_000, 5, true);
        let c = CompressedGraph::from_csr_with_chunk_size(&g, 0);
        let (offsets, degrees, data) = c.raw_parts();
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u64_le(MAGIC_V1);
        buf.put_u64_le(c.num_vertices() as u64);
        buf.put_u64_le(c.num_edges() as u64);
        buf.put_u8(1);
        for &o in offsets {
            buf.put_u64_le(o);
        }
        for &d in degrees {
            buf.put_u32_le(d);
        }
        buf.put_u64_le(data.len() as u64);
        buf.extend_from_slice(data);
        let p = std::env::temp_dir().join(format!("julienne-cgr-v1-{}", std::process::id()));
        std::fs::write(&p, &buf).unwrap();
        let back = CompressedGraph::read_from(&p).unwrap();
        assert_eq!(back.chunk_size(), 0);
        for v in 0..c.num_vertices() as VertexId {
            assert_eq!(back.neighbors_vec(v), c.neighbors_vec(v));
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn weighted_compress_roundtrip() {
        use crate::transform::assign_weights;
        let g = assign_weights(&erdos_renyi(1500, 12_000, 8, true), 1, 1000, 9);
        let c = CompressedWGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert!(c.is_symmetric());
        for v in 0..g.num_vertices() as VertexId {
            let mut want: Vec<(u32, u32)> = g.edges_of(v).collect();
            want.sort_unstable();
            assert_eq!(c.edges_vec(v), want);
            assert_eq!(c.degree(v), g.degree(v));
        }
        // Interleaved weights still compress below the 8-byte raw pair.
        assert!(c.compressed_bytes() < g.num_edges() * 8);
    }

    #[test]
    fn neighbor_until_stops_early() {
        let g = crate::builder::from_pairs(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        for cs in [0u32, 2] {
            let c = CompressedGraph::from_csr_with_chunk_size(&g, cs);
            let mut seen = Vec::new();
            c.for_each_neighbor_until(0, |u| {
                seen.push(u);
                seen.len() < 3
            });
            assert_eq!(seen, vec![1, 2, 3], "cs={cs}");
        }
    }

    #[test]
    fn transpose_views() {
        let g = rmat(9, 6, RmatParams::default(), 4, false);
        let c = CompressedGraph::from_csr(&g);
        assert!(!c.has_in_view());
        let c = c.with_transpose();
        assert!(c.has_in_view());
        let want = crate::transform::transpose(&g);
        let iv = c.in_view().unwrap();
        for v in (0..g.num_vertices() as VertexId).step_by(13) {
            let mut w = want.neighbors(v).to_vec();
            w.sort_unstable();
            assert_eq!(iv.neighbors_vec(v), w, "in-neighbors of {v}");
        }
        // from_csr picks up an attached transpose automatically.
        let c2 = CompressedGraph::from_csr(&g.clone().with_transpose());
        assert!(c2.has_in_view());
        // Footprint accounts for the transpose.
        assert!(c2.footprint_bytes() > CompressedGraph::from_csr(&g).footprint_bytes());
    }

    #[test]
    fn weighted_transpose_and_roundtrip() {
        use crate::transform::assign_weights;
        let g = assign_weights(&rmat(9, 6, RmatParams::default(), 6, false), 1, 50, 3);
        let c = CompressedWGraph::from_csr(&g);
        assert!(!c.has_in_view());
        let c = c.with_transpose();
        assert!(c.has_in_view());
        let back = c.to_csr();
        for v in 0..g.num_vertices() as VertexId {
            let mut want: Vec<(u32, u32)> = g.edges_of(v).collect();
            want.sort_unstable();
            let got: Vec<(u32, u32)> = back.edges_of(v).collect();
            assert_eq!(got, want, "edges of {v}");
        }
        // Early-exit weighted decode.
        let sym = CompressedWGraph::from_csr(&assign_weights(
            &crate::builder::from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3)]),
            1,
            9,
            5,
        ));
        let mut seen = 0;
        sym.for_each_edge_until(0, |_, _| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g = crate::builder::from_pairs(5, &[(0, 4)]);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(c.neighbors_vec(0), vec![4]);
        for v in 1..4 {
            assert!(c.neighbors_vec(v).is_empty());
            assert_eq!(c.degree(v), 0);
        }
    }

    /// Clones a valid graph's raw parts for corruption tests.
    fn parts(c: &CompressedGraph) -> (Vec<u64>, Vec<u32>, Vec<u8>) {
        let (o, d, b) = c.raw_parts();
        (o.to_vec(), d.to_vec(), b.to_vec())
    }

    #[test]
    fn corrupt_structural_payload_rejected() {
        let g = erdos_renyi(200, 2_000, 3, true);
        let c = CompressedGraph::from_csr(&g);
        let n = c.num_vertices();
        let m = c.num_edges();
        let cs = c.chunk_size();
        let (o, d, b) = parts(&c);
        // The pristine parts reconstruct fine.
        assert!(CompressedGraph::try_from_raw_parts(
            n,
            m,
            o.clone(),
            d.clone(),
            b.clone(),
            true,
            cs,
            None
        )
        .is_ok());
        // Truncated data: offsets no longer cover it.
        let err = CompressedGraph::try_from_raw_parts(
            n,
            m,
            o.clone(),
            d.clone(),
            b[..b.len() - 1].to_vec(),
            true,
            cs,
            None,
        )
        .unwrap_err();
        assert!(err.contains("data length"), "{err}");
        // Non-monotone offsets.
        let mut bad_o = o.clone();
        bad_o[1] = bad_o[2] + 1;
        let err =
            CompressedGraph::try_from_raw_parts(n, m, bad_o, d.clone(), b.clone(), true, cs, None)
                .unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        // Degree sum disagrees with m.
        let mut bad_d = d.clone();
        bad_d[0] += 1;
        let err =
            CompressedGraph::try_from_raw_parts(n, m, o.clone(), bad_d, b.clone(), true, cs, None)
                .unwrap_err();
        assert!(err.contains("degree sum"), "{err}");
        // Wrong offsets length.
        let err = CompressedGraph::try_from_raw_parts(n, m, o[..n].to_vec(), d, b, true, cs, None)
            .unwrap_err();
        assert!(err.contains("offsets length"), "{err}");
    }

    #[test]
    fn corrupt_block_bytes_rejected() {
        // A degree-1 vertex whose block is an overlong codeword (the old
        // decoder's unbounded-shift hole), a truncated codeword, an
        // out-of-range neighbor, and trailing garbage — all typed errors.
        let build = |data: Vec<u8>, deg: u32| {
            CompressedGraph::try_from_raw_parts(
                2,
                deg as usize,
                vec![0, data.len() as u64, data.len() as u64],
                vec![deg, 0],
                data,
                true,
                0,
                None,
            )
        };
        let err = build(vec![0x80; 11], 1).unwrap_err();
        assert!(err.contains("overlong"), "{err}");
        let err = build(vec![0x80, 0x80], 1).unwrap_err();
        assert!(err.contains("mid-codeword"), "{err}");
        // zigzag(+5) from vertex 0 = neighbor 5 ≥ n = 2.
        let err = build(vec![0x0A], 1).unwrap_err();
        assert!(err.contains("vertex range"), "{err}");
        // Valid neighbor followed by trailing garbage.
        let err = build(vec![0x02, 0x00], 1).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        // Gap that runs past n.
        let err = build(vec![0x02, 0x7F], 2).unwrap_err();
        assert!(err.contains("vertex range"), "{err}");
    }

    #[test]
    fn corrupt_chunk_header_rejected() {
        // Chunked block whose header length disagrees with the body.
        let g = crate::builder::from_pairs(10, &(1..=9).map(|u| (0, u)).collect::<Vec<_>>());
        let c = CompressedGraph::from_csr_with_chunk_size(&g, 4);
        let (o, d, mut b) = parts(&c);
        assert!(c.num_chunks_of(0) == 3);
        // Vertex 0's block starts with two chunk-body lengths; bump the
        // first so the walk detects the mismatch.
        b[0] += 1;
        let err = CompressedGraph::try_from_raw_parts(10, 9, o, d, b, false, 4, None).unwrap_err();
        assert!(
            err.contains("length mismatch")
                || err.contains("header says")
                || err.contains("trailing"),
            "{err}"
        );
    }

    #[test]
    fn corrupt_weighted_payload_rejected() {
        use crate::transform::assign_weights;
        let g = assign_weights(&erdos_renyi(100, 1_000, 4, true), 1, 100, 2);
        let c = CompressedWGraph::from_csr(&g);
        let (o, d, b) = c.raw_parts();
        let (o, d, b) = (o.to_vec(), d.to_vec(), b.to_vec());
        assert!(CompressedWGraph::try_from_raw_parts(
            c.num_vertices(),
            c.num_edges(),
            o.clone(),
            d.clone(),
            b.clone(),
            true,
            c.chunk_size(),
            None
        )
        .is_ok());
        // Truncation surfaces a typed error, not a traversal panic.
        let err = CompressedWGraph::try_from_raw_parts(
            c.num_vertices(),
            c.num_edges(),
            o,
            d,
            b[..b.len() / 2].to_vec(),
            true,
            c.chunk_size(),
            None,
        )
        .unwrap_err();
        assert!(err.contains("data length"), "{err}");
        // A weight codeword too large for u32 fails closed.
        let mut data = Vec::new();
        put_varint(&mut data, zigzag_encode(1)); // neighbor 1
        put_varint(&mut data, u64::from(u32::MAX) + 1); // weight overflow
        let err = CompressedWGraph::try_from_raw_parts(
            2,
            1,
            vec![0, data.len() as u64, data.len() as u64],
            vec![1, 0],
            data,
            true,
            0,
            None,
        )
        .unwrap_err();
        assert!(err.contains("overflows u32"), "{err}");
    }
}
