//! Compressed-sparse-row graphs, generic over the edge-weight type.

use crate::VertexId;
use rayon::prelude::*;

/// Edge-weight types usable in a [`Csr`].
///
/// `()` marks an unweighted graph (zero storage); `u32` carries the paper's
/// nonnegative integral weights; `u64` exists for accumulated distances.
pub trait Weight: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// Whether this weight type carries no information (unweighted graphs).
    const IS_UNIT: bool;
    /// Serialises for binary I/O.
    fn to_u64(self) -> u64;
    /// Deserialises from binary I/O.
    fn from_u64(x: u64) -> Self;
}

impl Weight for () {
    const IS_UNIT: bool = true;
    fn to_u64(self) -> u64 {
        0
    }
    fn from_u64(_: u64) -> Self {}
}

impl Weight for u32 {
    const IS_UNIT: bool = false;
    fn to_u64(self) -> u64 {
        self as u64
    }
    fn from_u64(x: u64) -> Self {
        x as u32
    }
}

impl Weight for u64 {
    const IS_UNIT: bool = false;
    fn to_u64(self) -> u64 {
        self
    }
    fn from_u64(x: u64) -> Self {
        x
    }
}

/// An immutable CSR graph with edge weights of type `W`.
///
/// For directed graphs, `offsets`/`targets` hold the **out**-adjacency, and
/// an optional transpose (`in_csr`) enables Ligra's dense (pull) traversal.
/// Symmetric graphs set [`Csr::is_symmetric`] and reuse the out-adjacency as the
/// in-adjacency.
#[derive(Clone, Debug)]
pub struct Csr<W: Weight> {
    n: usize,
    m: usize,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<W>,
    symmetric: bool,
    in_csr: Option<Box<Csr<W>>>,
}

/// Unweighted graph.
pub type Graph = Csr<()>;
/// Integer-weighted graph (the paper's wBFS / Δ-stepping inputs).
pub type WGraph = Csr<u32>;

impl<W: Weight> Csr<W> {
    /// Builds a CSR directly from components. `offsets` must have length
    /// `n + 1`, be nondecreasing, start at 0 and end at `targets.len()`;
    /// `weights` must be empty (unweighted) or parallel to `targets`.
    pub fn from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<W>,
        symmetric: bool,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1");
        let n = offsets.len() - 1;
        let m = targets.len();
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[n] as usize, m);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(weights.len() == m || (W::IS_UNIT && weights.is_empty()));
        let weights = if W::IS_UNIT && weights.is_empty() {
            vec![W::default(); m]
        } else {
            weights
        };
        debug_assert!(targets.iter().all(|&t| (t as usize) < n));
        Csr {
            n,
            m,
            offsets,
            targets,
            weights,
            symmetric,
            in_csr: None,
        }
    }

    /// Fallible [`Csr::from_parts`]: returns a description of the first
    /// violated invariant instead of panicking. The binary and container
    /// loaders use this so corrupt files surface as typed parse errors
    /// rather than asserts (or, worse, silently garbage graphs when
    /// `debug_assert`s are compiled out).
    pub fn try_from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<W>,
        symmetric: bool,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets array is empty (must have length n+1)".into());
        }
        let n = offsets.len() - 1;
        let m = targets.len();
        if offsets[0] != 0 {
            return Err(format!("offsets must start at 0, found {}", offsets[0]));
        }
        if offsets[n] as usize != m {
            return Err(format!(
                "offsets end at {} but there are {m} targets",
                offsets[n]
            ));
        }
        if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!("offsets not monotone ({} > {})", w[0], w[1]));
        }
        if !(weights.len() == m || (W::IS_UNIT && weights.is_empty())) {
            return Err(format!("{} weights for {m} edges", weights.len()));
        }
        if let Some(&t) = targets.iter().find(|&&t| t as usize >= n) {
            return Err(format!("target {t} out of range for {n} vertices"));
        }
        let weights = if W::IS_UNIT && weights.is_empty() {
            vec![W::default(); m]
        } else {
            weights
        };
        Ok(Csr {
            n,
            m,
            offsets,
            targets,
            weights,
            symmetric,
            in_csr: None,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether the graph is symmetric (undirected).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Total bytes of the adjacency arrays (offsets + targets + weights),
    /// including an attached transpose. The denominator for the bytes/edge
    /// comparison against the compressed backends.
    pub fn footprint_bytes(&self) -> usize {
        let own = self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<W>();
        own + self.in_csr.as_ref().map_or(0, |t| t.footprint_bytes())
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weights of the out-edges of `v`, parallel to [`Csr::neighbors`].
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> &[W] {
        let v = v as usize;
        &self.weights[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates `(neighbor, weight)` pairs of `v`'s out-edges.
    #[inline]
    pub fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, W)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights_of(v).iter().copied())
    }

    /// The offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat targets array.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The flat weights array (parallel to targets).
    pub fn weights(&self) -> &[W] {
        &self.weights
    }

    /// All out-degrees as a vector.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.n)
            .into_par_iter()
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// The in-adjacency view used by dense (pull) traversals: the transpose
    /// for directed graphs, or the graph itself when symmetric. Returns
    /// `None` for a directed graph whose transpose was not attached.
    pub fn in_view(&self) -> Option<&Csr<W>> {
        if self.symmetric {
            Some(self)
        } else {
            self.in_csr.as_deref()
        }
    }

    /// Attaches a transpose so dense traversals work on directed graphs.
    pub fn with_transpose(mut self) -> Self {
        if !self.symmetric && self.in_csr.is_none() {
            let t = crate::transform::transpose(&self);
            self.in_csr = Some(Box::new(t));
        }
        self
    }

    /// Whether a dense (pull) traversal is possible.
    pub fn has_in_view(&self) -> bool {
        self.symmetric || self.in_csr.is_some()
    }

    /// Sum of out-degrees over a set of vertices (used for the edgeMap
    /// sparse/dense threshold).
    pub fn out_degrees_sum(&self, vs: &[VertexId]) -> usize {
        if vs.len() < 4096 {
            vs.iter().map(|&v| self.degree(v)).sum()
        } else {
            vs.par_iter().map(|&v| self.degree(v)).sum()
        }
    }

    /// Checks structural invariants; used by tests and after I/O.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.n + 1 {
            return Err("offsets length".into());
        }
        if self.offsets[self.n] as usize != self.m || self.targets.len() != self.m {
            return Err("edge count mismatch".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        if let Some(&bad) = self.targets.iter().find(|&&t| t as usize >= self.n) {
            return Err(format!("target {bad} out of range"));
        }
        if self.symmetric {
            // Spot-check symmetry on a sample of edges.
            for v in (0..self.n as VertexId).step_by((self.n / 64).max(1)) {
                for &u in self.neighbors(v) {
                    if !self.neighbors(u).contains(&v) {
                        return Err(format!("edge ({v},{u}) not symmetric"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
        Csr::from_parts(vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0], vec![], false)
    }

    #[test]
    fn basic_accessors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.degrees(), vec![2, 1, 0, 1]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn weighted_edges_iterate() {
        let g: WGraph = Csr::from_parts(vec![0, 2, 2], vec![1, 1], vec![10, 20], false);
        let edges: Vec<_> = g.edges_of(0).collect();
        assert_eq!(edges, vec![(1, 10), (1, 20)]);
        assert_eq!(g.weights_of(0), &[10, 20]);
    }

    #[test]
    fn transpose_attaches_in_view() {
        let g = tiny();
        assert!(!g.has_in_view());
        let g = g.with_transpose();
        assert!(g.has_in_view());
        let t = g.in_view().unwrap();
        // in-neighbors of 2 are {0, 1}
        let mut inn = t.neighbors(2).to_vec();
        inn.sort_unstable();
        assert_eq!(inn, vec![0, 1]);
    }

    #[test]
    fn symmetric_graph_is_its_own_in_view() {
        let g: Graph = Csr::from_parts(vec![0, 1, 2], vec![1, 0], vec![], true);
        assert!(g.has_in_view());
        assert!(g.validate().is_ok());
        assert_eq!(g.in_view().unwrap().neighbors(0), &[1]);
    }

    #[test]
    #[should_panic]
    fn bad_offsets_panic() {
        let _ = Graph::from_parts(vec![0, 2], vec![1, 0, 0], vec![], false);
    }

    #[test]
    fn out_degrees_sum() {
        let g = tiny();
        assert_eq!(g.out_degrees_sum(&[0, 3]), 3);
        assert_eq!(g.out_degrees_sum(&[]), 0);
    }
}
