//! Graph transforms: transpose, symmetrisation, weight assignment.

use crate::builder::EdgeList;
use crate::csr::{Csr, Weight};
use crate::VertexId;
use julienne_primitives::rng::hash64;
use julienne_primitives::scan::prefix_sums;
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Builds the transpose (in-adjacency) of `g`. Work O(n + m).
pub fn transpose<W: Weight>(g: &Csr<W>) -> Csr<W> {
    let n = g.num_vertices();
    let m = g.num_edges();

    // Count in-degrees.
    let in_deg: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    (0..n as VertexId).into_par_iter().for_each(|u| {
        for &v in g.neighbors(u) {
            in_deg[v as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
    let mut counts: Vec<usize> = in_deg.into_iter().map(AtomicUsize::into_inner).collect();
    counts.push(0);
    prefix_sums(&mut counts);

    let offsets: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
    let cursors: Vec<AtomicUsize> = counts[..n].iter().map(|&c| AtomicUsize::new(c)).collect();

    let mut targets = vec![0 as VertexId; m];
    let mut weights = vec![W::default(); m];
    {
        let tw = DisjointWriter::new(&mut targets);
        let ww = DisjointWriter::new(&mut weights);
        (0..n as VertexId).into_par_iter().for_each(|u| {
            for (v, w) in g.edges_of(u) {
                let pos = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: fetch_add hands every writer a unique slot.
                unsafe {
                    tw.write(pos, u);
                    ww.write(pos, w);
                }
            }
        });
    }
    Csr::from_parts(offsets, targets, weights, false)
}

/// Returns the symmetric closure of `g` (edges mirrored, duplicates removed).
pub fn symmetrize<W: Weight>(g: &Csr<W>) -> Csr<W> {
    let n = g.num_vertices();
    let mut el = EdgeList::new(n);
    el.edges.reserve(2 * g.num_edges());
    for u in 0..n as VertexId {
        for (v, w) in g.edges_of(u) {
            el.push(u, v, w);
            el.push(v, u, w);
        }
    }
    el.build(true)
}

/// Assigns each edge a deterministic pseudo-random weight in `[lo, hi)`.
///
/// Used to create the paper's weighted inputs: `[1, ⌈log n⌉)` for wBFS and
/// `[1, 10^5)` for Δ-stepping. For symmetric graphs the weight of `(u, v)`
/// and `(v, u)` must agree, so the hash key is the unordered pair.
pub fn assign_weights(g: &Csr<()>, lo: u32, hi: u32, seed: u64) -> Csr<u32> {
    assert!(lo < hi);
    let n = g.num_vertices();
    let range = (hi - lo) as u64;
    let weights: Vec<u32> = (0..n as VertexId)
        .into_par_iter()
        .flat_map_iter(|u| {
            g.neighbors(u).iter().map(move |&v| {
                let (a, b) = if g.is_symmetric() {
                    (u.min(v), u.max(v))
                } else {
                    (u, v)
                };
                let key = ((a as u64) << 32) | b as u64;
                lo + (hash64(seed, key) % range) as u32
            })
        })
        .collect();
    Csr::from_parts(
        g.offsets().to_vec(),
        g.targets().to_vec(),
        weights,
        g.is_symmetric(),
    )
}

/// Relabels vertices by a permutation: vertex `v` becomes `perm[v]`.
/// `perm` must be a bijection on `0..n`.
pub fn relabel<W: Weight>(g: &Csr<W>, perm: &[VertexId]) -> Csr<W> {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n);
    debug_assert!({
        let mut seen = vec![false; n];
        perm.iter().all(|&p| {
            let fresh = !seen[p as usize];
            seen[p as usize] = true;
            fresh
        })
    });
    let mut el = EdgeList::new(n);
    el.edges.reserve(g.num_edges());
    for u in 0..n as VertexId {
        for (v, w) in g.edges_of(u) {
            el.push(perm[u as usize], perm[v as usize], w);
        }
    }
    el.build(g.is_symmetric())
}

/// Degree-descending relabeling ("hub sorting"): hubs get the smallest ids,
/// which clusters the hottest adjacency lists together and improves cache
/// behaviour on heavy-tailed graphs — the standard preprocessing used by
/// frameworks the paper compares against.
pub fn hub_sort<W: Weight>(g: &Csr<W>) -> (Csr<W>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.par_sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    // perm[old] = new rank.
    let mut perm = vec![0 as VertexId; n];
    for (rank, &v) in by_degree.iter().enumerate() {
        perm[v as usize] = rank as VertexId;
    }
    (relabel(g, &perm), perm)
}

/// The standard weight range for wBFS inputs: `[1, max(2, ⌈log2 n⌉))`.
pub fn wbfs_weight_range(n: usize) -> (u32, u32) {
    let log_n = usize::BITS - n.max(2).leading_zeros();
    (1, log_n.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_pairs;

    #[test]
    fn transpose_reverses_edges() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (1, 2), (3, 0)]);
        let t = transpose(&g);
        assert_eq!(t.num_edges(), 4);
        let mut in2 = t.neighbors(2).to_vec();
        in2.sort_unstable();
        assert_eq!(in2, vec![0, 1]);
        assert_eq!(t.neighbors(0), &[3]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn transpose_of_transpose_is_identity() {
        let g = from_pairs(6, &[(0, 1), (2, 3), (4, 5), (5, 0), (3, 1)]);
        let tt = transpose(&transpose(&g));
        for v in 0..6u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn symmetrize_doubles_and_dedups() {
        let g = from_pairs(3, &[(0, 1), (1, 0), (1, 2)]);
        let s = symmetrize(&g);
        assert!(s.is_symmetric());
        assert_eq!(s.num_edges(), 4); // {0,1} and {1,2} both ways
        assert!(s.validate().is_ok());
    }

    #[test]
    fn weights_in_range_and_symmetric_consistent() {
        let g = from_pairs(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let s = symmetrize(&g);
        let w = assign_weights(&s, 1, 10, 42);
        for u in 0..50u32 {
            for (v, wt) in w.edges_of(u) {
                assert!((1..10).contains(&wt));
                // reverse edge must carry same weight
                let rev = w
                    .edges_of(v)
                    .find(|&(x, _)| x == u)
                    .map(|(_, rw)| rw)
                    .unwrap();
                assert_eq!(wt, rev, "asym weight on ({u},{v})");
            }
        }
    }

    #[test]
    fn wbfs_range_sane() {
        assert_eq!(wbfs_weight_range(2), (1, 2));
        let (lo, hi) = wbfs_weight_range(1 << 20);
        assert_eq!(lo, 1);
        assert_eq!(hi, 21);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = from_pairs(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let perm: Vec<u32> = vec![4, 3, 2, 1, 0]; // reverse
        let h = relabel(&g, &perm);
        assert_eq!(h.num_edges(), g.num_edges());
        for u in 0..5u32 {
            let mut want: Vec<u32> = g.neighbors(u).iter().map(|&v| perm[v as usize]).collect();
            want.sort_unstable();
            assert_eq!(h.neighbors(perm[u as usize]), &want[..]);
        }
    }

    #[test]
    fn hub_sort_orders_by_degree() {
        use crate::generators::rmat;
        use crate::generators::RmatParams;
        let g = rmat(9, 8, RmatParams::default(), 3, true);
        let (h, perm) = hub_sort(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        // New ids are degree-descending.
        for v in 1..h.num_vertices() as u32 {
            assert!(h.degree(v - 1) >= h.degree(v), "not sorted at {v}");
        }
        // perm is a bijection mapping old degrees onto new positions.
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(h.degree(perm[v as usize]), g.degree(v));
        }
    }

    #[test]
    fn weights_deterministic_across_calls() {
        let g = from_pairs(10, &[(0, 1), (1, 2), (2, 3)]);
        let w1 = assign_weights(&g, 1, 100, 7);
        let w2 = assign_weights(&g, 1, 100, 7);
        assert_eq!(w1.weights(), w2.weights());
        let w3 = assign_weights(&g, 1, 100, 8);
        assert_ne!(w1.weights(), w3.weights());
    }
}
