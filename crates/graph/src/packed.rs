//! Packable adjacency: a graph whose per-vertex neighbor lists can be
//! compacted ("packed") in parallel, mutating the graph.
//!
//! `edgeMapFilter(…, Pack)` in Section 4.3 removes edges to covered
//! elements from each set's adjacency list and updates its degree. The
//! arena layout keeps each vertex's (possibly shrunken) list inside its
//! original CSR slice, so packing never allocates; the live length is
//! tracked per vertex.

use crate::csr::{Csr, Weight};
use crate::VertexId;
use julienne_primitives::unsafe_write::DisjointWriter;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A graph with mutable (shrinkable) adjacency lists.
pub struct PackedGraph {
    n: usize,
    original_m: usize,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    /// Live neighbor count of each vertex (≤ original degree).
    live: Vec<AtomicU32>,
}

impl PackedGraph {
    /// Builds a packable copy of `g`.
    pub fn from_csr<W: Weight>(g: &Csr<W>) -> Self {
        PackedGraph {
            n: g.num_vertices(),
            original_m: g.num_edges(),
            offsets: g.offsets().to_vec(),
            targets: g.targets().to_vec(),
            live: g.degrees().into_iter().map(AtomicU32::new).collect(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges in the original (unpacked) graph.
    pub fn original_num_edges(&self) -> usize {
        self.original_m
    }

    /// Current (live) degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.live[v as usize].load(Ordering::Relaxed) as usize
    }

    /// Live neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let start = self.offsets[v as usize] as usize;
        &self.targets[start..start + self.degree(v)]
    }

    /// Packs the adjacency lists of every vertex in `vs`: keeps only
    /// neighbors satisfying `pred`, compacts them to the front of the
    /// vertex's slice, and updates the live degree. Returns the new degree
    /// of each vertex, parallel to `vs`.
    ///
    /// Different vertices pack concurrently; each vertex's slice is touched
    /// by exactly one task. `pred` must not read the adjacency lists being
    /// packed.
    pub fn pack<P>(&mut self, vs: &[VertexId], pred: P) -> Vec<u32>
    where
        P: Fn(VertexId, VertexId) -> bool + Send + Sync,
    {
        let offsets = &self.offsets;
        let live = &self.live;
        let writer = DisjointWriter::new(&mut self.targets);
        vs.par_iter()
            .map(|&v| {
                let start = offsets[v as usize] as usize;
                let deg = live[v as usize].load(Ordering::Relaxed) as usize;
                // Collect survivors locally, then write back to the front of
                // the slice (each vertex owns its slice exclusively).
                let mut kept: Vec<VertexId> = Vec::with_capacity(deg);
                for k in 0..deg {
                    // SAFETY: only this task touches [start, start+deg).
                    let u = unsafe { writer.read(start + k) };
                    if pred(v, u) {
                        kept.push(u);
                    }
                }
                for (k, &u) in kept.iter().enumerate() {
                    // SAFETY: disjoint per-vertex slices.
                    unsafe { writer.write(start + k, u) };
                }
                let new_deg = kept.len() as u32;
                live[v as usize].store(new_deg, Ordering::Relaxed);
                new_deg
            })
            .collect()
    }

    /// Counts, for each vertex in `vs`, its neighbors satisfying `pred`
    /// without mutating the graph (the non-`Pack` flavour of
    /// `edgeMapFilter`).
    pub fn count_neighbors<P>(&self, vs: &[VertexId], pred: P) -> Vec<u32>
    where
        P: Fn(VertexId, VertexId) -> bool + Send + Sync,
    {
        vs.par_iter()
            .map(|&v| self.neighbors(v).iter().filter(|&&u| pred(v, u)).count() as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_pairs_symmetric;

    fn star() -> PackedGraph {
        // center 0 connected to 1..=5
        let pairs: Vec<(u32, u32)> = (1..=5).map(|i| (0, i)).collect();
        PackedGraph::from_csr(&from_pairs_symmetric(6, &pairs))
    }

    #[test]
    fn pack_removes_filtered_neighbors() {
        let mut g = star();
        assert_eq!(g.degree(0), 5);
        let new_degs = g.pack(&[0], |_, u| u % 2 == 1); // keep odd
        assert_eq!(new_degs, vec![3]);
        let mut nbrs = g.neighbors(0).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 3, 5]);
        // Other vertices untouched.
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn pack_is_idempotent_under_true() {
        let mut g = star();
        let before = g.neighbors(0).to_vec();
        g.pack(&[0], |_, _| true);
        assert_eq!(g.neighbors(0), &before[..]);
    }

    #[test]
    fn repeated_packs_shrink_monotonically() {
        let mut g = star();
        g.pack(&[0], |_, u| u <= 4);
        assert_eq!(g.degree(0), 4);
        g.pack(&[0], |_, u| u <= 2);
        assert_eq!(g.degree(0), 2);
        g.pack(&[0], |_, _| false);
        assert_eq!(g.degree(0), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn count_neighbors_matches_manual() {
        let g = star();
        let counts = g.count_neighbors(&[0, 1], |_, u| u > 2);
        assert_eq!(counts[0], 3); // 3,4,5
        assert_eq!(counts[1], 0); // neighbor of 1 is 0
    }

    #[test]
    fn parallel_pack_many_vertices() {
        // Each vertex i in a cycle of 1000 keeps neighbors < 500.
        let pairs: Vec<(u32, u32)> = (0..1000).map(|i| (i, (i + 1) % 1000)).collect();
        let mut g = PackedGraph::from_csr(&from_pairs_symmetric(1000, &pairs));
        let vs: Vec<u32> = (0..1000).collect();
        let degs = g.pack(&vs, |_, u| u < 500);
        for v in 0..1000u32 {
            let want = g.neighbors(v).iter().all(|&u| u < 500);
            assert!(want);
            assert_eq!(degs[v as usize] as usize, g.degree(v));
        }
        assert_eq!(g.original_num_edges(), 2000);
    }
}
