//! Bipartite set-cover instances (Section 4.3 / Section 5).
//!
//! The paper "generated bipartite graphs to use as set cover instances by
//! having vertices represent both the sets and the elements". We do the
//! same: vertices `[0, num_sets)` are sets, `[num_sets, num_sets +
//! num_elements)` are elements, and membership edges run both ways. Every
//! element belongs to at least one set, so a full cover always exists.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::rng::{hash64, hash_range};
use rayon::prelude::*;

/// A generated set-cover instance over a symmetric bipartite graph.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Symmetric bipartite membership graph (sets first, then elements).
    pub graph: Csr<()>,
    /// Number of set vertices (`0..num_sets`).
    pub num_sets: usize,
    /// Number of element vertices (`num_sets..num_sets + num_elements`).
    pub num_elements: usize,
}

impl SetCoverInstance {
    /// The vertex id of element `e`.
    pub fn element_vertex(&self, e: usize) -> VertexId {
        (self.num_sets + e) as VertexId
    }

    /// Whether `v` is a set vertex.
    pub fn is_set(&self, v: VertexId) -> bool {
        (v as usize) < self.num_sets
    }
}

/// Generates an instance in which each element joins `1 + extra` sets, with
/// `extra` geometric-ish in `[0, max_multiplicity)` and set choices skewed
/// toward low-numbered sets (power-law set sizes, like real web corpora).
pub fn set_cover_instance(
    num_sets: usize,
    num_elements: usize,
    max_multiplicity: usize,
    seed: u64,
) -> SetCoverInstance {
    assert!(num_sets >= 1 && num_elements >= 1);
    let n = num_sets + num_elements;
    let skewed_set = |h: u64| -> VertexId {
        // Square a uniform variate: density ∝ 1/(2·sqrt(u)) toward 0, giving
        // a mild skew so some sets are much larger than others.
        let u = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        ((u * u * num_sets as f64) as usize).min(num_sets - 1) as VertexId
    };
    let edges: Vec<(VertexId, VertexId, ())> = (0..num_elements as u64)
        .into_par_iter()
        .flat_map_iter(|e| {
            let copies =
                1 + (hash_range(seed ^ 0xC0FFEE, e, max_multiplicity.max(1) as u64) as usize);
            let elem_v = (num_sets as u64 + e) as VertexId;
            (0..copies).map(move |j| {
                let s = skewed_set(hash64(seed, e * 131 + j as u64));
                (s, elem_v, ())
            })
        })
        .collect();
    let mut el = EdgeList::new(n);
    el.edges = edges;
    let graph = el.build_symmetric();
    SetCoverInstance {
        graph,
        num_sets,
        num_elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_element_covered() {
        let inst = set_cover_instance(100, 5000, 4, 11);
        assert!(inst.graph.validate().is_ok());
        for e in 0..inst.num_elements {
            let v = inst.element_vertex(e);
            assert!(inst.graph.degree(v) >= 1, "element {e} belongs to no set");
            // All neighbors of an element are sets.
            for &s in inst.graph.neighbors(v) {
                assert!(inst.is_set(s));
            }
        }
    }

    #[test]
    fn sets_only_touch_elements() {
        let inst = set_cover_instance(50, 1000, 3, 7);
        for s in 0..inst.num_sets as VertexId {
            for &e in inst.graph.neighbors(s) {
                assert!(!inst.is_set(e));
            }
        }
    }

    #[test]
    fn set_sizes_are_skewed() {
        let inst = set_cover_instance(200, 20_000, 4, 3);
        let sizes: Vec<usize> = (0..inst.num_sets as VertexId)
            .map(|s| inst.graph.degree(s))
            .collect();
        let max = *sizes.iter().max().unwrap();
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(max as f64 > 3.0 * avg, "max={max} avg={avg}");
    }

    #[test]
    fn deterministic() {
        let a = set_cover_instance(10, 100, 2, 5);
        let b = set_cover_instance(10, 100, 2, 5);
        assert_eq!(a.graph.targets(), b.graph.targets());
    }
}
