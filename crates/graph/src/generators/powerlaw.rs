//! Chung–Lu random graphs with power-law expected degrees — a second
//! heavy-tailed family (independent edges, unlike R-MAT's recursive
//! correlation) used to vary the k-core peeling-complexity ρ.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::rng::{hash64, hash_range};
use rayon::prelude::*;

/// Samples a Chung–Lu graph: vertex `i` has expected degree
/// `d_max · (i+1)^(−1/(α−1))` (a power law with exponent `α`), realised by
/// sampling `m_target` endpoints proportional to the weights via inverse
/// transform on the weight prefix distribution, approximated here by the
/// standard trick of sampling ranks with density `∝ r^(−1/(α−1))`.
pub fn chung_lu(n: usize, m_target: usize, alpha: f64, seed: u64, symmetric: bool) -> Csr<()> {
    assert!(n >= 2);
    assert!(alpha > 1.5, "alpha must exceed 1.5 for a proper tail");
    // Exponent for rank sampling: picking rank r with prob ∝ r^(-β) where
    // β = 1/(α−1) is achieved by r = ⌊U^(1/(1−β)) · n⌋ for U uniform.
    let beta = 1.0 / (alpha - 1.0);
    let inv = 1.0 / (1.0 - beta);
    let pick = |h: u64| -> VertexId {
        let u = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let r = (u.powf(inv) * n as f64) as usize;
        r.min(n - 1) as VertexId
    };
    let edges: Vec<(VertexId, VertexId, ())> = (0..m_target as u64)
        .into_par_iter()
        .map(|i| {
            let u = pick(hash64(seed, 2 * i));
            // Second endpoint uniform: gives each edge one heavy endpoint,
            // mimicking the hub-to-leaf structure of social graphs.
            let v = hash_range(seed ^ 0xDEAD_BEEF, 2 * i + 1, n as u64) as VertexId;
            (u, v, ())
        })
        .collect();
    let mut el = EdgeList::new(n);
    el.edges = edges;
    if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_tail_exists() {
        let g = chung_lu(10_000, 80_000, 2.2, 3, true);
        assert!(g.validate().is_ok());
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max > 10.0 * avg, "max={max} avg={avg}");
    }

    #[test]
    fn deterministic() {
        let a = chung_lu(1000, 5000, 2.5, 1, false);
        let b = chung_lu(1000, 5000, 2.5, 1, false);
        assert_eq!(a.targets(), b.targets());
    }
}
