//! 2-D grid (mesh) graphs: high-diameter, bounded-degree — the stand-in for
//! the road networks on which the paper notes synchronous Δ-stepping loses
//! to asynchronous schedulers.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;

/// A `rows × cols` 4-neighbor grid, symmetric. Diameter is
/// `rows + cols − 2`.
pub fn grid2d(rows: usize, cols: usize) -> Csr<()> {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut el: EdgeList<()> = EdgeList::new(n);
    el.edges.reserve(4 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push_undirected(id(r, c), id(r, c + 1), ());
            }
            if r + 1 < rows {
                el.push_undirected(id(r, c), id(r + 1, c), ());
            }
        }
    }
    el.build(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edge count: horizontal 3*3 + vertical 2*4 = 17 undirected = 34 directed.
        assert_eq!(g.num_edges(), 34);
        assert!(g.validate().is_ok());
        // Corner has degree 2, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid2d(1, 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn single_cell() {
        let g = grid2d(1, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
