//! Erdős–Rényi G(n, m) graphs.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::rng::hash_range;
use rayon::prelude::*;

/// Samples `m` directed edges uniformly at random over `n` vertices (with
/// duplicate/self-loop removal performed by the builder, so the result has
/// at most `m` edges). `symmetric` mirrors every edge.
pub fn erdos_renyi(n: usize, m: usize, seed: u64, symmetric: bool) -> Csr<()> {
    assert!(n >= 2);
    let edges: Vec<(VertexId, VertexId, ())> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let u = hash_range(seed, 2 * i, n as u64) as VertexId;
            let v = hash_range(seed, 2 * i + 1, n as u64) as VertexId;
            (u, v, ())
        })
        .collect();
    let mut el = EdgeList::new(n);
    el.edges = edges;
    if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let g = erdos_renyi(1000, 8000, 1, false);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 7000 && g.num_edges() <= 8000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn symmetric_variant() {
        let g = erdos_renyi(500, 2000, 2, true);
        assert!(g.is_symmetric());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(200, 1000, 3, false);
        let b = erdos_renyi(200, 1000, 3, false);
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.offsets(), b.offsets());
    }
}
