//! Random near-regular graphs: every vertex draws `degree` random
//! out-neighbors. This is the "degree-8 random graph" of the Section 3.4
//! bucketing microbenchmark.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::rng::hash_range;
use rayon::prelude::*;

/// Each of the `n` vertices samples `degree` uniform random out-neighbors
/// (self-loops and duplicates removed by the builder, so out-degrees are at
/// most `degree`).
pub fn random_regular(n: usize, degree: usize, seed: u64, symmetric: bool) -> Csr<()> {
    assert!(n >= 2);
    let edges: Vec<(VertexId, VertexId, ())> = (0..n as u64)
        .into_par_iter()
        .flat_map_iter(|u| {
            (0..degree as u64).map(move |j| {
                let v = hash_range(seed, u * degree as u64 + j, n as u64) as VertexId;
                (u as VertexId, v, ())
            })
        })
        .collect();
    let mut el = EdgeList::new(n);
    el.edges = edges;
    if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_near_target() {
        let g = random_regular(10_000, 8, 5, false);
        assert!(g.validate().is_ok());
        let degs = g.degrees();
        let avg: f64 = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        assert!(avg > 7.5 && avg <= 8.0, "avg={avg}");
        assert!(degs.iter().all(|&d| d <= 8));
    }

    #[test]
    fn symmetric_microbench_shape() {
        let g = random_regular(1000, 8, 9, true);
        assert!(g.is_symmetric());
        assert!(g.validate().is_ok());
    }
}
