//! Synthetic graph generators.
//!
//! These stand in for the paper's real-world inputs (Table 2) at laptop
//! scale — see DESIGN.md §3. All generators are deterministic in their seed
//! and parallel in their sampling.

mod bipartite;
mod er;
mod grid;
mod powerlaw;
mod regular;
mod rmat;

pub use bipartite::{set_cover_instance, SetCoverInstance};
pub use er::erdos_renyi;
pub use grid::grid2d;
pub use powerlaw::chung_lu;
pub use regular::random_regular;
pub use rmat::{rmat, RmatParams};
