//! R-MAT recursive-matrix graphs (Chakrabarti et al.), the standard
//! heavy-tailed stand-in for social/web graphs like the paper's Twitter,
//! Friendster and Hyperlink inputs.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::VertexId;
use julienne_primitives::rng::hash64;
use rayon::prelude::*;

/// R-MAT quadrant probabilities. The Graph500 defaults (0.57/0.19/0.19/0.05)
/// produce a heavy-tailed degree distribution with a small effective
/// diameter.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// P(top-left): controls hub formation.
    pub a: f64,
    /// P(top-right).
    pub b: f64,
    /// P(bottom-left).
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and `edge_factor *
/// 2^scale` sampled edges (deduplicated by the builder). `symmetric`
/// mirrors edges, matching the paper's `-Sym` inputs.
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    seed: u64,
    symmetric: bool,
) -> Csr<()> {
    assert!((1..=30).contains(&scale));
    let n = 1usize << scale;
    let m = edge_factor * n;
    let edges: Vec<(VertexId, VertexId, ())> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let (u, v) = sample_edge(scale, params, seed, i);
            (u, v, ())
        })
        .collect();
    let mut el = EdgeList::new(n);
    el.edges = edges;
    if symmetric {
        el.build_symmetric()
    } else {
        el.build(false)
    }
}

/// Samples one edge by descending `scale` levels of the recursive matrix,
/// consuming one hash per level (SKG with per-level noise, which avoids the
/// R-MAT artefact of exactly repeated quadrant choices).
fn sample_edge(scale: u32, p: RmatParams, seed: u64, index: u64) -> (VertexId, VertexId) {
    let mut u = 0u64;
    let mut v = 0u64;
    for level in 0..scale {
        let h = hash64(
            seed ^ (level as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            index,
        );
        // Map to [0,1) with 53-bit precision.
        let r = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let (du, dv) = if r < p.a {
            (0, 0)
        } else if r < p.a + p.b {
            (0, 1)
        } else if r < p.a + p.b + p.c {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | du;
        v = (v << 1) | dv;
    }
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_heavy_tail() {
        let g = rmat(12, 8, RmatParams::default(), 42, true);
        assert_eq!(g.num_vertices(), 1 << 12);
        assert!(g.validate().is_ok());
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // A heavy-tailed graph has max degree far above average.
        assert!(max > 8.0 * avg, "expected hubs: max={max} avg={avg:.1}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = rmat(8, 4, RmatParams::default(), 7, false);
        let b = rmat(8, 4, RmatParams::default(), 7, false);
        assert_eq!(a.targets(), b.targets());
        let c = rmat(8, 4, RmatParams::default(), 8, false);
        assert_ne!(a.targets(), c.targets());
    }

    #[test]
    fn directed_variant_valid() {
        let g = rmat(10, 8, RmatParams::default(), 1, false);
        assert!(!g.is_symmetric());
        assert!(g.validate().is_ok());
        assert!(g.num_edges() > 0);
    }
}
