//! Branch-reduced LEB128 varint decoding for the byte-compressed backend.
//!
//! The hot loop of every compressed traversal is "decode the next gap
//! codeword". Three tiers keep that loop short and fail-closed:
//!
//! 1. a 256-entry first-byte table ([`FIRST_BYTE`]) that resolves the
//!    dominant 1-byte-codeword case — value and length — in one lookup;
//! 2. a word-at-a-time continuation-bit scan (SWAR over 8 little-endian
//!    bytes) that finds a multi-byte codeword's stop byte in one
//!    `trailing_zeros` instead of one branch per byte;
//! 3. a bounded byte-at-a-time tail for codewords near the end of a block,
//!    with an explicit 10-byte length cap so corrupt input can never
//!    overflow the shift (the bug class this module retires: the old
//!    `get_varint` had no end-of-slice guard and an unbounded shift).
//!
//! [`BlockDecoder`] is the cursor used by the fused decode loops in
//! [`compress`](crate::compress); `try_varint` is the `Result` form the
//! `.jgr` load-time validator uses so corrupt payloads surface typed parse
//! errors, while `varint` panics with a clear message for in-memory
//! traversals (which only ever run over validated blocks).

/// Longest legal LEB128 codeword for a `u64`: nine full 7-bit groups plus a
/// tenth byte that may only carry the final (63rd) bit.
pub const MAX_VARINT_LEN: usize = 10;

/// Corrupt-input reason: a block (or chunk) ended in the middle of a
/// codeword.
pub const ERR_TRUNCATED: &str = "block ends mid-codeword";

/// Corrupt-input reason: a codeword ran past [`MAX_VARINT_LEN`] bytes or set
/// payload bits beyond a `u64`.
pub const ERR_OVERLONG: &str = "codeword overflows u64 (overlong varint)";

/// One entry of the 256-way first-byte code table.
#[derive(Clone, Copy, Debug)]
pub struct FirstByte {
    /// The fully decoded value when `len == 1`; the byte's 7 payload bits
    /// when the codeword continues.
    pub value: u8,
    /// Codeword length resolved by this byte alone: 1 for terminal bytes,
    /// 0 when the continuation bit says more bytes follow.
    pub len: u8,
}

/// The first-byte code table: indexing with any byte value classifies the
/// codeword (terminal vs continued) and yields its payload bits without
/// shifts or masks in the hot loop.
pub static FIRST_BYTE: [FirstByte; 256] = build_first_byte_table();

const fn build_first_byte_table() -> [FirstByte; 256] {
    let mut t = [FirstByte { value: 0, len: 0 }; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = FirstByte {
            value: (b & 0x7F) as u8,
            len: if b < 0x80 { 1 } else { 0 },
        };
        b += 1;
    }
    t
}

/// Continuation bits of 8 packed codeword bytes.
const CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// Continuation-bit pattern of a window holding exactly four 2-byte
/// codewords: set on bytes 0, 2, 4, 6, clear on the terminators.
const TWO_BYTE_X4: u64 = 0x0080_0080_0080_0080;

/// Keep-masks for a 1..=4-byte codeword inside a little-endian 4-byte
/// window, indexed by codeword length. Masking with `WINDOW_KEEP[len]`
/// drops the bytes of the *next* codeword so the branchless collapse in
/// [`BlockDecoder::varint`] sees only this codeword's bytes.
static WINDOW_KEEP: [u32; 5] = [0, 0xFF, 0xFFFF, 0x00FF_FFFF, 0xFFFF_FFFF];

#[cold]
#[inline(never)]
fn corrupt(why: &str) -> ! {
    panic!("corrupt compressed block: {why}");
}

/// A decoding cursor over one vertex's byte-coded block (or a slice of the
/// concatenated block array).
pub struct BlockDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BlockDecoder<'a> {
    /// Starts a cursor at the beginning of `buf`.
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        BlockDecoder { buf, pos: 0 }
    }

    /// Starts a cursor at byte `pos` of `buf`. Traversals pass the *whole*
    /// concatenated block array here rather than slicing out one vertex's
    /// block: runs are count-bounded, so decoding never walks past the
    /// block's own codewords, and keeping the following blocks' bytes in
    /// range means the 4/8-byte lookahead windows stay on the fast path
    /// even for tiny blocks (a sliced 12-byte block would push most of its
    /// codewords onto the slow end-of-buffer fallback).
    #[inline]
    pub fn new_at(buf: &'a [u8], pos: usize) -> Self {
        BlockDecoder { buf, pos }
    }

    /// Bytes consumed so far.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Skips `by` bytes (used to jump over chunk bodies via the block
    /// header's byte lengths). Saturates rather than wrapping so a corrupt
    /// length turns into a truncation error at the next read, never an
    /// out-of-bounds position.
    #[inline]
    pub fn advance(&mut self, by: usize) {
        self.pos = self.pos.saturating_add(by);
    }

    /// Decodes and discards `k` codewords (chunked-block headers).
    #[inline]
    pub fn skip_varints(&mut self, k: usize) {
        for _ in 0..k {
            let _ = self.varint();
        }
    }

    /// Decodes the next codeword, panicking with a clear message on corrupt
    /// input. Traversal paths use this: they only ever run over blocks that
    /// were either encoded in-process or validated at `.jgr` load time.
    ///
    /// Gap codewords on sorted adjacency are 1–3 bytes at any realistic
    /// scale, with the length varying codeword to codeword — exactly the
    /// pattern that makes a branch-per-byte loop mispredict. The inline
    /// fast path therefore decodes **branchlessly** from a 4-byte window:
    /// one unaligned load, the continuation-bit scan picks the stop byte
    /// via `trailing_zeros`, and a masked shift-collapse (using the
    /// precomputed `WINDOW_KEEP` code table) splices the payload bits —
    /// no data-dependent branches at all. Codewords of 5+ bytes and
    /// end-of-block windows fall back to the outlined `varint_multi`.
    #[inline(always)]
    pub fn varint(&mut self) -> u64 {
        let rest = self.buf.get(self.pos..).unwrap_or(&[]);
        if rest.len() >= 4 {
            let w = u32::from_le_bytes(rest[..4].try_into().unwrap());
            // Dedicated 1-byte exit: dense adjacency runs decode long
            // streaks of sub-128 gaps, so this branch predicts near
            // perfectly and skips the collapse entirely.
            if w & 0x80 == 0 {
                self.pos += 1;
                return (w & 0x7F) as u64;
            }
            let stops = !w & 0x8080_8080;
            if stops != 0 {
                let len = (stops.trailing_zeros() >> 3) as usize + 1;
                let m = w & WINDOW_KEEP[len];
                self.pos += len;
                return ((m & 0x7F)
                    | ((m >> 1) & (0x7F << 7))
                    | ((m >> 2) & (0x7F << 14))
                    | ((m >> 3) & (0x7F << 21))) as u64;
            }
        }
        // By-value in/out (not `&mut self`): the cursor's address must not
        // escape into the outlined call, or the whole decoder gets pinned
        // to the stack and every codeword pays a store-to-load round trip
        // on `pos`.
        let (x, pos) = varint_multi(self.buf, self.pos);
        self.pos = pos;
        x
    }

    /// Decodes `n` consecutive codewords, invoking `f` with each value.
    ///
    /// This is the bulk engine behind the fused adjacency loops: it loads
    /// an 8-byte window **once**, finds every stop byte in it with a single
    /// continuation-bit scan, then peels the codewords out of the register
    /// with `s &= s - 1` — so the serial dependency per codeword is a
    /// 1-cycle bit-clear instead of the load→scan→advance chain a
    /// codeword-at-a-time loop carries. A window typically yields 4–8
    /// codewords (gaps on sorted adjacency are 1–3 bytes). Codewords of
    /// 5+ bytes, windows that end mid-codeword, and the last few bytes of
    /// a block fall back to the scalar path, which is also the only path
    /// that validates; like [`varint`](Self::varint), corrupt input panics.
    #[inline(always)]
    pub fn for_each_varint<F: FnMut(u64)>(&mut self, n: usize, mut f: F) {
        let buf = self.buf;
        let mut pos = self.pos;
        let mut left = n;
        // Hoisted window bound: one compare per window entry instead of an
        // Option subslice plus a length test.
        let last8 = buf.len().wrapping_sub(8);
        let has_windows = buf.len() >= 8;
        'next_window: while left > 0 {
            if has_windows && pos <= last8 {
                let w = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                let c = w & CONT_BITS;
                // Uniform windows first: adjacency gaps cluster hard by
                // degree (hubs decode runs of 1-byte gaps, mid-degree
                // vertices runs of 2-byte gaps), so whole windows of one
                // codeword length are the common case and decode with
                // shifts alone — no per-codeword scan at all.
                if c == 0 && left >= 8 {
                    // Eight 1-byte codewords.
                    f(w & 0x7F);
                    f((w >> 8) & 0x7F);
                    f((w >> 16) & 0x7F);
                    f((w >> 24) & 0x7F);
                    f((w >> 32) & 0x7F);
                    f((w >> 40) & 0x7F);
                    f((w >> 48) & 0x7F);
                    f(w >> 56);
                    pos += 8;
                    left -= 8;
                    continue 'next_window;
                }
                if c == TWO_BYTE_X4 && left >= 4 {
                    // Four 2-byte codewords.
                    f((w & 0x7F) | ((w >> 1) & 0x3F80));
                    f(((w >> 16) & 0x7F) | ((w >> 17) & 0x3F80));
                    f(((w >> 32) & 0x7F) | ((w >> 33) & 0x3F80));
                    f(((w >> 48) & 0x7F) | ((w >> 49) & 0x3F80));
                    pos += 8;
                    left -= 4;
                    continue 'next_window;
                }
                if left < 8 {
                    // Short remainder: only the first `left` codewords
                    // matter, so test their continuation bits under a mask
                    // instead of demanding a uniform window — the lookahead
                    // bytes past the run can be anything. Low-degree runs
                    // (and the tail of every longer run) finish here.
                    let lm = (1u64 << (8 * left)) - 1;
                    if c & lm == 0 {
                        // `left` 1-byte codewords end the run.
                        let mut t = w;
                        for _ in 0..left {
                            f(t & 0x7F);
                            t >>= 8;
                        }
                        self.pos = pos + left;
                        return;
                    }
                    if left < 4 {
                        let lm2 = (1u64 << (16 * left)) - 1;
                        if c & lm2 == TWO_BYTE_X4 & lm2 {
                            // `left` 2-byte codewords end the run.
                            let mut t = w;
                            for _ in 0..left {
                                f((t & 0x7F) | ((t >> 1) & 0x3F80));
                                t >>= 16;
                            }
                            self.pos = pos + 2 * left;
                            return;
                        }
                    }
                }
                let mut s = c ^ CONT_BITS;
                if s != 0 {
                    // Mixed-length window: peel codewords out of the
                    // register by walking the stop bits. No upfront count —
                    // `count_ones` is a ~15-op SWAR on baseline x86-64 and
                    // would be paid at every run tail.
                    let mut start = 0usize;
                    let mut long = false;
                    while left > 0 && s != 0 {
                        let stop = (s.trailing_zeros() >> 3) as usize;
                        let len = stop - start + 1;
                        if len > 4 {
                            // Rare huge gap: commit the short codewords
                            // already decoded, scalar-decode the long one.
                            long = true;
                            break;
                        }
                        let m = ((w >> (8 * start)) as u32) & WINDOW_KEEP[len];
                        f(((m & 0x7F)
                            | ((m >> 1) & (0x7F << 7))
                            | ((m >> 2) & (0x7F << 14))
                            | ((m >> 3) & (0x7F << 21))) as u64);
                        start = stop + 1;
                        left -= 1;
                        s &= s - 1;
                    }
                    pos += start;
                    if !long {
                        continue 'next_window;
                    }
                }
            }
            // Window empty, ends mid-codeword, or a 5+-byte codeword is
            // next: one scalar (validating) decode, then re-window.
            let (x, np) = varint_multi(buf, pos);
            f(x);
            pos = np;
            left -= 1;
        }
        self.pos = pos;
    }

    /// Decodes `n` gap codewords and calls `f` with the running neighbor
    /// sum: `base + g1`, `base + g1 + g2`, … — the fused form of the
    /// adjacency inner loop (structure mirrors
    /// [`for_each_varint`](Self::for_each_varint)).
    ///
    /// Fusing the accumulation here instead of in a caller closure matters
    /// for throughput: a closure-side `cur += gap` is an 8-deep serial add
    /// chain across a uniform window, while in here the eight sums come
    /// from a log-depth prefix tree and the dependency carried from one
    /// window to the next is a single add. Partial sums of in-window gaps
    /// use plain `+` (each gap is < 2^14, so the tree cannot overflow);
    /// only the add onto `cur` wraps, keeping debug and release behavior
    /// identical on unvalidated corrupt input.
    #[inline(always)]
    pub fn for_each_delta_sum<F: FnMut(u32)>(&mut self, base: u32, n: usize, mut f: F) {
        let buf = self.buf;
        let mut pos = self.pos;
        let mut left = n;
        let mut cur = base;
        let last8 = buf.len().wrapping_sub(8);
        let has_windows = buf.len() >= 8;
        'next_window: while left > 0 {
            if has_windows && pos <= last8 {
                let w = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                let c = w & CONT_BITS;
                if c == 0 && left >= 8 {
                    // Eight 1-byte gaps: prefix-sum tree.
                    let g0 = (w & 0x7F) as u32;
                    let g1 = ((w >> 8) & 0x7F) as u32;
                    let g2 = ((w >> 16) & 0x7F) as u32;
                    let g3 = ((w >> 24) & 0x7F) as u32;
                    let g4 = ((w >> 32) & 0x7F) as u32;
                    let g5 = ((w >> 40) & 0x7F) as u32;
                    let g6 = ((w >> 48) & 0x7F) as u32;
                    let g7 = (w >> 56) as u32;
                    let p01 = g0 + g1;
                    let p23 = g2 + g3;
                    let p45 = g4 + g5;
                    let p03 = p01 + p23;
                    let b = cur;
                    f(b.wrapping_add(g0));
                    f(b.wrapping_add(p01));
                    f(b.wrapping_add(p01 + g2));
                    f(b.wrapping_add(p03));
                    f(b.wrapping_add(p03 + g4));
                    f(b.wrapping_add(p03 + p45));
                    f(b.wrapping_add(p03 + p45 + g6));
                    cur = b.wrapping_add(p03 + p45 + (g6 + g7));
                    f(cur);
                    pos += 8;
                    left -= 8;
                    continue 'next_window;
                }
                if c == TWO_BYTE_X4 && left >= 4 {
                    // Four 2-byte gaps: prefix-sum tree.
                    let g0 = ((w & 0x7F) | ((w >> 1) & 0x3F80)) as u32;
                    let g1 = (((w >> 16) & 0x7F) | ((w >> 17) & 0x3F80)) as u32;
                    let g2 = (((w >> 32) & 0x7F) | ((w >> 33) & 0x3F80)) as u32;
                    let g3 = (((w >> 48) & 0x7F) | ((w >> 49) & 0x3F80)) as u32;
                    let p01 = g0 + g1;
                    let b = cur;
                    f(b.wrapping_add(g0));
                    f(b.wrapping_add(p01));
                    f(b.wrapping_add(p01 + g2));
                    cur = b.wrapping_add(p01 + g2 + g3);
                    f(cur);
                    pos += 8;
                    left -= 4;
                    continue 'next_window;
                }
                if left < 8 {
                    // Short remainder under a continuation-bit mask; see
                    // `for_each_varint` for the rationale.
                    let lm = (1u64 << (8 * left)) - 1;
                    if c & lm == 0 {
                        let mut t = w;
                        for _ in 0..left {
                            cur = cur.wrapping_add((t & 0x7F) as u32);
                            f(cur);
                            t >>= 8;
                        }
                        self.pos = pos + left;
                        return;
                    }
                    if left < 4 {
                        let lm2 = (1u64 << (16 * left)) - 1;
                        if c & lm2 == TWO_BYTE_X4 & lm2 {
                            let mut t = w;
                            for _ in 0..left {
                                cur = cur.wrapping_add(((t & 0x7F) | ((t >> 1) & 0x3F80)) as u32);
                                f(cur);
                                t >>= 16;
                            }
                            self.pos = pos + 2 * left;
                            return;
                        }
                    }
                }
                let mut s = c ^ CONT_BITS;
                if s != 0 {
                    let mut start = 0usize;
                    let mut long = false;
                    while left > 0 && s != 0 {
                        let stop = (s.trailing_zeros() >> 3) as usize;
                        let len = stop - start + 1;
                        if len > 4 {
                            long = true;
                            break;
                        }
                        let m = ((w >> (8 * start)) as u32) & WINDOW_KEEP[len];
                        let g = (m & 0x7F)
                            | ((m >> 1) & (0x7F << 7))
                            | ((m >> 2) & (0x7F << 14))
                            | ((m >> 3) & (0x7F << 21));
                        cur = cur.wrapping_add(g);
                        f(cur);
                        start = stop + 1;
                        left -= 1;
                        s &= s - 1;
                    }
                    pos += start;
                    if !long {
                        continue 'next_window;
                    }
                }
            }
            let (x, np) = varint_multi(buf, pos);
            cur = cur.wrapping_add(x as u32);
            f(cur);
            pos = np;
            left -= 1;
        }
        self.pos = pos;
    }

    /// Decodes `n` interleaved (gap, weight) codeword pairs and calls
    /// `f(neighbor, weight)` with the running neighbor sum — the weighted
    /// twin of [`for_each_delta_sum`](Self::for_each_delta_sum), fusing the
    /// gap accumulation *and* the pair interleave into the window scan.
    ///
    /// Before this cursor existed the weighted adjacency loop fed
    /// `for_each_varint(2 * n)` through a closure-side gap/weight toggle:
    /// every codeword paid a data-dependent parity branch and the gap sums
    /// formed a serial add chain. Here the dominant layouts decode as whole
    /// windows — four (1-byte gap, 1-byte weight) pairs per 8-byte load
    /// with a log-depth prefix tree over the gaps, or two (2-byte gap,
    /// 1-byte weight) pairs — and the parity is structural, not branched.
    /// Mixed-length pairs peel out of the register; 5+-byte codewords and
    /// end-of-block tails fall back to the scalar (validating) path.
    #[inline(always)]
    pub fn for_each_delta_weight<F: FnMut(u32, u32)>(&mut self, base: u32, n: usize, mut f: F) {
        let buf = self.buf;
        let mut pos = self.pos;
        let mut left = n;
        let mut cur = base;
        let last8 = buf.len().wrapping_sub(8);
        let has_windows = buf.len() >= 8;
        'next_window: while left > 0 {
            if has_windows && pos <= last8 {
                let w = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
                let c = w & CONT_BITS;
                if c == 0 && left >= 4 {
                    // Four (1-byte gap, 1-byte weight) pairs: gaps on even
                    // bytes, weights on odd; prefix-sum tree over the gaps.
                    let g0 = (w & 0x7F) as u32;
                    let g1 = ((w >> 16) & 0x7F) as u32;
                    let g2 = ((w >> 32) & 0x7F) as u32;
                    let g3 = ((w >> 48) & 0x7F) as u32;
                    let p01 = g0 + g1;
                    let b = cur;
                    f(b.wrapping_add(g0), ((w >> 8) & 0x7F) as u32);
                    f(b.wrapping_add(p01), ((w >> 24) & 0x7F) as u32);
                    f(b.wrapping_add(p01 + g2), ((w >> 40) & 0x7F) as u32);
                    cur = b.wrapping_add(p01 + g2 + g3);
                    f(cur, (w >> 56) as u32);
                    pos += 8;
                    left -= 4;
                    continue 'next_window;
                }
                // Two (2-byte gap, 1-byte weight) pairs — the mid-degree
                // layout once gaps outgrow 127: continuation set on the
                // gap's lead byte, clear on its terminator and the weight.
                const GAP2_W1_X2: u64 = 0x0000_0000_8000_0080;
                if left >= 2 && c & 0x0000_FFFF_FFFF_FFFF == GAP2_W1_X2 {
                    let g0 = ((w & 0x7F) | ((w >> 1) & 0x3F80)) as u32;
                    let g1 = (((w >> 24) & 0x7F) | ((w >> 25) & 0x3F80)) as u32;
                    let b = cur;
                    f(b.wrapping_add(g0), ((w >> 16) & 0x7F) as u32);
                    cur = b.wrapping_add(g0 + g1);
                    f(cur, ((w >> 40) & 0x7F) as u32);
                    pos += 6;
                    left -= 2;
                    continue 'next_window;
                }
                if left < 4 {
                    // Short remainder of all-1-byte pairs under a
                    // continuation-bit mask; see `for_each_varint` for why
                    // the lookahead bytes past the run may be anything.
                    let lm = (1u64 << (16 * left)) - 1;
                    if c & lm == 0 {
                        let mut t = w;
                        for _ in 0..left {
                            cur = cur.wrapping_add((t & 0x7F) as u32);
                            f(cur, ((t >> 8) & 0x7F) as u32);
                            t >>= 16;
                        }
                        self.pos = pos + 2 * left;
                        return;
                    }
                }
                let mut s = c ^ CONT_BITS;
                let mut start = 0usize;
                // Mixed-length pairs: peel gap and weight codewords out of
                // the register two stop bits at a time. Pairs that straddle
                // the window end (or carry a 5+-byte codeword) finish on the
                // scalar path so the gap/weight parity never leaks across
                // windows.
                loop {
                    if left == 0 {
                        self.pos = pos + start;
                        return;
                    }
                    if s == 0 {
                        pos += start;
                        if start == 0 {
                            break; // whole window is one long codeword
                        }
                        continue 'next_window;
                    }
                    let stop = (s.trailing_zeros() >> 3) as usize;
                    let len = stop - start + 1;
                    if len > 4 {
                        pos += start;
                        break; // long gap: scalar pair below
                    }
                    let m = ((w >> (8 * start)) as u32) & WINDOW_KEEP[len];
                    let g = (m & 0x7F)
                        | ((m >> 1) & (0x7F << 7))
                        | ((m >> 2) & (0x7F << 14))
                        | ((m >> 3) & (0x7F << 21));
                    let wstart = stop + 1;
                    s &= s - 1;
                    if s == 0 {
                        // Weight straddles (or touches) the window end.
                        cur = cur.wrapping_add(g);
                        let (wt, np) = varint_multi(buf, pos + wstart);
                        f(cur, wt as u32);
                        pos = np;
                        left -= 1;
                        continue 'next_window;
                    }
                    let stop2 = (s.trailing_zeros() >> 3) as usize;
                    let len2 = stop2 - wstart + 1;
                    if len2 > 4 {
                        cur = cur.wrapping_add(g);
                        let (wt, np) = varint_multi(buf, pos + wstart);
                        f(cur, wt as u32);
                        pos = np;
                        left -= 1;
                        continue 'next_window;
                    }
                    let m2 = ((w >> (8 * wstart)) as u32) & WINDOW_KEEP[len2];
                    cur = cur.wrapping_add(g);
                    f(
                        cur,
                        (m2 & 0x7F)
                            | ((m2 >> 1) & (0x7F << 7))
                            | ((m2 >> 2) & (0x7F << 14))
                            | ((m2 >> 3) & (0x7F << 21)),
                    );
                    start = stop2 + 1;
                    left -= 1;
                    s &= s - 1;
                }
            }
            // Window empty, ends mid-codeword, or a 5+-byte gap is next:
            // one scalar (validating) pair, then re-window.
            let (g, np) = varint_multi(buf, pos);
            cur = cur.wrapping_add(g as u32);
            let (wt, np2) = varint_multi(buf, np);
            f(cur, wt as u32);
            pos = np2;
            left -= 1;
        }
        self.pos = pos;
    }

    /// Decodes the next codeword, failing closed on truncated or overlong
    /// input. This is the load-time validation entry point.
    #[inline]
    pub fn try_varint(&mut self) -> Result<u64, &'static str> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(ERR_TRUNCATED);
        };
        let e = FIRST_BYTE[b as usize];
        self.pos += 1;
        if e.len == 1 {
            return Ok(e.value as u64);
        }
        self.try_varint_cont(e.value as u64)
    }

    /// Multi-byte continuation: scan the next 8 bytes as one word for the
    /// stop byte. A stop within the word means the codeword is ≤ 9 bytes
    /// total (shifts capped at 56+7 = 63), so this path cannot overflow.
    #[inline]
    fn try_varint_cont(&mut self, first: u64) -> Result<u64, &'static str> {
        let rest = &self.buf[self.pos..];
        if rest.len() >= 8 {
            let word = u64::from_le_bytes(rest[..8].try_into().unwrap());
            let stops = !word & CONT_BITS;
            if stops != 0 {
                let tail = (stops.trailing_zeros() >> 3) as usize + 1;
                let mut x = first;
                let mut shift = 7u32;
                for i in 0..tail {
                    x |= ((word >> (8 * i)) & 0x7F) << shift;
                    shift += 7;
                }
                self.pos += tail;
                return Ok(x);
            }
        }
        self.try_varint_tail(first)
    }

    /// Byte-at-a-time tail: blocks too short for a word load, plus the
    /// 10-byte boundary check that makes overlong codewords an error
    /// instead of an unbounded shift.
    fn try_varint_tail(&mut self, first: u64) -> Result<u64, &'static str> {
        let mut x = first;
        let mut shift = 7u32;
        loop {
            let Some(&b) = self.buf.get(self.pos) else {
                return Err(ERR_TRUNCATED);
            };
            self.pos += 1;
            if shift == 63 {
                // 10th byte: only the low bit may carry payload and the
                // continuation bit must be clear.
                if b > 1 {
                    return Err(ERR_OVERLONG);
                }
                return Ok(x | ((b as u64) << 63));
            }
            x |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }
}

/// Long-codeword / end-of-buffer continuation of [`BlockDecoder::varint`],
/// outlined to keep the fast path small. Panics on corrupt input.
#[inline(never)]
fn varint_multi(buf: &[u8], pos: usize) -> (u64, usize) {
    let mut dec = BlockDecoder { buf, pos };
    match dec.try_varint() {
        Ok(x) => (x, dec.pos),
        Err(why) => corrupt(why),
    }
}

/// Zig-zag encodes a signed delta (first-neighbor-minus-vertex) so small
/// magnitudes of either sign get short codewords.
#[inline]
pub fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Appends the LEB128 codeword for `x` to `buf`.
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// The pre-table decoder, kept verbatim as the microbench baseline
/// (`bench --bin decode` times it against [`BlockDecoder`]) and as the
/// proptest oracle for decode equivalence. Inherits the original
/// semantics: one branch per byte, slice-indexing bounds checks only.
pub mod reference {
    /// The original branch-per-byte varint loop this PR replaced.
    #[inline]
    pub fn get_varint(data: &[u8], pos: &mut usize) -> u64 {
        let mut x = 0u64;
        let mut shift = 0;
        loop {
            let byte = data[*pos];
            *pos += 1;
            x |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return x;
            }
            shift += 7;
        }
    }

    /// Decodes one unchunked neighbor run exactly the way the pre-table
    /// `for_each_neighbor` did.
    #[inline]
    pub fn for_each_neighbor_legacy<F: FnMut(crate::VertexId)>(
        v: crate::VertexId,
        deg: usize,
        data: &[u8],
        start: usize,
        mut f: F,
    ) {
        if deg == 0 {
            return;
        }
        let mut pos = start;
        let first = super::zigzag_decode(get_varint(data, &mut pos));
        let mut cur = (v as i64 + first) as u32;
        f(cur);
        for _ in 1..deg {
            cur += get_varint(data, &mut pos) as u32;
            f(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_definition() {
        for b in 0..=255u8 {
            let e = FIRST_BYTE[b as usize];
            assert_eq!(e.value, b & 0x7F);
            assert_eq!(e.len, u8::from(b & 0x80 == 0));
        }
    }

    #[test]
    fn varint_roundtrip_all_lengths() {
        let mut buf = Vec::new();
        let mut values = vec![0u64, 1, 127, 128, 300, (1 << 20) - 3, u32::MAX as u64];
        for k in 0..64 {
            values.push(1u64 << k);
            values.push((1u64 << k).wrapping_sub(1));
        }
        values.push(u64::MAX);
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut dec = BlockDecoder::new(&buf);
        for &v in &values {
            assert_eq!(dec.varint(), v);
        }
        assert_eq!(dec.pos(), buf.len());
        // The reference decoder agrees on valid input.
        let mut pos = 0;
        for &v in &values {
            assert_eq!(reference::get_varint(&buf, &mut pos), v);
        }
    }

    #[test]
    fn tail_path_matches_word_path() {
        // Decode the same multi-byte codeword with and without 8 bytes of
        // lookahead: pad vs no pad must agree.
        for &v in &[128u64, 1 << 14, 1 << 21, 1 << 42, u64::MAX] {
            let mut exact = Vec::new();
            put_varint(&mut exact, v);
            let mut padded = exact.clone();
            padded.extend_from_slice(&[0u8; 8]);
            assert_eq!(BlockDecoder::new(&exact).varint(), v);
            assert_eq!(BlockDecoder::new(&padded).varint(), v);
        }
    }

    #[test]
    fn corrupt_truncated_codeword_is_error() {
        // Continuation bit set on the final byte: every prefix of a
        // multi-byte codeword must fail closed.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 1..buf.len() {
            let mut dec = BlockDecoder::new(&buf[..cut]);
            assert_eq!(dec.try_varint(), Err(ERR_TRUNCATED), "cut at {cut}");
        }
        assert_eq!(BlockDecoder::new(&[]).try_varint(), Err(ERR_TRUNCATED));
    }

    #[test]
    fn corrupt_overlong_codeword_is_error() {
        // 10 continuation bytes (11-byte codeword): bounded, not a shift
        // overflow.
        let buf = [0x80u8; 16];
        assert_eq!(BlockDecoder::new(&buf).try_varint(), Err(ERR_OVERLONG));
        // 10th byte with payload beyond bit 63.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x02);
        assert_eq!(BlockDecoder::new(&buf).try_varint(), Err(ERR_OVERLONG));
        // 10th byte carrying exactly bit 63 is the legal u64::MAX encoding.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x01);
        assert_eq!(BlockDecoder::new(&buf).try_varint(), Ok(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "corrupt compressed block")]
    fn corrupt_traversal_panics_cleanly() {
        let buf = [0x80u8, 0x80];
        BlockDecoder::new(&buf).varint();
    }

    #[test]
    fn zigzag_roundtrip() {
        for x in [-5i64, -1, 0, 1, 5, i64::MAX / 2, i64::MIN / 2, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(x)), x);
        }
    }

    #[test]
    fn advance_saturates() {
        let buf = [0x01u8];
        let mut dec = BlockDecoder::new(&buf);
        dec.advance(usize::MAX);
        assert_eq!(dec.try_varint(), Err(ERR_TRUNCATED));
    }

    #[test]
    fn delta_weight_matches_serial_on_every_path() {
        // Pair streams picked to route through each fused tier: whole
        // (1,1)-byte windows, whole (2,1)-byte windows, masked short
        // remainders, the mixed-length pair peel (including weights wider
        // than gaps), window-straddling weights, and 5+-byte scalar
        // fallbacks on either half of a pair.
        let streams: Vec<Vec<(u64, u64)>> = vec![
            (0..16)
                .map(|i| (i as u64 * 7 % 128, i as u64 % 64))
                .collect(),
            (0..8)
                .map(|i| (200 + i as u64 * 13, i as u64 % 100))
                .collect(),
            (0..3).map(|i| (i as u64 + 1, 2 * i as u64 + 1)).collect(),
            vec![(1, 1)],
            vec![(5, 300), (300, 5), (1, 70000), (70000, 1)],
            vec![(3, u64::MAX), (u64::MAX, 3), (1, 1), (2, 2), (130, 130)],
            (0..9)
                .map(|i| (1u64 << (3 * i % 20), 1u64 << (2 * i % 18)))
                .collect(),
            vec![],
        ];
        for pairs in &streams {
            let mut buf = Vec::new();
            for &(g, w) in pairs {
                put_varint(&mut buf, g);
                put_varint(&mut buf, w);
            }
            let base = 11u32;
            let mut acc = base;
            let want: Vec<(u32, u32)> = pairs
                .iter()
                .map(|&(g, w)| {
                    acc = acc.wrapping_add(g as u32);
                    (acc, w as u32)
                })
                .collect();
            let mut dec = BlockDecoder::new(&buf);
            let mut got = Vec::new();
            dec.for_each_delta_weight(base, pairs.len(), |u, w| got.push((u, w)));
            assert_eq!(got, want, "stream {pairs:?}");
            assert_eq!(dec.pos(), buf.len(), "cursor for stream {pairs:?}");
        }
    }

    #[test]
    fn delta_sum_matches_serial_on_every_path() {
        // Streams picked to route through each fused-decode tier: whole
        // 1-byte windows (prefix tree), whole 2-byte windows, masked short
        // remainders of both widths, the mixed-length peel, and the long
        // (5+-byte) scalar fallback.
        let streams: Vec<Vec<u64>> = vec![
            (0..16).map(|i| i as u64 * 7 % 128).collect(),
            (0..8).map(|i| 128 + i as u64 * 1000).collect(),
            (0..3).map(|i| i as u64 + 1).collect(),
            (0..2).map(|i| 200 + i as u64).collect(),
            vec![1, 300, 2, 70000, 3, u64::MAX, 4, 5, 6, 7, 8, 9, 10, 11],
            vec![u32::MAX as u64],
            vec![],
        ];
        for vals in &streams {
            let mut buf = Vec::new();
            for &v in vals {
                put_varint(&mut buf, v);
            }
            let base = 3u32;
            let mut acc = base;
            let want: Vec<u32> = vals
                .iter()
                .map(|&v| {
                    acc = acc.wrapping_add(v as u32);
                    acc
                })
                .collect();
            let mut dec = BlockDecoder::new(&buf);
            let mut got = Vec::new();
            dec.for_each_delta_sum(base, vals.len(), |u| got.push(u));
            assert_eq!(got, want, "stream {vals:?}");
            assert_eq!(dec.pos(), buf.len(), "cursor for stream {vals:?}");
        }
    }
}
