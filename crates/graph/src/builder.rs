//! Edge-list ingestion: sort, dedup, self-loop removal, CSR construction.

use crate::csr::{Csr, Weight};
use crate::VertexId;
use julienne_primitives::scan::prefix_sums;
use rayon::prelude::*;

/// A raw edge list; the staging representation all generators and readers
/// produce before CSR construction.
#[derive(Clone, Debug)]
pub struct EdgeList<W: Weight> {
    /// Number of vertices (ids must be `< n`).
    pub n: usize,
    /// Directed edges `(src, dst, weight)`.
    pub edges: Vec<(VertexId, VertexId, W)>,
}

impl<W: Weight> EdgeList<W> {
    /// Creates an edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds one directed edge.
    pub fn push(&mut self, u: VertexId, v: VertexId, w: W) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v, w));
    }

    /// Adds both directions of an undirected edge.
    pub fn push_undirected(&mut self, u: VertexId, v: VertexId, w: W) {
        self.push(u, v, w);
        self.push(v, u, w);
    }

    /// Mirrors every edge, making the list symmetric.
    pub fn symmetrize(&mut self) {
        let mirrored: Vec<_> = self.edges.par_iter().map(|&(u, v, w)| (v, u, w)).collect();
        self.edges.extend(mirrored);
    }

    /// Builds a CSR: sorts by `(src, dst, weight)`, removes self-loops and
    /// duplicate edges (keeping the **minimum** weight), per the paper's
    /// no-self-edge / no-duplicate assumption.
    ///
    /// The weight participates in the sort key on purpose: with parallel
    /// edges of differing weights, keeping "the first after an unstable
    /// sort by endpoints" would pick an arbitrary survivor — and could keep
    /// different weights for the two directions of a mirrored edge, so a
    /// graph marked symmetric would have `w(u,v) ≠ w(v,u)` and push- vs
    /// pull-based traversals would compute different shortest paths.
    /// Minimum weight is deterministic and direction-symmetric.
    pub fn build(mut self, symmetric: bool) -> Csr<W> {
        let n = self.n;
        self.edges
            .par_sort_unstable_by_key(|&(u, v, w)| (((u as u64) << 32) | v as u64, w.to_u64()));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        self.edges.retain(|&(u, v, _)| u != v);

        let mut counts = vec![0usize; n + 1];
        for &(u, _, _) in &self.edges {
            counts[u as usize] += 1;
        }
        counts[n] = 0;
        let m = prefix_sums(&mut counts[..]);
        debug_assert_eq!(m, self.edges.len());
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i] = counts[i] as u64;
        }
        offsets[n] = m as u64;

        let targets: Vec<VertexId> = self.edges.par_iter().map(|&(_, v, _)| v).collect();
        let weights: Vec<W> = self.edges.par_iter().map(|&(_, _, w)| w).collect();
        Csr::from_parts(offsets, targets, weights, symmetric)
    }

    /// Builds a symmetric CSR by first mirroring all edges.
    pub fn build_symmetric(mut self) -> Csr<W> {
        self.symmetrize();
        self.build(true)
    }
}

/// Convenience: builds an unweighted directed CSR from `(u, v)` pairs.
pub fn from_pairs(n: usize, pairs: &[(VertexId, VertexId)]) -> Csr<()> {
    let mut el = EdgeList::new(n);
    for &(u, v) in pairs {
        el.push(u, v, ());
    }
    el.build(false)
}

/// Convenience: builds an unweighted symmetric CSR from `(u, v)` pairs.
pub fn from_pairs_symmetric(n: usize, pairs: &[(VertexId, VertexId)]) -> Csr<()> {
    let mut el = EdgeList::new(n);
    for &(u, v) in pairs {
        el.push(u, v, ());
    }
    el.build_symmetric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = from_pairs(4, &[(0, 1), (0, 1), (1, 1), (2, 0), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn symmetric_build_mirrors() {
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
        assert!(g.validate().is_ok());
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn weighted_build_keeps_minimum_weight() {
        let mut el: EdgeList<u32> = EdgeList::new(2);
        el.push(0, 1, 9);
        el.push(0, 1, 5); // parallel edge: the lighter one survives
        let g = el.build(false);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weights_of(0), &[5]);
    }

    #[test]
    fn parallel_edge_dedup_is_direction_symmetric() {
        // Two undirected pushes of the same pair with different weights:
        // both directions must keep the same (minimum) weight, or the
        // "symmetric" graph would be weight-asymmetric and pull-based
        // traversals would see different distances than push-based ones.
        let mut el: EdgeList<u32> = EdgeList::new(2);
        el.push_undirected(0, 1, 9);
        el.push_undirected(0, 1, 5);
        let g = el.build_symmetric();
        assert_eq!(g.weights_of(0), &[5]);
        assert_eq!(g.weights_of(1), &[5]);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = from_pairs(10, &[(0, 9)]);
        assert_eq!(g.num_vertices(), 10);
        for v in 1..9 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn empty_graph() {
        let g = from_pairs(5, &[]);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn push_undirected_adds_both() {
        let mut el: EdgeList<()> = EdgeList::new(3);
        el.push_undirected(0, 2, ());
        let g = el.build(true);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
    }
}
