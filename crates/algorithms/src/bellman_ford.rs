//! Frontier-based Bellman–Ford — the Ligra SSSP comparator of Table 3.
//!
//! Work-inefficient for nonnegative weights (a vertex can be relaxed and
//! re-expanded once per distance improvement, O(d·m) worst case where d is
//! the longest shortest-path hop count), but trivially parallel: each round
//! relaxes all out-edges of the vertices whose distance changed.

use crate::INF;
use julienne_graph::VertexId;
use julienne_ligra::edge_map::EdgeMap;
use julienne_ligra::subset::VertexSubset;
use julienne_ligra::traits::GraphRef;
use julienne_primitives::atomics::write_min_u64;
use julienne_primitives::bitset::AtomicBitSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// SSSP result with round/relaxation counters.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Shortest distance from the source (INF if unreachable).
    pub dist: Vec<u64>,
    /// Number of frontier rounds.
    pub rounds: u64,
    /// Total edge relaxations attempted.
    pub relaxations: u64,
}

/// Parallel Bellman–Ford from `src` (nonnegative integer weights), over
/// any [`GraphRef`] backend with `u32` weights.
pub fn bellman_ford<G: GraphRef<W = u32>>(g: &G, src: VertexId) -> SsspResult {
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src as usize].store(0, Ordering::SeqCst);
    let flags = AtomicBitSet::new(n);

    let mut frontier = VertexSubset::single(n, src);
    let mut rounds = 0u64;
    let mut relaxations = 0u64;

    while !frontier.is_empty() {
        rounds += 1;
        assert!(
            rounds <= n as u64,
            "negative cycle or bug: more rounds than vertices"
        );
        relaxations += frontier.iter().map(|v| g.out_degree(v) as u64).sum::<u64>();
        let next = EdgeMap::new(g).run(
            &frontier,
            |u, v, w| {
                let nd = dist[u as usize].load(Ordering::SeqCst) + w as u64;
                if write_min_u64(&dist[v as usize], nd) {
                    // First improver this round claims v for the frontier.
                    return flags.set(v as usize);
                }
                false
            },
            |_| true,
        );
        // Reset flags of the new frontier for the next round.
        for v in &next {
            flags.clear(v as usize);
        }
        frontier = next;
    }

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use julienne_graph::generators::{erdos_renyi, grid2d};
    use julienne_graph::transform::assign_weights;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..3 {
            let g = assign_weights(&erdos_renyi(400, 3000, seed, false), 1, 50, seed + 10);
            let bf = bellman_ford(&g, 0);
            assert_eq!(bf.dist, dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = assign_weights(&grid2d(15, 15), 1, 20, 3);
        let bf = bellman_ford(&g, 7);
        assert_eq!(bf.dist, dijkstra(&g, 7));
        // High-diameter graph: many rounds (≥ hop diameter from corner).
        assert!(bf.rounds >= 14);
    }

    #[test]
    fn unreachable_vertices_inf() {
        use julienne_graph::builder::EdgeList;
        let mut el: EdgeList<u32> = EdgeList::new(4);
        el.push(0, 1, 3);
        let g = el.build(false);
        let bf = bellman_ford(&g, 0);
        assert_eq!(bf.dist, vec![0, 3, INF, INF]);
        assert_eq!(bf.rounds, 2); // {0} then {1} then empty
    }
}
