//! k-core / coreness (Section 4.1).
//!
//! * [`coreness`] — Algorithm 1: the first work-efficient parallel
//!   coreness algorithm with non-trivial parallelism. O(m + n) expected
//!   work, O(ρ log n) depth w.h.p., where ρ is the peeling complexity.
//!   Parameterized by [`KcoreParams`] and a [`QueryCtx`] (deadline +
//!   cancellation polled at round boundaries).
//! * [`coreness_ligra`] — the work-inefficient Ligra-style peeling that
//!   scans **all remaining vertices** every core value:
//!   O(k_max·n + m) work (the Table 3 / Figure 2 comparator).
//! * [`coreness_bz_seq`] — the sequential Batagelj–Zaversnik bucket-sort
//!   algorithm (the "well-tuned sequential baseline").
//!
//! All three return identical coreness values; the tests check them against
//! each other and against hand-computed graphs. The historical
//! `coreness_julienne` / `coreness_julienne_opts` / `coreness_julienne_with`
//! triplet survives as deprecated one-line wrappers over [`coreness`].

use julienne::bucket::Order;
use julienne::engine::Engine;
use julienne::query::QueryCtx;
use julienne::telemetry::{Counter, RoundRecord, TraversalKind};
use julienne::Error;
use julienne_graph::VertexId;
use julienne_ligra::edge_map_reduce::{edge_map_sum_with_scratch, SumScratch};
use julienne_ligra::traits::OutEdges;
use julienne_primitives::filter::pack_index;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a coreness computation, with the work counters used by the
/// Table 1 / EXPERIMENTS.md work-efficiency checks.
#[derive(Clone, Debug)]
pub struct KcoreResult {
    /// λ(v) for every vertex.
    pub coreness: Vec<u32>,
    /// Number of `nextBucket` rounds (= the measured peeling complexity ρ
    /// for the Julienne implementation).
    pub rounds: u64,
    /// Total vertices scanned across rounds (extracted, for Julienne; all
    /// remaining vertices per scan, for the work-inefficient variant).
    pub vertices_scanned: u64,
    /// Total edges traversed.
    pub edges_traversed: u64,
    /// Identifiers physically moved by the bucket structure (0 for
    /// non-bucketed variants).
    pub identifiers_moved: u64,
}

/// Parameters for [`coreness`]. k-core has no tunables beyond the engine
/// configuration, so this is an empty marker struct kept for signature
/// symmetry with the other registry entry points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KcoreParams {}

/// Work-efficient coreness (Algorithm 1) over any out-edge backend — plain
/// CSR or byte-compressed: the single entry point behind the `kcore`
/// registry id. The graph must be symmetric.
///
/// Bucket window and telemetry scope come from `ctx`'s engine; each peeling
/// round emits a [`RoundRecord`]. The context is polled once per round: a
/// cancelled or deadline-expired query returns `Err` with no partial
/// output, dropping its buckets on the way out.
pub fn coreness<G: OutEdges>(
    g: &G,
    _params: &KcoreParams,
    ctx: &QueryCtx,
) -> Result<KcoreResult, Error> {
    let engine = ctx.engine();
    let n = g.num_vertices();
    // D holds the induced degree of live vertices and, once extracted, the
    // final coreness. It doubles as the bucket map.
    let degrees: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(g.out_degree(v as VertexId) as u32))
        .collect();
    let d = |i: u32| degrees[i as usize].load(Ordering::SeqCst);
    let mut buckets = engine.buckets(n, d, Order::Increasing);
    let telemetry = engine.telemetry();
    // Persistent per-neighbor counters for edgeMapSum (cleared per round in
    // work proportional to the touched vertices, preserving O(m + n)).
    let scratch = SumScratch::new(n);

    let mut finished = 0usize;
    let mut rounds = 0u64;
    let mut vertices_scanned = 0u64;
    let mut edges_traversed = 0u64;

    while finished < n {
        // Round boundary: a cancelled/expired query unwinds here, dropping
        // the bucket structure and degree arrays with it.
        ctx.check()?;
        let span = telemetry.span();
        let (k, ids) = buckets
            .next_bucket()
            .expect("bucket structure exhausted before all vertices finished");
        finished += ids.len();
        rounds += 1;
        vertices_scanned += ids.len() as u64;
        let round_edges = ids.par_iter().map(|&v| g.out_degree(v) as u64).sum::<u64>();
        edges_traversed += round_edges;

        // Update (Algorithm 1, lines 3–10): for each neighbor v of the
        // peeled set, subtract the number of removed edges, clamping at k,
        // and compute its bucket destination.
        let moved = edge_map_sum_with_scratch(
            g,
            &ids,
            |v, edges_removed| {
                let induced = degrees[v as usize].load(Ordering::SeqCst);
                if induced > k {
                    let new_d = induced.saturating_sub(edges_removed).max(k);
                    degrees[v as usize].store(new_d, Ordering::SeqCst);
                    let dest = buckets.get_bucket(induced, new_d);
                    if dest.is_null() {
                        None
                    } else {
                        Some(dest)
                    }
                } else {
                    None
                }
            },
            |v| degrees[v as usize].load(Ordering::SeqCst) > k,
            &scratch,
        );
        let relaxed = moved.entries().len() as u64;
        buckets.update_buckets(moved.entries());
        telemetry.incr(Counter::Rounds);
        telemetry.add(Counter::VerticesScanned, ids.len() as u64);
        telemetry.add(Counter::EdgesScanned, round_edges);
        telemetry.add(Counter::EdgesRelaxed, relaxed);
        if telemetry.is_enabled() {
            telemetry.record_round(RoundRecord {
                round: (rounds - 1) as u32,
                bucket: k,
                frontier: ids.len(),
                edges_scanned: round_edges,
                edges_relaxed: relaxed,
                mode: TraversalKind::Sparse,
                elapsed_us: span.elapsed_us(),
            });
        }
    }

    let identifiers_moved = buckets.stats().identifiers_moved;
    Ok(KcoreResult {
        coreness: degrees.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
        vertices_scanned,
        edges_traversed,
        identifiers_moved,
    })
}

/// Work-efficient coreness (Algorithm 1) with default options.
#[deprecated(
    since = "0.1.0",
    note = "use `coreness` with `KcoreParams` and a `QueryCtx`"
)]
pub fn coreness_julienne<G: OutEdges>(g: &G) -> KcoreResult {
    coreness(g, &KcoreParams::default(), &QueryCtx::default()).expect("uncancellable query")
}

/// [`coreness`] with an explicit number of open buckets (for the nB
/// ablation).
#[deprecated(
    since = "0.1.0",
    note = "use `coreness` with `KcoreParams` and a `QueryCtx`"
)]
pub fn coreness_julienne_opts<G: OutEdges>(g: &G, num_open: usize) -> KcoreResult {
    let engine = Engine::builder().open_buckets(num_open).build();
    coreness(g, &KcoreParams::default(), &QueryCtx::from_engine(&engine))
        .expect("uncancellable query")
}

/// [`coreness`] against an [`Engine`]: bucket window and telemetry sink
/// come from the engine.
#[deprecated(
    since = "0.1.0",
    note = "use `coreness` with `KcoreParams` and a `QueryCtx`"
)]
pub fn coreness_julienne_with<G: OutEdges>(g: &G, engine: &Engine) -> KcoreResult {
    coreness(g, &KcoreParams::default(), &QueryCtx::from_engine(engine))
        .expect("uncancellable query")
}

/// Work-inefficient Ligra-style coreness: for each core value k, repeatedly
/// scans **all remaining vertices** for those with induced degree ≤ k.
/// O(k_max·n + m) work — the comparator the paper beats by 2.6–9.2×.
pub fn coreness_ligra<G: OutEdges>(g: &G) -> KcoreResult {
    let n = g.num_vertices();
    let degrees: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(g.out_degree(v as VertexId) as u32))
        .collect();
    let alive: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(1)).collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();

    let mut finished = 0usize;
    let mut k = 0u32;
    let mut rounds = 0u64;
    let mut vertices_scanned = 0u64;
    let mut edges_traversed = 0u64;

    while finished < n {
        // Scan all remaining vertices — the work-inefficiency.
        vertices_scanned += (n - finished) as u64;
        rounds += 1;
        let peel: Vec<VertexId> = pack_index(n, |v| {
            alive[v].load(Ordering::SeqCst) == 1 && degrees[v].load(Ordering::SeqCst) <= k
        });
        if peel.is_empty() {
            k += 1;
            continue;
        }
        finished += peel.len();
        peel.par_iter().for_each(|&v| {
            alive[v as usize].store(0, Ordering::SeqCst);
            coreness[v as usize].store(k, Ordering::SeqCst);
        });
        edges_traversed += peel
            .par_iter()
            .map(|&v| g.out_degree(v) as u64)
            .sum::<u64>();
        peel.par_iter().for_each(|&v| {
            g.for_each_out(v, |u, _| {
                if alive[u as usize].load(Ordering::SeqCst) == 1 {
                    degrees[u as usize].fetch_sub(1, Ordering::SeqCst);
                }
            });
        });
    }

    KcoreResult {
        coreness: coreness.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
        vertices_scanned,
        edges_traversed,
        identifiers_moved: 0,
    }
}

/// Sequential Batagelj–Zaversnik coreness: bucket sort by degree, repeatedly
/// delete the minimum-degree vertex, moving each affected neighbor down one
/// bucket per removed edge. O(m + n) work, fully sequential.
pub fn coreness_bz_seq<G: OutEdges>(g: &G) -> KcoreResult {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n).map(|v| g.out_degree(v as VertexId) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

    // bin[d] = start index of degree-d vertices in `vert`.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut start = bin.clone(); // running start of each degree class
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    for v in 0..n {
        let d = deg[v] as usize;
        pos[v] = start[d];
        vert[pos[v]] = v as VertexId;
        start[d] += 1;
    }

    let mut edges_traversed = 0u64;
    let mut nbrs = Vec::new();
    for i in 0..n {
        let v = vert[i] as usize;
        edges_traversed += g.out_degree(v as VertexId) as u64;
        nbrs.clear();
        g.for_each_out(v as VertexId, |u, _| nbrs.push(u));
        for &u in &nbrs {
            let u = u as usize;
            if deg[u] > deg[v] {
                // Swap u to the front of its degree class and shrink it.
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    pos[u] = pw;
                    pos[w] = pu;
                    vert[pu] = w as VertexId;
                    vert[pw] = u as VertexId;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }

    KcoreResult {
        coreness: deg,
        rounds: n as u64,
        vertices_scanned: n as u64,
        edges_traversed,
        identifiers_moved: 0,
    }
}

/// Extracts the vertices of the k-core (coreness ≥ k) from a coreness
/// vector — the paper's footnote 1: the k-core is the induced subgraph over
/// these vertices.
pub fn kcore_vertices(coreness: &[u32], k: u32) -> Vec<VertexId> {
    pack_index(coreness.len(), |v| coreness[v] >= k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};

    /// Shorthand: default context, panic on lifecycle errors (impossible
    /// without a token/deadline).
    fn run<G: OutEdges>(g: &G) -> KcoreResult {
        coreness(g, &KcoreParams::default(), &QueryCtx::default()).unwrap()
    }

    /// A graph with known coreness: a 4-clique with a pendant path.
    /// clique {0,1,2,3} → coreness 3; path 3-4-5 → coreness 1.
    fn clique_with_tail() -> Csr<()> {
        from_pairs_symmetric(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn known_coreness_julienne() {
        let g = clique_with_tail();
        let r = run(&g);
        assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn known_coreness_ligra() {
        let g = clique_with_tail();
        let r = coreness_ligra(&g);
        assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn known_coreness_bz() {
        let g = clique_with_tail();
        let r = coreness_bz_seq(&g);
        assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn all_three_agree_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi(400, 3200, seed, true);
            let a = run(&g);
            let b = coreness_ligra(&g);
            let c = coreness_bz_seq(&g);
            assert_eq!(a.coreness, c.coreness, "julienne vs BZ, seed {seed}");
            assert_eq!(b.coreness, c.coreness, "ligra vs BZ, seed {seed}");
        }
    }

    #[test]
    fn agree_on_heavy_tailed_graph() {
        let g = rmat(10, 8, RmatParams::default(), 3, true);
        let a = run(&g);
        let c = coreness_bz_seq(&g);
        assert_eq!(a.coreness, c.coreness);
    }

    #[test]
    fn julienne_work_efficiency_counters() {
        // Julienne scans each vertex exactly once; the Ligra variant scans
        // the remaining set every round.
        let g = rmat(10, 8, RmatParams::default(), 5, true);
        let a = run(&g);
        let b = coreness_ligra(&g);
        assert_eq!(a.vertices_scanned, g.num_vertices() as u64);
        assert!(
            b.vertices_scanned > 4 * a.vertices_scanned,
            "inefficient {} vs efficient {}",
            b.vertices_scanned,
            a.vertices_scanned
        );
        // Bucket moves are bounded by 2m (each removed edge causes at most
        // one move request).
        assert!(a.identifiers_moved <= 2 * g.num_edges() as u64);
    }

    #[test]
    fn compressed_graph_gives_same_coreness() {
        use julienne_graph::compress::CompressedGraph;
        let g = erdos_renyi(300, 2400, 9, true);
        let c = CompressedGraph::from_csr(&g);
        let a = run(&g);
        let b = run(&c);
        assert_eq!(a.coreness, b.coreness);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = from_pairs_symmetric(5, &[(0, 1)]);
        let r = run(&g);
        assert_eq!(r.coreness, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn cycle_has_coreness_two() {
        let pairs: Vec<(u32, u32)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = from_pairs_symmetric(10, &pairs);
        let r = run(&g);
        assert!(r.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn kcore_vertices_extraction() {
        let g = clique_with_tail();
        let r = run(&g);
        assert_eq!(kcore_vertices(&r.coreness, 3), vec![0, 1, 2, 3]);
        assert_eq!(kcore_vertices(&r.coreness, 4), Vec::<u32>::new());
        assert_eq!(kcore_vertices(&r.coreness, 1).len(), 6);
    }

    #[test]
    fn small_open_bucket_count_still_correct() {
        let g = rmat(9, 8, RmatParams::default(), 11, true);
        let a = coreness(
            &g,
            &KcoreParams::default(),
            &QueryCtx::from_engine(&Engine::builder().open_buckets(2).build()),
        )
        .unwrap();
        let c = coreness_bz_seq(&g);
        assert_eq!(a.coreness, c.coreness);
    }
}
