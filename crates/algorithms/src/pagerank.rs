//! PageRank — the canonical `edgeMapReduce` application, included to
//! exercise the general map/reduce/update form of the primitive the paper
//! adds to Ligra (k-core only uses the `edgeMapSum` specialisation).
//!
//! Classic damped power iteration: `p'(v) = (1−d)/n + d·Σ_{u→v} p(u)/deg(u)`,
//! with dangling mass redistributed uniformly.

use julienne_graph::VertexId;
use julienne_ligra::edge_map_reduce::edge_map_reduce;
use julienne_ligra::traits::OutEdges;
use rayon::prelude::*;

/// Result of a PageRank computation.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Score per vertex; sums to 1.
    pub rank: Vec<f64>,
    /// Iterations until the L1 change fell below tolerance (or the cap).
    pub iterations: u32,
}

/// Damped PageRank with L1 convergence threshold `tol` and iteration cap
/// `max_iters`.
pub fn pagerank<G: OutEdges>(g: &G, damping: f64, tol: f64, max_iters: u32) -> PageRankResult {
    assert!((0.0..1.0).contains(&damping));
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult {
            rank: vec![],
            iterations: 0,
        };
    }
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let base = (1.0 - damping) / n as f64;

    let mut iterations = 0;
    while iterations < max_iters {
        iterations += 1;
        // Contribution of each vertex along its out-edges.
        let contrib: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|v| {
                let d = g.out_degree(v as VertexId);
                if d > 0 {
                    rank[v] / d as f64
                } else {
                    0.0
                }
            })
            .collect();
        let dangling: f64 = (0..n)
            .into_par_iter()
            .filter(|&v| g.out_degree(v as VertexId) == 0)
            .map(|v| rank[v])
            .sum();
        let dangling_share = damping * dangling / n as f64;

        // edgeMapReduce: map = contribution of the source, reduce = sum,
        // update = damp + teleport.
        let summed = edge_map_reduce(
            g,
            &all,
            |u, _v, _w| contrib[u as usize],
            |a, b| a + b,
            |_v, total| Some(base + dangling_share + damping * total),
            |_| true,
        );
        let mut next = vec![base + dangling_share; n];
        for &(v, r) in summed.entries() {
            next[v as usize] = r;
        }
        let delta: f64 = rank
            .par_iter()
            .zip(next.par_iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        rank = next;
        if delta < tol {
            break;
        }
    }
    PageRankResult { rank, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::{from_pairs, from_pairs_symmetric};
    use julienne_graph::generators::rmat;
    use julienne_graph::generators::RmatParams;

    #[test]
    fn ranks_sum_to_one() {
        let g = rmat(10, 8, RmatParams::default(), 3, true);
        let r = pagerank(&g, 0.85, 1e-9, 100);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(r.rank.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn symmetric_regular_graph_is_uniform() {
        // On a cycle every vertex has the same rank.
        let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
        let g = from_pairs_symmetric(16, &pairs);
        let r = pagerank(&g, 0.85, 1e-12, 200);
        for &x in &r.rank {
            assert!((x - 1.0 / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star pointing inward: center receives all the rank.
        let pairs: Vec<(u32, u32)> = (1..20).map(|i| (i, 0)).collect();
        let g = from_pairs(20, &pairs);
        let r = pagerank(&g, 0.85, 1e-10, 200);
        for v in 1..20 {
            assert!(r.rank[0] > r.rank[v]);
        }
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn converges_before_cap() {
        let g = rmat(9, 8, RmatParams::default(), 5, true);
        let r = pagerank(&g, 0.85, 1e-8, 500);
        assert!(r.iterations < 500, "did not converge: {}", r.iterations);
    }
}
