//! Clustering coefficients — exact local and global (transitivity),
//! computed on the triangle substrate of [`crate::triangles`], plus
//! closeness/harmonic centrality via multi-BFS.

use crate::bfs::bfs_seq;
use crate::triangles::{edge_support, EdgeIndex};
use julienne_graph::VertexId;
use julienne_ligra::traits::{GraphRef, OutEdges};
use rayon::prelude::*;

/// Per-vertex local clustering coefficient:
/// `C(v) = 2·T(v) / (deg(v)·(deg(v)−1))`, where `T(v)` counts triangles
/// through `v` (0 for degree < 2).
pub fn local_clustering<G: GraphRef>(g: &G) -> Vec<f64> {
    assert!(g.is_symmetric());
    let idx = EdgeIndex::new(g);
    let support = edge_support(g, &idx);
    // T(v) = ½ Σ_{e ∋ v} support(e): each triangle through v contributes to
    // exactly two of v's incident edges.
    let n = g.num_vertices();
    let mut tri_twice = vec![0u64; n];
    for (e, &(u, v)) in idx.endpoints.iter().enumerate() {
        tri_twice[u as usize] += support[e] as u64;
        tri_twice[v as usize] += support[e] as u64;
    }
    (0..n)
        .into_par_iter()
        .map(|v| {
            let d = g.out_degree(v as VertexId) as u64;
            if d < 2 {
                0.0
            } else {
                (tri_twice[v] / 2) as f64 / ((d * (d - 1) / 2) as f64)
            }
        })
        .collect()
}

/// Global transitivity: `3·triangles / wedges`.
pub fn transitivity<G: GraphRef>(g: &G) -> f64 {
    assert!(g.is_symmetric());
    let triangles = crate::triangles::triangle_count(g);
    let wedges: u64 = (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map(|v| {
            let d = g.out_degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Closeness centrality of `sources` (normalised by reachable count):
/// `C(v) = (r−1) / Σ_u dist(v,u)` over the r reachable vertices.
pub fn closeness<G: OutEdges>(g: &G, sources: &[VertexId]) -> Vec<f64> {
    sources
        .par_iter()
        .map(|&s| {
            let levels = bfs_seq(g, s);
            let mut sum = 0u64;
            let mut reached = 0u64;
            for &l in &levels {
                if l != u32::MAX && l > 0 {
                    sum += l as u64;
                    reached += 1;
                }
            }
            if sum == 0 {
                0.0
            } else {
                reached as f64 / sum as f64
            }
        })
        .collect()
}

/// Harmonic centrality of `sources`: `H(v) = Σ_{u≠v} 1/dist(v,u)` —
/// well-defined on disconnected graphs.
pub fn harmonic<G: OutEdges>(g: &G, sources: &[VertexId]) -> Vec<f64> {
    sources
        .par_iter()
        .map(|&s| {
            let levels = bfs_seq(g, s);
            levels
                .iter()
                .filter(|&&l| l != u32::MAX && l > 0)
                .map(|&l| 1.0 / l as f64)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::{erdos_renyi, grid2d};

    #[test]
    fn triangle_has_full_clustering() {
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(local_clustering(&g), vec![1.0, 1.0, 1.0]);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let pairs: Vec<(u32, u32)> = (1..8).map(|i| (0, i)).collect();
        let g = from_pairs_symmetric(8, &pairs);
        assert!(local_clustering(&g).iter().all(|&c| c == 0.0));
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn local_matches_brute_force() {
        let g = erdos_renyi(150, 1_800, 5, true);
        let got = local_clustering(&g);
        for v in 0..150u32 {
            let nbrs = g.neighbors(v);
            let d = nbrs.len();
            let mut tri = 0usize;
            for i in 0..d {
                for j in (i + 1)..d {
                    if g.neighbors(nbrs[i]).contains(&nbrs[j]) {
                        tri += 1;
                    }
                }
            }
            let want = if d < 2 {
                0.0
            } else {
                tri as f64 / (d * (d - 1) / 2) as f64
            };
            assert!(
                (got[v as usize] - want).abs() < 1e-9,
                "vertex {v}: {} vs {want}",
                got[v as usize]
            );
        }
    }

    #[test]
    fn grid_is_triangle_free() {
        let g = grid2d(10, 10);
        assert!(local_clustering(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn path_centralities() {
        // Path 0-1-2: center is closest to everything.
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2)]);
        let all = vec![0, 1, 2];
        let close = closeness(&g, &all);
        assert!(close[1] > close[0]);
        assert!((close[1] - 2.0 / 2.0).abs() < 1e-12); // (3−1)/… = 2/2
        let h = harmonic(&g, &all);
        assert!((h[1] - 2.0).abs() < 1e-12); // 1/1 + 1/1
        assert!((h[0] - 1.5).abs() < 1e-12); // 1/1 + 1/2
    }

    #[test]
    fn harmonic_handles_disconnection() {
        let g = from_pairs_symmetric(4, &[(0, 1), (2, 3)]);
        let h = harmonic(&g, &[0, 2]);
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
    }
}
